//! The paper's headline scenario end to end: the nine-machine
//! heterogeneous testbed under Workload B (CGI + ASP + static + video),
//! full replication vs content segregation, with §3.3 auto-replication
//! enabled for the proposed system.
//!
//! Run with:
//! `cargo run --release -p cpms-core --example heterogeneous_cluster`

use cpms_core::prelude::*;
use cpms_core::report::{class_gains, render_class_gains, render_throughput_table};

fn main() {
    let clients = [16u32, 48, 96, 120];
    let base = || {
        Experiment::builder()
            .corpus_objects(8_700)
            .nodes(NodeSpec::paper_testbed())
            .workload(WorkloadKind::B)
            .windows(SimDuration::from_secs(10), SimDuration::from_secs(30))
            .seed(7)
    };

    println!("Heterogeneous cluster (3x150MHz IDE, 2x200MHz SCSI, 4x350MHz SCSI; 2 IIS nodes)");
    println!("Workload B: 75.8% static, 14% CGI, 10% ASP, 0.2% video\n");

    // Baseline: full replication (respecting that ASP only runs on IIS)
    // behind the content-blind WLC router.
    let baseline = base()
        .placement(PlacementPolicy::FullReplicationCapable)
        .router(RouterChoice::WeightedLeastConnections)
        .build()
        .sweep_clients(&clients);

    // Proposed system: content segregation + content-aware distributor +
    // auto-replication running between intervals.
    let proposed = base()
        .placement(PlacementPolicy::PartitionedByType {
            segregate_dynamic: true,
        })
        .router(RouterChoice::ContentAware {
            cache_entries: 4096,
        })
        .rebalance(RebalanceConfig::default())
        .build()
        .sweep_clients(&clients);

    let series = vec![
        FigureSeries::from_results("full replication + L4 WLC", &baseline),
        FigureSeries::from_results("segregated + content-aware", &proposed),
    ];
    println!("{}", render_throughput_table(&series));

    let last = clients.len() - 1;
    println!("Per-class gains at saturation ({} clients):", clients[last]);
    let gains = class_gains(&baseline[last], &proposed[last]);
    println!("{}", render_class_gains(&gains));

    let rebalanced: usize = proposed.iter().map(|r| r.rebalance_actions).sum();
    println!("auto-replication actions applied across the sweep: {rebalanced}");
}
