//! §4's hosting-service scenario: differentiated placement for content of
//! different priorities, plus single-copy placement for mutable documents,
//! managed through the controller/broker/agent stack.
//!
//! Run with: `cargo run --release -p cpms-core --example hosting_qos`

use cpms_mgmt::console::RemoteConsole;
use cpms_mgmt::{Cluster, Controller};
use cpms_model::{ContentId, ContentKind, NodeId, Priority, UrlPath};

fn main() {
    // A five-node hosting cluster: nodes 0-1 are "premium" (fast), 2-4
    // commodity.
    let console_nodes = 5;
    let mut console = RemoteConsole::new(Controller::new(Cluster::start(console_nodes, 64 << 20)));
    let premium = [NodeId(0), NodeId(1)];
    let commodity = [NodeId(2), NodeId(3), NodeId(4)];

    // Customer A pays for high availability: critical shopping pages go on
    // both premium nodes.
    let cart: UrlPath = "/customer-a/cart.asp".parse().expect("valid");
    console
        .publish_with_priority(
            &cart,
            ContentId(0),
            ContentKind::Asp,
            4 * 1024,
            Priority::Critical,
            &premium,
        )
        .expect("publish cart");

    // Customer B's brochure site lives on one commodity node.
    for (i, page) in ["/customer-b/index.html", "/customer-b/contact.html"]
        .iter()
        .enumerate()
    {
        console
            .publish(
                &page.parse().expect("valid"),
                ContentId(1 + i as u32),
                ContentKind::StaticHtml,
                8 * 1024,
                &commodity[i % commodity.len()..=i % commodity.len()],
            )
            .expect("publish page");
    }

    // Customer C's news feed is mutable: §4 keeps it single-copy so
    // consistency stays a centralized, trivial problem.
    let feed: UrlPath = "/customer-c/news.html".parse().expect("valid");
    console
        .publish(
            &feed,
            ContentId(9),
            ContentKind::StaticHtml,
            2 * 1024,
            &[NodeId(2)],
        )
        .expect("publish feed");
    for edition in 1..=3u64 {
        let version = console
            .controller_mut()
            .update_content(&feed)
            .expect("update feed");
        assert_eq!(version, edition);
        println!("published news edition {edition} (single-copy: no fan-out consistency work)");
    }

    // The administrator sees one coherent tree regardless of placement.
    println!("\nsingle system image:");
    for row in console.tree_view() {
        println!(
            "  {:<28} {:>9} {:>8} priority={:<8} on {:?}",
            row.path.to_string(),
            row.kind.to_string(),
            format!("{}B", row.size),
            row.priority.to_string(),
            row.locations.iter().map(|n| n.0).collect::<Vec<_>>(),
        );
    }

    // Demand spikes on customer B: replicate their index everywhere cheap.
    let b_index: UrlPath = "/customer-b/index.html".parse().expect("valid");
    for node in commodity.iter().skip(1) {
        console.replicate(&b_index, *node).expect("replicate");
    }
    println!(
        "\nafter replication, {} has {} copies",
        b_index,
        console
            .tree_view()
            .iter()
            .find(|r| r.path == b_index)
            .expect("present")
            .locations
            .len()
    );

    // The audit proves brokers and the URL table agree.
    let problems = console.controller().verify_consistency();
    assert!(
        problems.is_empty(),
        "single system image intact: {problems:?}"
    );
    println!("consistency audit: table and brokers agree on every copy");
    console.shutdown();
}
