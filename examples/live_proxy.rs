//! The data plane over real sockets: three origin servers with partitioned
//! content, fronted by the content-aware proxy, with a live management
//! operation (replication) taking effect mid-run.
//!
//! Run with: `cargo run --release -p cpms-core --example live_proxy`

use cpms_httpd::client::HttpClient;
use cpms_httpd::{ContentAwareProxy, OriginServer, SiteContent};
use cpms_model::{ContentId, ContentKind, NodeId, UrlPath};
use cpms_urltable::{UrlEntry, UrlTable};
use std::time::{Duration, Instant};

fn main() -> std::io::Result<()> {
    // --- three origin nodes with partitioned content
    let mut html_site = SiteContent::new();
    html_site.add_static("/index.html", b"<html>welcome</html>".to_vec());
    html_site.add_static("/about.html", b"<html>about us</html>".to_vec());

    let mut img_site = SiteContent::new();
    img_site.add_static("/img/logo.gif", vec![0x47; 24 * 1024]);

    let mut cgi_site = SiteContent::new();
    cgi_site.add_dynamic("/cgi-bin/search.cgi", Duration::from_millis(8), 512);

    let origins = vec![
        OriginServer::start(NodeId(0), html_site)?,
        OriginServer::start(NodeId(1), img_site)?,
        OriginServer::start(NodeId(2), cgi_site)?,
    ];
    println!("origins listening:");
    for o in &origins {
        println!("  {} -> {}", o.node(), o.addr());
    }

    // --- the URL table routes each path to its hosting node
    let mut table = UrlTable::new();
    let entries: [(&str, ContentKind, u16); 4] = [
        ("/index.html", ContentKind::StaticHtml, 0),
        ("/about.html", ContentKind::StaticHtml, 0),
        ("/img/logo.gif", ContentKind::Image, 1),
        ("/cgi-bin/search.cgi", ContentKind::Cgi, 2),
    ];
    for (i, (path, kind, node)) in entries.iter().enumerate() {
        table
            .insert(
                path.parse().expect("valid path"),
                UrlEntry::new(ContentId(i as u32), *kind, 1024).with_locations([NodeId(*node)]),
            )
            .expect("fresh table");
    }

    let backends = origins.iter().map(|o| o.addr()).collect();
    let proxy = ContentAwareProxy::start(table, backends, 4)?;
    println!("content-aware proxy on {}\n", proxy.addr());

    // --- drive some traffic
    let mut client = HttpClient::connect(proxy.addr())?;
    for path in ["/index.html", "/img/logo.gif", "/cgi-bin/search.cgi"] {
        let start = Instant::now();
        let resp = client.get(path)?;
        println!(
            "GET {path} -> {} ({} bytes, {:?})",
            resp.status,
            resp.body.len(),
            start.elapsed()
        );
    }

    // --- live management: replicate the home page onto the image node,
    // published as a fresh table snapshot the workers pick up atomically
    println!("\nmanagement: replicating /index.html onto n1 (live)");
    origins[1].add_static("/index.html", b"<html>welcome</html>".to_vec());
    let path: UrlPath = "/index.html".parse().expect("valid");
    proxy
        .publisher()
        .update(|t| t.add_location(&path, NodeId(1)))
        .expect("entry exists");

    // Both replicas now serve traffic.
    for _ in 0..50 {
        assert_eq!(client.get("/index.html")?.status, 200);
    }
    println!(
        "after replication: n0 served {}, n1 served {} requests total",
        origins[0].served(),
        origins[1].served()
    );
    println!(
        "proxy relayed {} requests ({} unroutable, {} backend errors)",
        proxy.relayed(),
        proxy.unroutable(),
        proxy.backend_errors()
    );
    Ok(())
}
