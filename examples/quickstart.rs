//! Quickstart: build a small heterogeneous cluster, compare the paper's
//! three placement schemes on a static workload, and print the result.
//!
//! Run with: `cargo run --release -p cpms-core --example quickstart`

use cpms_core::prelude::*;
use cpms_core::report::render_throughput_table;

fn main() {
    // A small corpus keeps the example fast; the bench binaries use the
    // paper's full 8 700-object site.
    let base = || {
        Experiment::builder()
            .corpus_objects(2_000)
            .nodes(NodeSpec::paper_testbed())
            .workload(WorkloadKind::A)
            .windows(SimDuration::from_secs(5), SimDuration::from_secs(15))
            .seed(7)
    };
    let clients = [8u32, 32, 64];

    println!("CPMS quickstart: three placement schemes, Workload A (static)\n");

    let full = base()
        .placement(PlacementPolicy::FullReplication)
        .router(RouterChoice::WeightedLeastConnections)
        .build()
        .sweep_clients(&clients);

    let nfs = base()
        .placement(PlacementPolicy::SharedNfs)
        .router(RouterChoice::WeightedLeastConnections)
        .build()
        .sweep_clients(&clients);

    let partitioned = base()
        .placement(PlacementPolicy::PartitionedByType {
            segregate_dynamic: false,
        })
        .router(RouterChoice::ContentAware {
            cache_entries: 1024,
        })
        .build()
        .sweep_clients(&clients);

    let series = vec![
        FigureSeries::from_results("full replication + L4 WLC", &full),
        FigureSeries::from_results("shared NFS + L4 WLC", &nfs),
        FigureSeries::from_results("partitioned + content-aware", &partitioned),
    ];
    println!("{}", render_throughput_table(&series));

    // Cache hit rates explain the ordering (the paper's §5.3 argument).
    let hit = |results: &[cpms_core::ExperimentResult]| {
        let r = &results.last().expect("nonempty sweep").report;
        r.nodes.iter().map(|n| n.cache_hit_rate).sum::<f64>() / r.nodes.len() as f64
    };
    println!(
        "mean node cache hit rate at {} clients: full={:.2} nfs={:.2} partitioned={:.2}",
        clients.last().expect("nonempty"),
        hit(&full),
        hit(&nfs),
        hit(&partitioned),
    );
}
