//! §3.3 auto-replication: the load-balancing policy.
//!
//! > "Periodically, the load metrics L is calculated by distributor … If
//! > the load of one node exceeds the average load by a threshold, the
//! > node is determined to be overloaded. Under such condition, the
//! > distributor will inform the controller, and then the controller will
//! > decrease the content copies of that server. Conversely, if the load
//! > of one node is below to the average load by a threshold, … The
//! > controller then sends several agents to automatically replicate some
//! > popular content to this underutilized server."
//!
//! [`AutoReplicator::plan`] turns one interval's [`LoadTracker`] state into
//! a list of [`RebalanceAction`]s; the caller applies them through the
//! [`crate::Controller`] (live cluster) or directly to a `UrlTable`
//! (simulation).

use crate::controller::{Controller, MgmtError};
use cpms_model::{ContentId, ContentKind, LoadTracker, NodeId, UrlPath};
use cpms_urltable::UrlTable;
use std::collections::HashSet;

/// One rebalancing step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RebalanceAction {
    /// Copy `path` onto `to` (popular content to an underutilized node).
    Replicate {
        /// Object to copy.
        path: UrlPath,
        /// Receiving node.
        to: NodeId,
    },
    /// Drop the copy of `path` held by `from` (decrease the copies of an
    /// overloaded server). Only planned when another copy exists.
    Offload {
        /// Object to shed.
        path: UrlPath,
        /// Overloaded node giving it up.
        from: NodeId,
    },
}

/// The auto-replication planner.
#[derive(Debug, Clone)]
pub struct AutoReplicator {
    threshold: f64,
    max_actions: usize,
    hot_candidates: usize,
}

impl AutoReplicator {
    /// Creates a planner with the given overload/underutilization
    /// threshold (fraction of the cluster-average load, e.g. `0.25`).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive and finite.
    pub fn new(threshold: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold.is_finite(),
            "threshold must be positive"
        );
        AutoReplicator {
            threshold,
            max_actions: 16,
            hot_candidates: 8,
        }
    }

    /// Caps the number of actions per planning round (changes should be
    /// incremental; the next interval re-measures).
    #[must_use]
    pub fn with_max_actions(mut self, max_actions: usize) -> Self {
        self.max_actions = max_actions;
        self
    }

    /// How many of a node's hottest objects are considered per round.
    #[must_use]
    pub fn with_hot_candidates(mut self, hot_candidates: usize) -> Self {
        self.hot_candidates = hot_candidates;
        self
    }

    /// The configured threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Plans one round of rebalancing from the interval's load state.
    ///
    /// `resolve` maps a content id to its path (the tracker records ids;
    /// the table is keyed by path). `can_host` encodes capability
    /// constraints (e.g. ASP only on IIS nodes).
    pub fn plan(
        &self,
        tracker: &LoadTracker,
        table: &UrlTable,
        resolve: impl Fn(ContentId) -> Option<UrlPath>,
        can_host: impl Fn(NodeId, ContentKind) -> bool,
    ) -> Vec<RebalanceAction> {
        let loads = tracker.node_loads();
        if loads.len() < 2 {
            return Vec::new();
        }
        let avg = tracker.average_load();
        if avg <= 0.0 {
            return Vec::new();
        }
        let mut overloaded: Vec<_> = loads
            .iter()
            .filter(|l| l.load > avg * (1.0 + self.threshold))
            .collect();
        // Hottest node first.
        overloaded.sort_by(|a, b| b.load.partial_cmp(&a.load).expect("finite"));
        let mut underutilized: Vec<_> = loads
            .iter()
            .filter(|l| l.load < avg * (1.0 - self.threshold))
            .collect();
        // Coldest node first.
        underutilized.sort_by(|a, b| a.load.partial_cmp(&b.load).expect("finite"));

        let mut actions = Vec::new();
        let mut touched: HashSet<(UrlPath, NodeId)> = HashSet::new();
        // Track planned additions so the same cold node is not the target
        // of every replication this round.
        let mut planned_additions = vec![0usize; loads.len()];

        for hot in &overloaded {
            for (content, _) in tracker
                .hottest_content(hot.node)
                .into_iter()
                .take(self.hot_candidates)
            {
                if actions.len() >= self.max_actions {
                    return actions;
                }
                let Some(path) = resolve(content) else {
                    continue;
                };
                let Some(entry) = table.lookup_exact(&path) else {
                    continue;
                };
                if !entry.hosted_on(hot.node) {
                    continue; // stale sample; placement already changed
                }
                if entry.replica_count() > 1 {
                    // Another copy exists: shed this node's copy so the
                    // distributor stops sending the traffic here.
                    if touched.insert((path.clone(), hot.node)) {
                        actions.push(RebalanceAction::Offload {
                            path,
                            from: hot.node,
                        });
                    }
                } else {
                    // Single copy: replicate to the coldest *eligible* node
                    // (capable, not already hosting, not the hot node, and
                    // least loaded by this round's planned additions).
                    let target = underutilized
                        .iter()
                        .filter(|l| {
                            let n = l.node;
                            n != hot.node && !entry.hosted_on(n) && can_host(n, entry.kind())
                        })
                        .min_by_key(|l| planned_additions[l.node.index()])
                        .map(|l| l.node);
                    if let Some(to) = target {
                        if touched.insert((path.clone(), to)) {
                            planned_additions[to.index()] += 1;
                            actions.push(RebalanceAction::Replicate { path, to });
                        }
                    }
                }
            }
        }
        actions
    }

    /// Applies actions directly to a URL table (the simulation path, where
    /// file movement is implicit). Returns how many actions were applied;
    /// actions that no longer make sense (object gone, last copy) are
    /// skipped.
    pub fn apply_to_table(actions: &[RebalanceAction], table: &mut UrlTable) -> usize {
        let mut applied = 0;
        for action in actions {
            match action {
                RebalanceAction::Replicate { path, to } => {
                    if table.add_location(path, *to).unwrap_or(false) {
                        applied += 1;
                    }
                }
                RebalanceAction::Offload { path, from } => {
                    let safe = table
                        .lookup_exact(path)
                        .map(|e| e.replica_count() > 1 && e.hosted_on(*from))
                        .unwrap_or(false);
                    if safe && table.remove_location(path, *from).unwrap_or(false) {
                        applied += 1;
                    }
                }
            }
        }
        applied
    }

    /// Applies actions through the controller (the live-cluster path:
    /// agents actually move the files). Returns per-action results.
    pub fn apply_to_controller(
        actions: &[RebalanceAction],
        controller: &mut Controller,
    ) -> Vec<Result<(), MgmtError>> {
        actions
            .iter()
            .map(|action| match action {
                RebalanceAction::Replicate { path, to } => controller.replicate(path, *to),
                RebalanceAction::Offload { path, from } => controller.offload(path, *from),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpms_model::{ContentKind, LoadSample, SimDuration};
    use cpms_urltable::UrlEntry;
    use std::collections::HashMap;

    fn p(s: &str) -> UrlPath {
        s.parse().unwrap()
    }

    /// Three nodes; node 0 hammered by content 1 (single copy), node 2 idle.
    fn skewed_state() -> (LoadTracker, UrlTable, HashMap<ContentId, UrlPath>) {
        let mut tracker = LoadTracker::new(vec![1.0, 1.0, 1.0]);
        for _ in 0..50 {
            tracker.record(LoadSample {
                node: NodeId(0),
                content: ContentId(1),
                kind: ContentKind::StaticHtml,
                processing_time: SimDuration::from_millis(20),
            });
        }
        for _ in 0..10 {
            tracker.record(LoadSample {
                node: NodeId(1),
                content: ContentId(2),
                kind: ContentKind::StaticHtml,
                processing_time: SimDuration::from_millis(10),
            });
        }
        let mut table = UrlTable::new();
        table
            .insert(
                p("/hot.html"),
                UrlEntry::new(ContentId(1), ContentKind::StaticHtml, 100)
                    .with_locations([NodeId(0)]),
            )
            .unwrap();
        table
            .insert(
                p("/warm.html"),
                UrlEntry::new(ContentId(2), ContentKind::StaticHtml, 100)
                    .with_locations([NodeId(1)]),
            )
            .unwrap();
        let mut resolve = HashMap::new();
        resolve.insert(ContentId(1), p("/hot.html"));
        resolve.insert(ContentId(2), p("/warm.html"));
        (tracker, table, resolve)
    }

    #[test]
    fn replicates_hot_single_copy_to_cold_node() {
        let (tracker, table, resolve) = skewed_state();
        let planner = AutoReplicator::new(0.25);
        let actions = planner.plan(
            &tracker,
            &table,
            |id| resolve.get(&id).cloned(),
            |_, _| true,
        );
        assert!(
            actions.contains(&RebalanceAction::Replicate {
                path: p("/hot.html"),
                to: NodeId(2),
            }),
            "{actions:?}"
        );
    }

    #[test]
    fn offloads_when_replica_exists_elsewhere() {
        let (tracker, mut table, resolve) = skewed_state();
        table.add_location(&p("/hot.html"), NodeId(2)).unwrap();
        let planner = AutoReplicator::new(0.25);
        let actions = planner.plan(
            &tracker,
            &table,
            |id| resolve.get(&id).cloned(),
            |_, _| true,
        );
        assert!(
            actions.contains(&RebalanceAction::Offload {
                path: p("/hot.html"),
                from: NodeId(0),
            }),
            "{actions:?}"
        );
    }

    #[test]
    fn balanced_cluster_plans_nothing() {
        let mut tracker = LoadTracker::new(vec![1.0, 1.0]);
        for node in [0u16, 1] {
            tracker.record(LoadSample {
                node: NodeId(node),
                content: ContentId(node as u32),
                kind: ContentKind::StaticHtml,
                processing_time: SimDuration::from_millis(10),
            });
        }
        let table = UrlTable::new();
        let planner = AutoReplicator::new(0.25);
        assert!(planner
            .plan(&tracker, &table, |_| None, |_, _| true)
            .is_empty());
    }

    #[test]
    fn respects_capability_constraints() {
        let (tracker, mut table, _) = skewed_state();
        // make the hot object an ASP page
        table.remove(&p("/hot.html")).unwrap();
        table
            .insert(
                p("/hot.asp"),
                UrlEntry::new(ContentId(1), ContentKind::Asp, 100).with_locations([NodeId(0)]),
            )
            .unwrap();
        let planner = AutoReplicator::new(0.25);

        // Node 2 (the coldest) cannot host ASP: the planner must fall back
        // to the next eligible cold node instead of giving up.
        let actions = planner.plan(
            &tracker,
            &table,
            |id| (id == ContentId(1)).then(|| p("/hot.asp")),
            |node, kind| !(kind == ContentKind::Asp && node == NodeId(2)),
        );
        assert!(
            actions.contains(&RebalanceAction::Replicate {
                path: p("/hot.asp"),
                to: NodeId(1),
            }),
            "falls back to the capable cold node: {actions:?}"
        );
        assert!(
            !actions
                .iter()
                .any(|a| matches!(a, RebalanceAction::Replicate { to: NodeId(2), .. })),
            "never targets the incapable node: {actions:?}"
        );

        // No capable cold node at all: nothing is planned.
        let actions = planner.plan(
            &tracker,
            &table,
            |id| (id == ContentId(1)).then(|| p("/hot.asp")),
            |node, kind| !(kind == ContentKind::Asp && node != NodeId(0)),
        );
        assert!(actions.is_empty(), "no capable target: {actions:?}");
    }

    #[test]
    fn apply_to_table_is_safe() {
        let (_, mut table, _) = skewed_state();
        let actions = vec![
            RebalanceAction::Replicate {
                path: p("/hot.html"),
                to: NodeId(2),
            },
            // bogus: offload the only remaining copy of /warm.html
            RebalanceAction::Offload {
                path: p("/warm.html"),
                from: NodeId(1),
            },
            // bogus: path that no longer exists
            RebalanceAction::Replicate {
                path: p("/gone.html"),
                to: NodeId(2),
            },
        ];
        let applied = AutoReplicator::apply_to_table(&actions, &mut table);
        assert_eq!(applied, 1, "only the sound action applies");
        assert_eq!(table.lookup(&p("/hot.html")).unwrap().replica_count(), 2);
        assert_eq!(table.lookup(&p("/warm.html")).unwrap().replica_count(), 1);
    }

    #[test]
    fn max_actions_caps_plan() {
        let mut tracker = LoadTracker::new(vec![1.0, 1.0, 1.0]);
        let mut table = UrlTable::new();
        let mut resolve = HashMap::new();
        for i in 0..20u32 {
            let path = p(&format!("/hot{i}.html"));
            for _ in 0..20 {
                tracker.record(LoadSample {
                    node: NodeId(0),
                    content: ContentId(i),
                    kind: ContentKind::StaticHtml,
                    processing_time: SimDuration::from_millis(15),
                });
            }
            table
                .insert(
                    path.clone(),
                    UrlEntry::new(ContentId(i), ContentKind::StaticHtml, 10)
                        .with_locations([NodeId(0)]),
                )
                .unwrap();
            resolve.insert(ContentId(i), path);
        }
        let planner = AutoReplicator::new(0.1)
            .with_max_actions(3)
            .with_hot_candidates(20);
        let actions = planner.plan(
            &tracker,
            &table,
            |id| resolve.get(&id).cloned(),
            |_, _| true,
        );
        assert_eq!(actions.len(), 3);
    }

    #[test]
    fn end_to_end_through_controller() {
        use crate::controller::{Cluster, Controller};
        let mut controller = Controller::new(Cluster::start(3, 1 << 20));
        controller
            .publish(
                &p("/hot.html"),
                ContentId(1),
                ContentKind::StaticHtml,
                100,
                cpms_model::Priority::Normal,
                &[NodeId(0)],
            )
            .unwrap();

        let mut tracker = LoadTracker::new(vec![1.0, 1.0, 1.0]);
        for _ in 0..50 {
            tracker.record(LoadSample {
                node: NodeId(0),
                content: ContentId(1),
                kind: ContentKind::StaticHtml,
                processing_time: SimDuration::from_millis(20),
            });
        }
        tracker.record(LoadSample {
            node: NodeId(1),
            content: ContentId(1),
            kind: ContentKind::StaticHtml,
            processing_time: SimDuration::from_millis(1),
        });

        let planner = AutoReplicator::new(0.25);
        let actions = planner.plan(
            &tracker,
            &controller.table(),
            |id| (id == ContentId(1)).then(|| p("/hot.html")),
            |_, _| true,
        );
        let results = AutoReplicator::apply_to_controller(&actions, &mut controller);
        assert!(results.iter().all(Result::is_ok), "{results:?}");
        assert!(
            controller
                .table()
                .lookup(&p("/hot.html"))
                .unwrap()
                .replica_count()
                > 1
        );
        assert!(controller.verify_consistency().is_empty());
        controller.shutdown();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        let _ = AutoReplicator::new(0.0);
    }
}
