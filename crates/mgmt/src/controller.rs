//! The controller: the management brain that lives on the distributor.
//!
//! > "One special daemon, called the controller, is responsible for
//! > receiving requests from the administrator and then invoking brokers
//! > to perform the delegated tasks by dispatching the corresponding
//! > agents. … Whenever the administrator changes the document tree, …
//! > the controller will change the URL table to adapt to these changes,
//! > and then send the agent that performs the content management function
//! > to propagate these changes to the whole system."
//!
//! Every mutating operation therefore has two halves, in order: dispatch
//! agents to the affected brokers, then update the URL table — so the
//! distributor only routes to copies that actually exist.

use crate::agent::{
    AgentError, AgentOutput, DeleteFile, ListFiles, RenameFile, StatusProbe, TouchFile,
};
use crate::broker::{Broker, BrokerHandle};
use crate::store::NodeStore;
use cpms_model::{ContentId, ContentKind, NodeId, Priority, UrlPath};
use cpms_obs::{Counter, Gauge, HistogramRecorder, MetricsRegistry, TracedSpan};
use cpms_store::{ShipError, ShipMetrics, Shipper, TransferScheduler};
use cpms_urltable::{SnapshotHandle, TableError, TablePublisher, UrlEntry, UrlTable};
use cpms_wire::WireError;
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Errors from controller operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum MgmtError {
    /// An agent failed on some broker.
    Agent(AgentError),
    /// The URL table rejected the change.
    Table(TableError),
    /// Offloading would drop the last copy of an object.
    LastCopy {
        /// The object's path.
        path: UrlPath,
    },
    /// The target node does not exist in the cluster.
    NoSuchNode(NodeId),
    /// The object is not hosted on the node the operation names.
    NotHostedOn {
        /// The object's path.
        path: UrlPath,
        /// The node named by the operation.
        node: NodeId,
    },
    /// The object is already hosted on the target node.
    AlreadyHostedOn {
        /// The object's path.
        path: UrlPath,
        /// The node named by the operation.
        node: NodeId,
    },
}

impl fmt::Display for MgmtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MgmtError::Agent(e) => write!(f, "agent failed: {e}"),
            MgmtError::Table(e) => write!(f, "URL table rejected change: {e}"),
            MgmtError::LastCopy { path } => {
                write!(f, "refusing to drop the last copy of {path}")
            }
            MgmtError::NoSuchNode(n) => write!(f, "no node {n} in the cluster"),
            MgmtError::NotHostedOn { path, node } => {
                write!(f, "{path} is not hosted on {node}")
            }
            MgmtError::AlreadyHostedOn { path, node } => {
                write!(f, "{path} is already hosted on {node}")
            }
        }
    }
}

impl std::error::Error for MgmtError {}

#[doc(hidden)]
impl From<AgentError> for MgmtError {
    fn from(e: AgentError) -> Self {
        MgmtError::Agent(e)
    }
}

#[doc(hidden)]
impl From<TableError> for MgmtError {
    fn from(e: TableError) -> Self {
        MgmtError::Table(e)
    }
}

/// Which transport a cluster's brokers are served over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireMode {
    /// In-process executor threads reached over channels (the original
    /// single-process control plane).
    #[default]
    InProc,
    /// Each broker is a TCP daemon on an ephemeral loopback port; every
    /// RPC crosses a real socket.
    Tcp,
}

/// A running set of brokers, one per node.
#[derive(Debug)]
pub struct Cluster {
    brokers: Vec<BrokerHandle>,
}

impl Cluster {
    /// Starts `nodes` brokers, each with `disk_capacity` bytes of store.
    pub fn start(nodes: usize, disk_capacity: u64) -> Self {
        Self::start_mode(WireMode::InProc, nodes, disk_capacity)
    }

    /// Starts `nodes` brokers over the given wire transport.
    ///
    /// # Panics
    ///
    /// In [`WireMode::Tcp`] if binding a loopback listener fails.
    pub fn start_mode(mode: WireMode, nodes: usize, disk_capacity: u64) -> Self {
        Cluster {
            brokers: (0..nodes)
                .map(|i| Self::host(mode, NodeStore::new(NodeId(i as u16), disk_capacity)))
                .collect(),
        }
    }

    /// Starts brokers with per-node disk capacities.
    pub fn start_with_capacities(capacities: &[u64]) -> Self {
        Cluster {
            brokers: capacities
                .iter()
                .enumerate()
                .map(|(i, &cap)| {
                    Self::host(WireMode::InProc, NodeStore::new(NodeId(i as u16), cap))
                })
                .collect(),
        }
    }

    fn host(mode: WireMode, store: NodeStore) -> BrokerHandle {
        match mode {
            WireMode::InProc => Broker::spawn(store),
            WireMode::Tcp => Broker::bind("127.0.0.1:0".parse().expect("literal addr"), store)
                .expect("bind ephemeral loopback broker"),
        }
    }

    /// Assembles a cluster from pre-built handles (brokers bound with
    /// custom state, fault-wrapped transports, or remote daemons). Node
    /// ids must match the handles' positions.
    pub fn from_handles(brokers: Vec<BrokerHandle>) -> Self {
        Cluster { brokers }
    }

    /// Folds every broker client's wire metrics into `registry`.
    pub fn attach_metrics(&self, registry: &Arc<MetricsRegistry>) {
        for b in &self.brokers {
            b.attach_metrics(registry);
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.brokers.len()
    }

    /// Whether the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.brokers.is_empty()
    }

    /// The broker handle for `node`.
    pub fn broker(&self, node: NodeId) -> Option<&BrokerHandle> {
        self.brokers.get(node.index())
    }

    /// Stops every broker.
    pub fn shutdown(&mut self) {
        for b in &mut self.brokers {
            b.shutdown();
        }
    }

    /// Kills one node's broker (failure injection for monitoring tests).
    pub fn kill_node(&mut self, node: NodeId) {
        if let Some(b) = self.brokers.get_mut(node.index()) {
            b.kill();
        }
    }
}

/// An observed divergence between the URL table and the brokers' actual
/// file stores (see [`Controller::verify_consistency`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inconsistency {
    /// The table lists a location that has no copy of the file.
    MissingCopy {
        /// The object's path.
        path: UrlPath,
        /// The node that should have it.
        node: NodeId,
    },
    /// A node stores a file the table doesn't know about (orphan).
    Orphan {
        /// The orphan's path.
        path: UrlPath,
        /// The node storing it.
        node: NodeId,
    },
    /// Copies disagree about the content id.
    ContentMismatch {
        /// The object's path.
        path: UrlPath,
        /// The node with the divergent copy.
        node: NodeId,
    },
}

/// What [`Controller::evict`] did to the routing image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictReport {
    /// The evicted node.
    pub node: NodeId,
    /// Table entries that lost this node as a location but stay
    /// routable on surviving replicas.
    pub dropped_locations: usize,
    /// Entries removed outright because their only copy lived on the
    /// evicted node.
    pub lost: Vec<UrlPath>,
}

impl fmt::Display for EvictReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "evicted {}: {} location(s) dropped, {} object(s) lost",
            self.node,
            self.dropped_locations,
            self.lost.len()
        )
    }
}

/// Metric handles the controller records management operations through.
#[derive(Debug)]
struct ControllerMetrics {
    registry: Arc<MetricsRegistry>,
    ops: Arc<Counter>,
    errors: Arc<Counter>,
    op_ns: HistogramRecorder,
    generation: Arc<Gauge>,
}

impl ControllerMetrics {
    fn new(registry: Arc<MetricsRegistry>) -> Self {
        ControllerMetrics {
            ops: registry.counter("mgmt_ops_total"),
            errors: registry.counter("mgmt_op_errors_total"),
            op_ns: registry.histogram_with_shards("mgmt_op_ns", 1).recorder(0),
            generation: registry.gauge("mgmt_table_generation"),
            registry,
        }
    }
}

/// The management controller: URL-table publisher + broker handles.
///
/// The table is never mutated in place: every management operation builds
/// and publishes a fresh immutable snapshot through a [`TablePublisher`],
/// which live distributor workers observe via [`Controller::handle`]
/// (§2.2's "the controller will change the URL table to adapt to these
/// changes").
///
/// Every mutating operation is observed: its latency lands in the
/// `mgmt_op_ns` histogram, its outcome in `mgmt_ops_total` /
/// `mgmt_op_errors_total` (plus a per-operation counter), and the
/// publication generation in the `mgmt_table_generation` gauge. The
/// controller owns a private [`MetricsRegistry`] by default; hand it a
/// shared one with [`Controller::set_metrics`] to fold the management
/// plane into the same stats surface as the proxy.
#[derive(Debug)]
pub struct Controller {
    publisher: TablePublisher,
    cluster: Cluster,
    metrics: ControllerMetrics,
    shipper: Shipper,
    sched: TransferScheduler,
    throttle: Option<Arc<cpms_store::TokenBucket>>,
    decommissioned: HashSet<NodeId>,
}

impl Controller {
    /// Creates a controller over a running cluster with an empty URL table.
    pub fn new(cluster: Cluster) -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        cluster.attach_metrics(&registry);
        let shipper = Shipper::new().with_metrics(ShipMetrics::attach(&registry));
        Controller {
            publisher: TablePublisher::default(),
            cluster,
            metrics: ControllerMetrics::new(registry),
            shipper,
            sched: TransferScheduler::default(),
            throttle: None,
            decommissioned: HashSet::new(),
        }
    }

    fn rebuild_shipper(&mut self) {
        let mut shipper = Shipper::new().with_metrics(ShipMetrics::attach(&self.metrics.registry));
        if let Some(bucket) = &self.throttle {
            shipper = shipper.with_throttle(Arc::clone(bucket));
        }
        self.shipper = shipper;
    }

    /// Redirects the controller's metrics into `registry` — the
    /// single-system-image wiring that puts management-plane metrics on
    /// the same surface as the request path (share the registry with
    /// [`ContentAwareProxy::start_with_registry`][proxy]).
    ///
    /// [proxy]: https://docs.rs/cpms-httpd
    pub fn set_metrics(&mut self, registry: &Arc<MetricsRegistry>) {
        self.metrics = ControllerMetrics::new(Arc::clone(registry));
        // Broker RPC latency/retry/byte counters land on the same surface.
        self.cluster.attach_metrics(registry);
        // Transfer counters and latency too.
        self.rebuild_shipper();
    }

    /// Caps content-transfer bandwidth with a shared token bucket.
    pub fn set_bandwidth_limit(&mut self, bucket: Arc<cpms_store::TokenBucket>) {
        self.throttle = Some(bucket);
        self.rebuild_shipper();
    }

    /// Caps how many transfers the controller runs concurrently during
    /// fan-out operations (publish to N nodes).
    pub fn set_transfer_limit(&mut self, limit: usize) {
        self.sched = TransferScheduler::new(limit);
    }

    /// The transfer scheduler (in-flight/lifetime transfer counts for
    /// the console).
    pub fn scheduler(&self) -> &TransferScheduler {
        &self.sched
    }

    /// The registry management operations are recorded into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics.registry
    }

    /// Samples the table gauges and renders the full registry as a
    /// human-readable report — the console `stats` command.
    pub fn metrics_report(&self) -> String {
        self.sample_gauges();
        self.metrics.registry.snapshot().to_console()
    }

    /// Samples the table gauges and renders the full registry as JSON.
    pub fn metrics_json(&self) -> String {
        self.sample_gauges();
        self.metrics.registry.snapshot().to_json()
    }

    /// Refreshes the point-in-time gauges (table size/memory/generation)
    /// from the current snapshot.
    fn sample_gauges(&self) {
        let table = self.publisher.snapshot();
        let registry = &self.metrics.registry;
        registry
            .gauge("urltable_entries")
            .set(i64::try_from(table.len()).unwrap_or(i64::MAX));
        registry
            .gauge("urltable_memory_bytes")
            .set(i64::try_from(table.memory_bytes()).unwrap_or(i64::MAX));
        self.metrics
            .generation
            .set(i64::try_from(self.publisher.generation()).unwrap_or(i64::MAX));
    }

    /// Runs one management operation under observation: latency into
    /// `mgmt_op_ns`, outcome into the op counters, failures into the
    /// event log, and the post-op publication generation into the gauge.
    ///
    /// Each operation also roots a `mgmt.<op>` trace span and activates
    /// its context for the duration, so every broker RPC, ship frame, and
    /// event the operation causes — across every node it fans out to —
    /// hangs off one distributed trace.
    fn timed<T>(
        &mut self,
        op: &'static str,
        body: impl FnOnce(&mut Self) -> Result<T, MgmtError>,
    ) -> Result<T, MgmtError> {
        let start = Instant::now();
        let spans = Arc::clone(self.metrics.registry.spans());
        let mut span = TracedSpan::enter(&spans, format!("mgmt.{op}"));
        let result = body(self);
        let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.metrics.ops.inc();
        self.metrics
            .registry
            .counter(&format!("mgmt_{op}_total"))
            .inc();
        self.metrics.op_ns.record(elapsed);
        self.metrics
            .generation
            .set(i64::try_from(self.publisher.generation()).unwrap_or(i64::MAX));
        if let Err(e) = &result {
            self.metrics.errors.inc();
            span.set_error(true);
            span.set_detail(e.to_string());
            self.metrics
                .registry
                .events()
                .record("mgmt", None, format!("{op} failed: {e}"));
        }
        result
    }

    /// The current URL-table snapshot (what the distributor routes from).
    pub fn table(&self) -> Arc<UrlTable> {
        self.publisher.snapshot()
    }

    /// The snapshot publisher the controller mutates through.
    pub fn publisher(&self) -> &TablePublisher {
        &self.publisher
    }

    /// A handle for distributor workers to observe table publications.
    pub fn handle(&self) -> SnapshotHandle {
        self.publisher.handle()
    }

    /// Number of nodes under management.
    pub fn node_count(&self) -> usize {
        self.cluster.len()
    }

    /// Shuts every broker down.
    pub fn shutdown(&mut self) {
        self.cluster.shutdown();
    }

    /// The underlying broker cluster (for monitoring).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Kills one node's broker (failure injection).
    pub fn kill_node(&mut self, node: NodeId) {
        self.cluster.kill_node(node);
    }

    /// Whether `node` has been evicted from the routing image (see
    /// [`Controller::evict`]). Auditors skip decommissioned nodes
    /// instead of reporting them unreachable forever.
    pub fn is_decommissioned(&self, node: NodeId) -> bool {
        self.decommissioned.contains(&node)
    }

    /// Evicts a dead node from the single system image: every table
    /// entry that still routes to it loses that location, entries whose
    /// *only* copy lived there are removed outright (and reported as
    /// lost), and the node is marked decommissioned so anti-entropy
    /// audits stop counting it as unreachable drift. This is the
    /// operator's response to a crashed backend: the distributor stops
    /// sending requests at it immediately, and a follow-up `repair`
    /// restores replication from the survivors.
    ///
    /// # Errors
    ///
    /// [`MgmtError::NoSuchNode`] if the node was never in the cluster.
    pub fn evict(&mut self, node: NodeId) -> Result<EvictReport, MgmtError> {
        self.timed("evict", |c| c.evict_impl(node))
    }

    fn evict_impl(&mut self, node: NodeId) -> Result<EvictReport, MgmtError> {
        if self.cluster.broker(node).is_none() {
            return Err(MgmtError::NoSuchNode(node));
        }
        let snapshot = self.table();
        let affected: Vec<(UrlPath, usize)> = snapshot
            .iter()
            .filter(|(_, entry)| entry.hosted_on(node))
            .map(|(path, entry)| (path, entry.replica_count()))
            .collect();
        let mut dropped_locations = 0usize;
        let mut lost: Vec<UrlPath> = Vec::new();
        self.publisher.update(|t| -> Result<(), TableError> {
            for (path, replicas) in &affected {
                if *replicas > 1 {
                    t.remove_location(path, node)?;
                    dropped_locations += 1;
                } else {
                    t.remove(path)?;
                    lost.push(path.clone());
                }
            }
            Ok(())
        })?;
        self.decommissioned.insert(node);
        Ok(EvictReport {
            node,
            dropped_locations,
            lost,
        })
    }

    fn broker(&self, node: NodeId) -> Result<&BrokerHandle, MgmtError> {
        self.cluster.broker(node).ok_or(MgmtError::NoSuchNode(node))
    }

    /// Maps a transfer failure against `node`'s broker onto the
    /// management-error taxonomy.
    fn ship_failure(node: NodeId, e: ShipError) -> MgmtError {
        match e {
            ShipError::Store(e) => MgmtError::Agent(AgentError::Store(e.into())),
            ShipError::Wire(w) => MgmtError::Agent(AgentError::from_wire(node, w)),
            ShipError::Protocol { detail } => MgmtError::Agent(AgentError::Transport {
                node,
                error: WireError::Codec { detail },
            }),
            other => MgmtError::Agent(AgentError::Transport {
                node,
                error: WireError::Io {
                    kind: "transfer".to_string(),
                    detail: other.to_string(),
                },
            }),
        }
    }

    /// Publishes a new object to the given nodes, synthesizing its
    /// deterministic body from `(content, size)` — how workload-spec
    /// objects (declared sizes, no payload) become real bytes.
    ///
    /// # Errors
    ///
    /// See [`Controller::publish_bytes`].
    pub fn publish(
        &mut self,
        path: &UrlPath,
        content: ContentId,
        kind: ContentKind,
        size: u64,
        priority: Priority,
        nodes: &[NodeId],
    ) -> Result<(), MgmtError> {
        let body = cpms_store::synthetic_body(content, size);
        self.timed("publish", |c| {
            c.publish_impl(path, content, kind, priority, nodes, &body)
        })
    }

    /// Publishes a new object with an explicit body: ships the bytes to
    /// each target broker's content store (concurrently, bounded by the
    /// transfer scheduler), and only after every copy has **committed**
    /// records the object in the URL table — so no published generation
    /// ever routes a lookup to a node lacking the content. The table
    /// entry's size and checksum come from the committed store object,
    /// not from what the caller declared. If any transfer fails, the
    /// copies already committed are rolled back.
    ///
    /// # Errors
    ///
    /// [`MgmtError::Agent`] on transfer/broker failure (after rollback),
    /// [`MgmtError::Table`] if the path is already published.
    pub fn publish_bytes(
        &mut self,
        path: &UrlPath,
        content: ContentId,
        kind: ContentKind,
        priority: Priority,
        nodes: &[NodeId],
        body: &[u8],
    ) -> Result<(), MgmtError> {
        self.timed("publish", |c| {
            c.publish_impl(path, content, kind, priority, nodes, body)
        })
    }

    fn publish_impl(
        &mut self,
        path: &UrlPath,
        content: ContentId,
        kind: ContentKind,
        priority: Priority,
        nodes: &[NodeId],
        body: &[u8],
    ) -> Result<(), MgmtError> {
        if self.table().lookup_exact(path).is_some() {
            return Err(MgmtError::Table(TableError::AlreadyExists {
                path: path.clone(),
            }));
        }
        let handles: Vec<&BrokerHandle> = nodes
            .iter()
            .map(|&n| self.broker(n))
            .collect::<Result<_, _>>()?;
        let shipper = &self.shipper;
        let results = self.sched.run(handles, |_, handle| {
            shipper
                .push(handle, path, content, 0, body, false)
                .map(|outcome| (handle.node(), outcome))
        });
        let mut stored: Vec<NodeId> = Vec::new();
        let mut committed: Option<cpms_store::ObjectMeta> = None;
        let mut failure: Option<MgmtError> = None;
        for (i, result) in results.into_iter().enumerate() {
            match result {
                Ok((node, outcome)) => {
                    stored.push(node);
                    committed.get_or_insert(outcome.meta);
                }
                Err(e) => {
                    failure.get_or_insert(Self::ship_failure(nodes[i], e));
                }
            }
        }
        if let Some(e) = failure {
            // Roll back the copies that did commit.
            for &done in &stored {
                let _ = self
                    .broker(done)?
                    .dispatch(DeleteFile { path: path.clone() });
            }
            return Err(e);
        }
        // Entry size/checksum reflect the committed bytes, not the
        // caller's declaration.
        let (size, checksum) = committed
            .map(|m| (m.size, m.checksum))
            .unwrap_or((body.len() as u64, cpms_store::fnv64(body)));
        self.publisher.update(|t| {
            t.insert(
                path.clone(),
                UrlEntry::new(content, kind, size)
                    .with_priority(priority)
                    .with_locations(stored)
                    .with_checksum(checksum),
            )
        })?;
        Ok(())
    }

    /// Deletes an object everywhere: agents to every hosting broker, then
    /// the table record.
    ///
    /// # Errors
    ///
    /// [`MgmtError::Table`] if unknown; broker failures are surfaced but
    /// the table record is still removed (the distributor must stop
    /// routing to a half-deleted object).
    pub fn delete(&mut self, path: &UrlPath) -> Result<(), MgmtError> {
        self.timed("delete", |c| c.delete_impl(path))
    }

    fn delete_impl(&mut self, path: &UrlPath) -> Result<(), MgmtError> {
        let locations = self
            .table()
            .lookup_exact(path)
            .ok_or_else(|| TableError::NotFound { path: path.clone() })?
            .locations()
            .to_vec();
        let mut first_err: Option<MgmtError> = None;
        for n in locations {
            if let Err(e) = self.broker(n)?.dispatch(DeleteFile { path: path.clone() }) {
                first_err.get_or_insert(e.into());
            }
        }
        self.publisher.update(|t| t.remove(path))?;
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Replicates an object onto `target` (the receiving half of §3.3's
    /// auto-replication, also exposed to the administrator for manual
    /// fault-tolerance placement). The copy is real data movement: the
    /// bytes are pulled — chunk-verified — from a healthy source replica
    /// and pushed to the target's content store; the table location is
    /// added only after the target has committed them.
    ///
    /// # Errors
    ///
    /// [`MgmtError::AlreadyHostedOn`] if the target already has a copy;
    /// [`MgmtError::Agent`] if the transfer fails (table untouched).
    pub fn replicate(&mut self, path: &UrlPath, target: NodeId) -> Result<(), MgmtError> {
        self.timed("replicate", |c| c.replicate_impl(path, target))
    }

    fn replicate_impl(&mut self, path: &UrlPath, target: NodeId) -> Result<(), MgmtError> {
        let snapshot = self.table();
        let entry = snapshot
            .lookup_exact(path)
            .ok_or_else(|| TableError::NotFound { path: path.clone() })?;
        if entry.hosted_on(target) {
            return Err(MgmtError::AlreadyHostedOn {
                path: path.clone(),
                node: target,
            });
        }
        self.broker(target)?;
        // Pull verified bytes from the first source replica that answers.
        let mut pulled = None;
        let mut last_err: Option<MgmtError> = None;
        for &source in entry.locations() {
            match self.broker(source) {
                Ok(handle) => match self.shipper.pull(handle, path) {
                    Ok(x) => {
                        pulled = Some(x);
                        break;
                    }
                    Err(e) => last_err = Some(Self::ship_failure(source, e)),
                },
                Err(e) => last_err = Some(e),
            }
        }
        let (meta, body) = match pulled {
            Some(x) => x,
            None => {
                return Err(last_err.unwrap_or(MgmtError::Agent(AgentError::Store(
                    crate::store::StoreError::NotFound { path: path.clone() },
                ))))
            }
        };
        self.shipper
            .push_meta(self.broker(target)?, path, meta, &body, false)
            .map_err(|e| Self::ship_failure(target, e))?;
        // Commit before publish: the location becomes routable only now.
        self.publisher.update(|t| t.add_location(path, target))?;
        Ok(())
    }

    /// Removes the copy of an object from `node` (offloading a server), but
    /// never the last copy.
    ///
    /// # Errors
    ///
    /// [`MgmtError::LastCopy`], [`MgmtError::NotHostedOn`], or agent
    /// failures.
    pub fn offload(&mut self, path: &UrlPath, node: NodeId) -> Result<(), MgmtError> {
        self.timed("offload", |c| c.offload_impl(path, node))
    }

    fn offload_impl(&mut self, path: &UrlPath, node: NodeId) -> Result<(), MgmtError> {
        let snapshot = self.table();
        let entry = snapshot
            .lookup_exact(path)
            .ok_or_else(|| TableError::NotFound { path: path.clone() })?;
        if !entry.hosted_on(node) {
            return Err(MgmtError::NotHostedOn {
                path: path.clone(),
                node,
            });
        }
        if entry.replica_count() <= 1 {
            return Err(MgmtError::LastCopy { path: path.clone() });
        }
        self.broker(node)?
            .dispatch(DeleteFile { path: path.clone() })?;
        self.publisher.update(|t| t.remove_location(path, node))?;
        Ok(())
    }

    /// Renames an object or a whole subtree, on every hosting node and in
    /// the table.
    ///
    /// # Errors
    ///
    /// Table errors (missing source, occupied destination) are checked
    /// before any agent is dispatched.
    pub fn rename(&mut self, from: &UrlPath, to: &UrlPath) -> Result<(), MgmtError> {
        self.timed("rename", |c| c.rename_impl(from, to))
    }

    fn rename_impl(&mut self, from: &UrlPath, to: &UrlPath) -> Result<(), MgmtError> {
        // Collect the affected records first (file or subtree).
        let moves: Vec<(UrlPath, UrlPath, Vec<NodeId>)> = self
            .table()
            .subtree(from)
            .map(|(path, entry)| {
                let suffix = &path.as_str()[from.as_str().len()..];
                let new_path: UrlPath = format!("{}{}", to.as_str(), suffix)
                    .parse()
                    .expect("concatenation of valid paths is valid");
                (path, new_path, entry.locations().to_vec())
            })
            .collect();
        if moves.is_empty() {
            return Err(MgmtError::Table(TableError::NotFound {
                path: from.clone(),
            }));
        }
        // Table first (it validates the destination atomically)…
        self.publisher.update(|t| t.rename(from, to))?;
        // …then propagate to brokers.
        let mut first_err: Option<MgmtError> = None;
        for (old, new, locations) in moves {
            for n in locations {
                if let Err(e) = self.broker(n)?.dispatch(RenameFile {
                    from: old.clone(),
                    to: new.clone(),
                }) {
                    first_err.get_or_insert(e.into());
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Pushes a content update to every copy of a mutable document,
    /// returning the new version. §4 recommends keeping mutable documents
    /// single-copy so this stays a one-node operation.
    ///
    /// # Errors
    ///
    /// Table or agent errors.
    pub fn update_content(&mut self, path: &UrlPath) -> Result<u64, MgmtError> {
        self.timed("update_content", |c| c.update_content_impl(path))
    }

    fn update_content_impl(&mut self, path: &UrlPath) -> Result<u64, MgmtError> {
        let locations = self
            .table()
            .lookup_exact(path)
            .ok_or_else(|| TableError::NotFound { path: path.clone() })?
            .locations()
            .to_vec();
        let mut version = 0;
        for n in locations {
            match self.broker(n)?.dispatch(TouchFile { path: path.clone() })? {
                AgentOutput::Version(v) => version = version.max(v),
                other => unreachable!("touch returns a version, got {other:?}"),
            }
        }
        Ok(version)
    }

    /// Probes every broker for its status.
    pub fn status(&self) -> Vec<(NodeId, Result<AgentOutput, AgentError>)> {
        (0..self.cluster.len())
            .map(|i| {
                let node = NodeId(i as u16);
                let result = self
                    .cluster
                    .broker(node)
                    .expect("index in range")
                    .dispatch(StatusProbe);
                (node, result)
            })
            .collect()
    }

    /// Audits the single system image: every table location must have a
    /// matching broker copy and vice versa. Returns all divergences
    /// (empty = consistent).
    pub fn verify_consistency(&self) -> Vec<Inconsistency> {
        let mut problems = Vec::new();
        // Gather each node's actual listing.
        let mut per_node: Vec<std::collections::HashMap<UrlPath, ContentId>> = Vec::new();
        for i in 0..self.cluster.len() {
            let node = NodeId(i as u16);
            // Evicted nodes are outside the image: leftover files on
            // their disks are expected, not orphans.
            if self.is_decommissioned(node) {
                per_node.push(std::collections::HashMap::new());
                continue;
            }
            let listing = match self
                .cluster
                .broker(node)
                .expect("index in range")
                .dispatch(ListFiles)
            {
                Ok(AgentOutput::Listing(l)) => l,
                _ => Vec::new(),
            };
            per_node.push(listing.into_iter().map(|(p, f)| (p, f.content)).collect());
        }
        // Table → brokers.
        let table = self.table();
        for (path, entry) in table.iter() {
            for &node in entry.locations() {
                match per_node.get(node.index()).and_then(|m| m.get(&path)) {
                    None => problems.push(Inconsistency::MissingCopy {
                        path: path.clone(),
                        node,
                    }),
                    Some(&content) if content != entry.content() => {
                        problems.push(Inconsistency::ContentMismatch {
                            path: path.clone(),
                            node,
                        })
                    }
                    Some(_) => {}
                }
            }
        }
        // Brokers → table (orphans).
        for (i, listing) in per_node.iter().enumerate() {
            let node = NodeId(i as u16);
            for path in listing.keys() {
                let hosted = table
                    .lookup_exact(path)
                    .map(|e| e.hosted_on(node))
                    .unwrap_or(false);
                if !hosted {
                    problems.push(Inconsistency::Orphan {
                        path: path.clone(),
                        node,
                    });
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::StoreFile;
    use crate::store::StoredFile;

    fn p(s: &str) -> UrlPath {
        s.parse().unwrap()
    }

    fn controller(nodes: usize) -> Controller {
        Controller::new(Cluster::start(nodes, 1 << 20))
    }

    fn publish(c: &mut Controller, path: &str, id: u32, nodes: &[u16]) {
        let nodes: Vec<NodeId> = nodes.iter().map(|&n| NodeId(n)).collect();
        c.publish(
            &p(path),
            ContentId(id),
            ContentKind::StaticHtml,
            100,
            Priority::Normal,
            &nodes,
        )
        .unwrap();
    }

    #[test]
    fn publish_reaches_brokers_and_table() {
        let mut c = controller(3);
        publish(&mut c, "/a/x.html", 1, &[0, 2]);
        let table = c.table();
        let entry = table.lookup(&p("/a/x.html")).unwrap();
        assert_eq!(entry.locations(), [NodeId(0), NodeId(2)]);
        assert!(c.verify_consistency().is_empty());
        c.shutdown();
    }

    #[test]
    fn publish_duplicate_rejected() {
        let mut c = controller(2);
        publish(&mut c, "/a", 1, &[0]);
        let err = c
            .publish(
                &p("/a"),
                ContentId(2),
                ContentKind::StaticHtml,
                100,
                Priority::Normal,
                &[NodeId(1)],
            )
            .unwrap_err();
        assert!(matches!(
            err,
            MgmtError::Table(TableError::AlreadyExists { .. })
        ));
        assert!(
            c.verify_consistency().is_empty(),
            "failed publish left no orphans"
        );
        c.shutdown();
    }

    #[test]
    fn publish_rolls_back_on_disk_full() {
        let mut c = Controller::new(Cluster::start_with_capacities(&[1 << 20, 50]));
        // node 1 has only 50 bytes: storing 100 fails after node 0 succeeded
        let err = c
            .publish(
                &p("/big"),
                ContentId(1),
                ContentKind::StaticHtml,
                100,
                Priority::Normal,
                &[NodeId(0), NodeId(1)],
            )
            .unwrap_err();
        assert!(matches!(err, MgmtError::Agent(_)));
        assert!(c.table().is_empty());
        assert!(
            c.verify_consistency().is_empty(),
            "rollback removed partial copies"
        );
        c.shutdown();
    }

    #[test]
    fn replicate_and_offload() {
        let mut c = controller(3);
        publish(&mut c, "/a", 1, &[0]);
        c.replicate(&p("/a"), NodeId(1)).unwrap();
        assert_eq!(c.table().lookup(&p("/a")).unwrap().replica_count(), 2);
        assert!(c.verify_consistency().is_empty());

        assert!(matches!(
            c.replicate(&p("/a"), NodeId(1)),
            Err(MgmtError::AlreadyHostedOn { .. })
        ));

        c.offload(&p("/a"), NodeId(0)).unwrap();
        assert_eq!(c.table().lookup(&p("/a")).unwrap().locations(), [NodeId(1)]);
        assert!(c.verify_consistency().is_empty());

        // never drop the last copy
        assert!(matches!(
            c.offload(&p("/a"), NodeId(1)),
            Err(MgmtError::LastCopy { .. })
        ));
        // not hosted
        assert!(matches!(
            c.offload(&p("/a"), NodeId(2)),
            Err(MgmtError::NotHostedOn { .. })
        ));
        c.shutdown();
    }

    #[test]
    fn delete_everywhere() {
        let mut c = controller(3);
        publish(&mut c, "/a", 1, &[0, 1, 2]);
        c.delete(&p("/a")).unwrap();
        assert!(c.table().is_empty());
        assert!(c.verify_consistency().is_empty());
        assert!(matches!(
            c.delete(&p("/a")),
            Err(MgmtError::Table(TableError::NotFound { .. }))
        ));
        c.shutdown();
    }

    #[test]
    fn rename_subtree_propagates() {
        let mut c = controller(2);
        publish(&mut c, "/img/a.gif", 1, &[0]);
        publish(&mut c, "/img/deep/b.gif", 2, &[1]);
        c.rename(&p("/img"), &p("/media")).unwrap();
        assert!(c.table().lookup(&p("/media/a.gif")).is_some());
        assert!(c.table().lookup(&p("/media/deep/b.gif")).is_some());
        assert!(c.verify_consistency().is_empty());
        c.shutdown();
    }

    #[test]
    fn rename_missing_source() {
        let mut c = controller(1);
        assert!(matches!(
            c.rename(&p("/none"), &p("/x")),
            Err(MgmtError::Table(TableError::NotFound { .. }))
        ));
        c.shutdown();
    }

    #[test]
    fn update_content_bumps_versions() {
        let mut c = controller(2);
        publish(&mut c, "/mutable.html", 1, &[0, 1]);
        assert_eq!(c.update_content(&p("/mutable.html")).unwrap(), 1);
        assert_eq!(c.update_content(&p("/mutable.html")).unwrap(), 2);
        c.shutdown();
    }

    #[test]
    fn status_covers_all_nodes() {
        let mut c = controller(3);
        publish(&mut c, "/a", 1, &[1]);
        let status = c.status();
        assert_eq!(status.len(), 3);
        match &status[1].1 {
            Ok(AgentOutput::Status { files, .. }) => assert_eq!(*files, 1),
            other => panic!("{other:?}"),
        }
        c.shutdown();
    }

    #[test]
    fn consistency_detects_orphan_and_missing() {
        let mut c = controller(2);
        publish(&mut c, "/a", 1, &[0]);
        // sabotage: delete the file behind the controller's back
        c.cluster
            .broker(NodeId(0))
            .unwrap()
            .dispatch(DeleteFile { path: p("/a") })
            .unwrap();
        let problems = c.verify_consistency();
        assert!(problems
            .iter()
            .any(|i| matches!(i, Inconsistency::MissingCopy { .. })));

        // sabotage: store an unknown file directly
        c.cluster
            .broker(NodeId(1))
            .unwrap()
            .dispatch(StoreFile {
                path: p("/ghost"),
                file: StoredFile {
                    content: ContentId(9),
                    size: 1,
                    version: 0,
                },
                overwrite: false,
            })
            .unwrap();
        let problems = c.verify_consistency();
        assert!(problems
            .iter()
            .any(|i| matches!(i, Inconsistency::Orphan { .. })));
        c.shutdown();
    }

    #[test]
    fn operations_are_observed_in_the_registry() {
        let mut c = controller(2);
        let registry = Arc::new(cpms_obs::MetricsRegistry::new());
        c.set_metrics(&registry);

        publish(&mut c, "/a", 1, &[0]);
        c.replicate(&p("/a"), NodeId(1)).unwrap();
        assert!(c.replicate(&p("/a"), NodeId(1)).is_err()); // duplicate
        c.delete(&p("/a")).unwrap();

        let snap = registry.snapshot();
        assert_eq!(snap.counter("mgmt_ops_total"), Some(4));
        assert_eq!(snap.counter("mgmt_op_errors_total"), Some(1));
        assert_eq!(snap.counter("mgmt_publish_total"), Some(1));
        assert_eq!(snap.counter("mgmt_replicate_total"), Some(2));
        assert_eq!(snap.counter("mgmt_delete_total"), Some(1));
        let op_ns = snap.histogram("mgmt_op_ns").unwrap();
        assert_eq!(op_ns.count, 4);
        assert!(op_ns.max > 0, "operations take measurable time");
        // publish, replicate, delete each published a generation
        assert_eq!(snap.gauge("mgmt_table_generation"), Some(3));
        assert!(snap
            .events
            .iter()
            .any(|e| e.stage == "mgmt" && e.detail.contains("replicate failed")));

        let report = c.metrics_report();
        assert!(report.contains("mgmt_ops_total"), "{report}");
        assert!(report.contains("urltable_memory_bytes"), "{report}");
        c.shutdown();
    }

    #[test]
    fn management_operations_trace_across_controller_and_brokers() {
        use crate::store::BrokerState;
        use cpms_obs::SpanCollector;

        // Each broker gets its own collector, standing in for a separate
        // process's trace surface.
        let broker_spans: Vec<Arc<SpanCollector>> =
            (0..2).map(|_| Arc::new(SpanCollector::default())).collect();
        let handles = broker_spans
            .iter()
            .enumerate()
            .map(|(i, spans)| {
                Broker::spawn_observed(
                    BrokerState::from_meta(NodeStore::new(NodeId(i as u16), 1 << 20)),
                    Arc::clone(spans),
                )
            })
            .collect();
        let mut c = Controller::new(Cluster::from_handles(handles));
        let registry = Arc::new(cpms_obs::MetricsRegistry::new());
        c.set_metrics(&registry);

        publish(&mut c, "/traced", 1, &[0]);
        c.replicate(&p("/traced"), NodeId(1)).unwrap();

        let ctrl = registry.spans().snapshot();
        let publish_root = ctrl.iter().find(|s| s.name == "mgmt.publish").unwrap();
        let replicate_root = ctrl.iter().find(|s| s.name == "mgmt.replicate").unwrap();
        assert_eq!(publish_root.parent, None);
        assert_ne!(
            publish_root.trace, replicate_root.trace,
            "each operation is its own trace"
        );
        // The controller's wire client hops hang off the operation roots.
        assert!(ctrl
            .iter()
            .any(|s| s.name == "wire.call" && s.trace == publish_root.trace));
        // The brokers — separate collectors, reached over the wire —
        // recorded their halves of the same traces.
        let b0 = broker_spans[0].snapshot();
        assert!(
            b0.iter()
                .any(|s| s.name == "broker.ship" && s.trace == publish_root.trace),
            "publish ship frames traced on node 0: {b0:?}"
        );
        assert!(
            b0.iter().any(|s| s.trace == replicate_root.trace),
            "replicate pulled from node 0 under its trace"
        );
        let b1 = broker_spans[1].snapshot();
        assert!(
            b1.iter()
                .any(|s| s.name == "broker.ship" && s.trace == replicate_root.trace),
            "replicate pushed to node 1 under its trace: {b1:?}"
        );
        // Every broker span has a recorded parent somewhere in the merged
        // set — no orphans.
        let mut known: std::collections::HashSet<u64> = ctrl.iter().map(|s| s.span.0).collect();
        known.extend(b0.iter().chain(b1.iter()).map(|s| s.span.0));
        for span in b0.iter().chain(b1.iter()) {
            let parent = span.parent.expect("broker spans always have parents");
            assert!(known.contains(&parent.0), "orphan broker span {span:?}");
        }
        c.shutdown();
    }

    #[test]
    fn evict_drops_locations_and_reports_lost() {
        let mut c = controller(3);
        publish(&mut c, "/shared", 1, &[0, 1]);
        publish(&mut c, "/solo", 2, &[1]);
        let report = c.evict(NodeId(1)).unwrap();
        assert_eq!(report.dropped_locations, 1);
        assert_eq!(report.lost, vec![p("/solo")]);
        assert!(c.is_decommissioned(NodeId(1)));
        // /shared still routable on node 0; /solo gone.
        let table = c.table();
        assert_eq!(
            table.lookup(&p("/shared")).unwrap().locations(),
            [NodeId(0)]
        );
        assert!(table.lookup(&p("/solo")).is_none());
        assert!(matches!(
            c.evict(NodeId(9)),
            Err(MgmtError::NoSuchNode(NodeId(9)))
        ));
        c.shutdown();
    }

    #[test]
    fn no_such_node() {
        let mut c = controller(1);
        let err = c
            .publish(
                &p("/a"),
                ContentId(1),
                ContentKind::StaticHtml,
                1,
                Priority::Normal,
                &[NodeId(9)],
            )
            .unwrap_err();
        assert!(matches!(err, MgmtError::NoSuchNode(NodeId(9))));
        c.shutdown();
    }
}
