//! A scriptable command shell over the remote console — the CLI stand-in
//! for the paper's Java-applet GUI ("the administrator can download the
//! remote console and interact with it to perform management operations").
//!
//! Used by the `cpms-console` binary; the command language is parsed and
//! executed here so it is unit-testable without a TTY.
//!
//! ```text
//! publish <path> <kind> <size> <node>[,<node>...]   add content
//! replicate <path> <node>                           add a copy
//! offload <path> <node>                             remove a copy
//! rename <from> <to>                                move file or subtree
//! delete <path>                                     remove everywhere
//! touch <path>                                      push a content update
//! evict <node>                                      drop a dead node from routing
//! repair                                            anti-entropy repair pass
//! ls [prefix]                                       coherent tree view
//! status                                            per-node disk/file stats
//! nodes                                             per-node transport health
//! store                                             per-node content-store health
//! stats                                             metrics registry report
//! top                                               merged cluster activity view
//! health                                            SLO verdicts + reachability
//! audit                                             verify table vs brokers
//! help                                              this text
//! quit                                              exit
//! ```
//!
//! Health commands (`audit`, `status`, `store`, `repair`, `health`)
//! distinguish a healthy answer ([`ShellOutcome::Output`]) from a
//! detected problem ([`ShellOutcome::Failure`]) so scripts and CI can
//! turn drift, down nodes, or SLO breaches into a nonzero exit code.
//!
//! `top` and `health` read the controller registry's flight recorder
//! ([`cpms_obs::SeriesRecorder`]) and SLO watchdog
//! ([`cpms_obs::SloWatchdog`]) when installed; without a recorder they
//! still render node reachability, gauges, and stage latency from a
//! point-in-time snapshot.

use crate::auditor::AntiEntropyAuditor;
use crate::console::RemoteConsole;
use crate::monitor::ClusterMonitor;
use cpms_model::{ContentId, ContentKind, NodeId, UrlPath};
use cpms_obs::{SloVerdict, SpanId, SpanRecord, TraceId};
use cpms_store::{ShipPort, ShipReply, ShipRequest, StoreStats};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Window `top` uses when deriving rates from the flight recorder.
const TOP_RATE_WINDOW: Duration = Duration::from_secs(10);

/// The outcome of executing one command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShellOutcome {
    /// Command executed; human-readable output to print.
    Output(String),
    /// Command executed and *detected a problem* (drift, down nodes,
    /// failed repairs). The text should be printed like output, but a
    /// script driving the shell must exit nonzero.
    Failure(String),
    /// The user asked to exit.
    Quit,
}

/// A stateful command shell over a [`RemoteConsole`].
#[derive(Debug)]
pub struct Shell {
    console: RemoteConsole,
    monitor: ClusterMonitor,
    next_content: u32,
}

impl Shell {
    /// Wraps a console. Content ids are auto-assigned per publish.
    pub fn new(console: RemoteConsole) -> Self {
        let nodes = console.controller().node_count();
        Shell {
            console,
            monitor: ClusterMonitor::new(nodes, 3),
            next_content: 0,
        }
    }

    /// Access to the wrapped console (for tests and embedding).
    pub fn console(&self) -> &RemoteConsole {
        &self.console
    }

    /// Consumes the shell, shutting the cluster down.
    pub fn shutdown(self) {
        self.console.shutdown();
    }

    /// Parses and executes one command line. Errors never panic; they are
    /// rendered into the output so a script can keep going.
    pub fn execute(&mut self, line: &str) -> ShellOutcome {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return ShellOutcome::Output(String::new());
        }
        let mut words = line.split_whitespace();
        let command = words.next().expect("nonempty line has a first word");
        let args: Vec<&str> = words.collect();
        match self.dispatch(command, &args) {
            Ok(ShellOutcome::Quit) => ShellOutcome::Quit,
            Ok(out) => out,
            Err(message) => ShellOutcome::Output(format!("error: {message}")),
        }
    }

    fn dispatch(&mut self, command: &str, args: &[&str]) -> Result<ShellOutcome, String> {
        match command {
            "publish" => {
                let [path, kind, size, nodes] = expect_args::<4>("publish", args)?;
                let path = parse_path(path)?;
                let kind = parse_kind(kind)?;
                let size: u64 = size.parse().map_err(|_| format!("bad size {size:?}"))?;
                let nodes = parse_nodes(nodes)?;
                let id = ContentId(self.next_content);
                self.console
                    .publish(&path, id, kind, size, &nodes)
                    .map_err(|e| e.to_string())?;
                self.next_content += 1;
                Ok(ShellOutcome::Output(format!("published {path} as {id}")))
            }
            "replicate" => {
                let [path, node] = expect_args::<2>("replicate", args)?;
                let path = parse_path(path)?;
                let node = parse_node(node)?;
                self.console
                    .replicate(&path, node)
                    .map_err(|e| e.to_string())?;
                Ok(ShellOutcome::Output(format!("replicated {path} to {node}")))
            }
            "offload" => {
                let [path, node] = expect_args::<2>("offload", args)?;
                let path = parse_path(path)?;
                let node = parse_node(node)?;
                self.console
                    .offload(&path, node)
                    .map_err(|e| e.to_string())?;
                Ok(ShellOutcome::Output(format!(
                    "offloaded {path} from {node}"
                )))
            }
            "rename" => {
                let [from, to] = expect_args::<2>("rename", args)?;
                let from = parse_path(from)?;
                let to = parse_path(to)?;
                self.console.rename(&from, &to).map_err(|e| e.to_string())?;
                Ok(ShellOutcome::Output(format!("renamed {from} -> {to}")))
            }
            "delete" => {
                let [path] = expect_args::<1>("delete", args)?;
                let path = parse_path(path)?;
                self.console.delete(&path).map_err(|e| e.to_string())?;
                Ok(ShellOutcome::Output(format!("deleted {path}")))
            }
            "touch" => {
                let [path] = expect_args::<1>("touch", args)?;
                let path = parse_path(path)?;
                let version = self
                    .console
                    .controller_mut()
                    .update_content(&path)
                    .map_err(|e| e.to_string())?;
                Ok(ShellOutcome::Output(format!(
                    "{path} now at version {version}"
                )))
            }
            "ls" => {
                let rows = match args {
                    [] => self.console.tree_view(),
                    [prefix] => self.console.list_dir(&parse_path(prefix)?),
                    _ => return Err("usage: ls [prefix]".to_string()),
                };
                let mut out = String::new();
                for row in &rows {
                    let nodes: Vec<String> = row.locations.iter().map(|n| n.to_string()).collect();
                    let _ = writeln!(
                        out,
                        "{:<40} {:>7} {:>9}B {:<9} hits={:<6} on {}",
                        row.path.to_string(),
                        row.kind.to_string(),
                        row.size,
                        row.priority.to_string(),
                        row.hits,
                        nodes.join(",")
                    );
                }
                let _ = write!(out, "{} object(s)", rows.len());
                Ok(ShellOutcome::Output(out))
            }
            "status" => {
                let mut out = String::new();
                let mut down = 0usize;
                for (node, status) in self.console.controller().status() {
                    match status {
                        Ok(crate::agent::AgentOutput::Status {
                            files,
                            used_bytes,
                            free_bytes,
                        }) => {
                            let _ = writeln!(
                                out,
                                "{node}: {files} file(s), {used_bytes}B used, {free_bytes}B free"
                            );
                        }
                        Ok(other) => {
                            let _ = writeln!(out, "{node}: unexpected reply {other:?}");
                        }
                        Err(e) => {
                            // Evicted nodes are expected to be gone; only
                            // unplanned absences are a health failure.
                            if !self.console.controller().is_decommissioned(node) {
                                down += 1;
                            }
                            let _ = writeln!(out, "{node}: DOWN ({e})");
                        }
                    }
                }
                let out = out.trim_end().to_string();
                if down > 0 {
                    Ok(ShellOutcome::Failure(out))
                } else {
                    Ok(ShellOutcome::Output(out))
                }
            }
            "evict" => {
                let [node] = expect_args::<1>("evict", args)?;
                let node = parse_node(node)?;
                let report = self
                    .console
                    .controller_mut()
                    .evict(node)
                    .map_err(|e| e.to_string())?;
                Ok(ShellOutcome::Output(report.to_string()))
            }
            "repair" => {
                if !args.is_empty() {
                    return Err("usage: repair".to_string());
                }
                let report = AntiEntropyAuditor::new().repair(self.console.controller_mut());
                let mut out = String::new();
                for (drift, reason) in &report.failed_repairs {
                    let _ = writeln!(out, "FAILED: {drift}: {reason}");
                }
                let _ = write!(out, "{}", report.summary());
                if report.failed_repairs.is_empty() && report.unreachable.is_empty() {
                    Ok(ShellOutcome::Output(out))
                } else {
                    Ok(ShellOutcome::Failure(out))
                }
            }
            "nodes" => {
                if !args.is_empty() {
                    return Err("usage: nodes".to_string());
                }
                // Probe first so miss counters and RTTs are current.
                self.monitor.poll_controller(self.console.controller());
                let rows = self
                    .monitor
                    .transport_health(self.console.controller().cluster());
                let mut out = String::new();
                let _ = writeln!(
                    out,
                    "{:<5} {:<8} {:<8} {:>10} {:>6} {:>6} {:>8} {:>9} {:>10} {:>10}",
                    "node",
                    "wire",
                    "state",
                    "last_rtt",
                    "miss",
                    "calls",
                    "retries",
                    "timeouts",
                    "reconnects",
                    "store"
                );
                for row in &rows {
                    let state = if row.down {
                        "down"
                    } else if row.consecutive_misses > 0 {
                        "suspect"
                    } else {
                        "up"
                    };
                    let rtt = if row.last_rtt_ns == 0 {
                        "-".to_string()
                    } else {
                        format!("{:.1}us", row.last_rtt_ns as f64 / 1_000.0)
                    };
                    let store = match self.store_stats(row.node) {
                        Some(s) => format!("{}obj", s.objects),
                        None => "-".to_string(),
                    };
                    let _ = writeln!(
                        out,
                        "{:<5} {:<8} {:<8} {:>10} {:>6} {:>6} {:>8} {:>9} {:>10} {:>10}",
                        row.node.to_string(),
                        row.transport,
                        state,
                        rtt,
                        row.consecutive_misses,
                        row.calls,
                        row.retries,
                        row.timeouts,
                        row.reconnects,
                        store
                    );
                }
                Ok(ShellOutcome::Output(out.trim_end().to_string()))
            }
            "store" => {
                if !args.is_empty() {
                    return Err("usage: store".to_string());
                }
                let report = AntiEntropyAuditor::new().audit(self.console.controller());
                let mut drift_per_node: HashMap<NodeId, usize> = HashMap::new();
                for d in &report.drift {
                    *drift_per_node.entry(d.node()).or_default() += 1;
                }
                let mut out = String::new();
                let _ = writeln!(
                    out,
                    "{:<5} {:>8} {:>8} {:>12} {:>12} {:>7} {:>9} {:>6}",
                    "node", "objects", "chunks", "used", "capacity", "staged", "rejected", "drift"
                );
                let controller = self.console.controller();
                for i in 0..controller.node_count() {
                    let node = NodeId(i as u16);
                    match self.store_stats(node) {
                        Some(s) => {
                            let _ = writeln!(
                                out,
                                "{:<5} {:>8} {:>8} {:>11}B {:>11}B {:>7} {:>9} {:>6}",
                                node.to_string(),
                                s.objects,
                                s.chunks,
                                s.committed_bytes,
                                s.capacity_bytes,
                                s.staged_transfers,
                                s.rejected_chunks,
                                drift_per_node.get(&node).copied().unwrap_or(0)
                            );
                        }
                        None => {
                            let _ = writeln!(out, "{:<5} unreachable", node.to_string());
                        }
                    }
                }
                let sched = controller.scheduler();
                let _ = writeln!(
                    out,
                    "transfers: {} in flight, {} started total",
                    sched.inflight(),
                    sched.started_total()
                );
                let _ = write!(out, "{}", report.summary());
                if report.is_clean() {
                    Ok(ShellOutcome::Output(out))
                } else {
                    Ok(ShellOutcome::Failure(out))
                }
            }
            "stats" => {
                if !args.is_empty() {
                    return Err("usage: stats".to_string());
                }
                Ok(ShellOutcome::Output(
                    self.console.controller().metrics_report(),
                ))
            }
            "audit" => {
                let problems = self.console.controller().verify_consistency();
                let report = AntiEntropyAuditor::new().audit(self.console.controller());
                if problems.is_empty() && report.is_clean() {
                    Ok(ShellOutcome::Output(
                        "consistent: URL table and brokers agree".to_string(),
                    ))
                } else {
                    let mut out = String::new();
                    for p in &problems {
                        let _ = writeln!(out, "INCONSISTENT: {p:?}");
                    }
                    for d in &report.drift {
                        let _ = writeln!(out, "DRIFT: {d}");
                    }
                    for n in &report.unreachable {
                        let _ = writeln!(out, "UNREACHABLE: {n}");
                    }
                    Ok(ShellOutcome::Failure(out.trim_end().to_string()))
                }
            }
            "top" => {
                if !args.is_empty() {
                    return Err("usage: top".to_string());
                }
                Ok(ShellOutcome::Output(self.top_view()))
            }
            "health" => {
                if !args.is_empty() {
                    return Err("usage: health".to_string());
                }
                Ok(self.health_view())
            }
            "trace" => {
                let spans = self.console.controller().metrics().spans();
                match args {
                    [] => {
                        let mut roots: Vec<&SpanRecord> = Vec::new();
                        let snapshot = spans.snapshot();
                        let mut counts: HashMap<TraceId, usize> = HashMap::new();
                        for record in &snapshot {
                            *counts.entry(record.trace).or_default() += 1;
                            if record.parent.is_none() {
                                roots.push(record);
                            }
                        }
                        roots.sort_by_key(|r| r.start_unix_micros);
                        let mut out = String::new();
                        for root in &roots {
                            let _ = writeln!(
                                out,
                                "{} {:<14} {:>9.1}us {:>3} span(s) {}",
                                root.trace,
                                root.name,
                                root.duration_ns as f64 / 1_000.0,
                                counts.get(&root.trace).copied().unwrap_or(0),
                                root.detail
                            );
                        }
                        let _ = write!(out, "{} trace(s) retained", roots.len());
                        Ok(ShellOutcome::Output(out))
                    }
                    [id] => {
                        let trace = TraceId::parse(id)
                            .ok_or_else(|| format!("bad trace id {id:?} (32 hex digits)"))?;
                        let records = spans.spans_of(trace);
                        if records.is_empty() {
                            return Ok(ShellOutcome::Output(format!(
                                "no spans retained for {trace}"
                            )));
                        }
                        Ok(ShellOutcome::Output(render_trace_tree(&records)))
                    }
                    _ => Err("usage: trace [<id>]".to_string()),
                }
            }
            "help" => Ok(ShellOutcome::Output(HELP.trim().to_string())),
            "quit" | "exit" => Ok(ShellOutcome::Quit),
            other => Err(format!("unknown command {other:?}; try `help`")),
        }
    }

    /// The merged cluster activity view: per-node reachability and
    /// store occupancy, counter rates from the flight recorder (when
    /// one is installed), live gauges, and per-stage latency quantiles.
    fn top_view(&mut self) -> String {
        self.monitor.poll_controller(self.console.controller());
        let rows = self
            .monitor
            .transport_health(self.console.controller().cluster());
        let registry = Arc::clone(self.console.controller().metrics());
        let snap = registry.snapshot();
        let recorder = registry.series();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "scrape_seq {}  uptime {:.1}s  recorder {}",
            snap.scrape_seq,
            snap.uptime_micros as f64 / 1e6,
            match &recorder {
                Some(r) => format!("{} sample(s)", r.samples_taken()),
                None => "off".to_string(),
            }
        );
        let _ = writeln!(
            out,
            "{:<5} {:<8} {:>8} {:>12} {:>12}",
            "node", "state", "objects", "used", "capacity"
        );
        for row in &rows {
            let state = if row.down {
                "down"
            } else if row.consecutive_misses > 0 {
                "suspect"
            } else {
                "up"
            };
            match self.store_stats(row.node) {
                Some(s) => {
                    let _ = writeln!(
                        out,
                        "{:<5} {:<8} {:>8} {:>11}B {:>11}B",
                        row.node.to_string(),
                        state,
                        s.objects,
                        s.committed_bytes,
                        s.capacity_bytes
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "{:<5} {:<8} {:>8} {:>12} {:>12}",
                        row.node.to_string(),
                        state,
                        "-",
                        "-",
                        "-"
                    );
                }
            }
        }
        if let Some(rec) = &recorder {
            let mut rates: Vec<(String, f64)> = snap
                .counters
                .iter()
                .filter_map(|(name, _)| {
                    rec.rate_per_sec(name, TOP_RATE_WINDOW)
                        .filter(|r| *r > 0.0)
                        .map(|r| (name.clone(), r))
                })
                .collect();
            rates.sort_by(|a, b| b.1.total_cmp(&a.1));
            if !rates.is_empty() {
                let _ = writeln!(out, "-- rates (/s over {}s) --", TOP_RATE_WINDOW.as_secs());
                for (name, rate) in &rates {
                    let _ = writeln!(out, "{name:<40} {rate:>9.1}/s");
                }
            }
        }
        if !snap.gauges.is_empty() {
            let _ = writeln!(out, "-- gauges --");
            for (name, value) in &snap.gauges {
                let _ = writeln!(out, "{name:<40} {value:>9}");
            }
        }
        if !snap.histograms.is_empty() {
            let _ = writeln!(
                out,
                "-- stage latency -- {:>17} {:>11} {:>11} {:>11}",
                "count", "p50", "p99", "max"
            );
            for (name, h) in &snap.histograms {
                let _ = writeln!(
                    out,
                    "{:<37} {:>11} {:>11} {:>11} {:>11}",
                    name, h.count, h.p50, h.p99, h.max
                );
            }
        }
        out.trim_end().to_string()
    }

    /// SLO verdicts plus node reachability. A
    /// [`ShellOutcome::Failure`] when any rule is in breach or any
    /// non-decommissioned node is down, so scripts (and `cpms-console
    /// --watch`) can turn a sick cluster into a nonzero exit code.
    fn health_view(&mut self) -> ShellOutcome {
        self.monitor.poll_controller(self.console.controller());
        let rows = self
            .monitor
            .transport_health(self.console.controller().cluster());
        let down: Vec<String> = rows
            .iter()
            .filter(|r| r.down && !self.console.controller().is_decommissioned(r.node))
            .map(|r| r.node.to_string())
            .collect();
        let registry = Arc::clone(self.console.controller().metrics());
        let mut out = String::new();
        let mut breached = false;
        match (registry.watchdog(), registry.series()) {
            (Some(watchdog), Some(recorder)) => {
                watchdog.evaluate(&recorder);
                for (rule, verdict) in watchdog.report() {
                    if verdict == SloVerdict::Breach {
                        breached = true;
                    }
                    let _ = writeln!(out, "{:<7} {rule}", verdict.as_str());
                }
                let _ = writeln!(out, "slo breaches: {} total", watchdog.breaches_total());
            }
            (Some(_), None) => {
                let _ = writeln!(out, "slo: watchdog installed but no recorder is sampling");
            }
            _ => {
                let _ = writeln!(out, "slo: no rules installed");
            }
        }
        if down.is_empty() {
            let _ = writeln!(out, "nodes: all reachable");
        } else {
            let _ = writeln!(out, "nodes: {} DOWN ({})", down.len(), down.join(","));
        }
        let out = out.trim_end().to_string();
        if breached || !down.is_empty() {
            ShellOutcome::Failure(out)
        } else {
            ShellOutcome::Output(out)
        }
    }

    /// One node's content-store stats over the ship protocol, or `None`
    /// when the broker is unreachable or does not answer with stats.
    fn store_stats(&self, node: NodeId) -> Option<StoreStats> {
        let handle = self.console.controller().cluster().broker(node)?;
        match handle.ship(&ShipRequest::Stat) {
            Ok(ShipReply::Stats(stats)) => Some(stats),
            _ => None,
        }
    }
}

const HELP: &str = "
publish <path> <kind> <size> <node>[,<node>...]
replicate <path> <node>
offload <path> <node>
rename <from> <to>
delete <path>
touch <path>
evict <node>
repair
ls [prefix]
status
nodes
store
stats
top
health
trace [<id>]
audit
help
quit
";

/// Renders one trace's spans as an indented tree. Spans whose parent was
/// evicted from the collector (or lives in another process) are rendered
/// at the top level with a `?` marker instead of being dropped.
fn render_trace_tree(records: &[SpanRecord]) -> String {
    let present: HashMap<SpanId, usize> = records
        .iter()
        .enumerate()
        .map(|(i, r)| (r.span, i))
        .collect();
    let mut children: HashMap<Option<SpanId>, Vec<usize>> = HashMap::new();
    for (i, record) in records.iter().enumerate() {
        let key = match record.parent {
            Some(p) if present.contains_key(&p) => Some(p),
            _ => None,
        };
        children.entry(key).or_default().push(i);
    }
    let mut out = String::new();
    let mut stack: Vec<(usize, usize)> = children
        .get(&None)
        .map(|tops| tops.iter().rev().map(|&i| (i, 0)).collect())
        .unwrap_or_default();
    while let Some((i, depth)) = stack.pop() {
        let record = &records[i];
        let orphan = record.parent.is_some() && depth == 0;
        let _ = writeln!(
            out,
            "{}{}{:<20} {:>9.1}us span={}{} {}",
            "  ".repeat(depth),
            if orphan { "? " } else { "" },
            record.name,
            record.duration_ns as f64 / 1_000.0,
            record.span,
            if record.error { " ERROR" } else { "" },
            record.detail
        );
        if let Some(kids) = children.get(&Some(record.span)) {
            for &k in kids.iter().rev() {
                stack.push((k, depth + 1));
            }
        }
    }
    let _ = write!(
        out,
        "trace {} — {} span(s)",
        records[0].trace,
        records.len()
    );
    out
}

fn expect_args<'a, const N: usize>(
    command: &str,
    args: &[&'a str],
) -> Result<[&'a str; N], String> {
    <[&str; N]>::try_from(args.to_vec())
        .map_err(|_| format!("{command} takes {N} argument(s), got {}", args.len()))
}

fn parse_path(s: &str) -> Result<UrlPath, String> {
    s.parse().map_err(|e| format!("{e}"))
}

fn parse_kind(s: &str) -> Result<ContentKind, String> {
    match s.to_ascii_lowercase().as_str() {
        "html" => Ok(ContentKind::StaticHtml),
        "image" | "img" => Ok(ContentKind::Image),
        "cgi" => Ok(ContentKind::Cgi),
        "asp" => Ok(ContentKind::Asp),
        "video" => Ok(ContentKind::Video),
        "static" | "other" => Ok(ContentKind::OtherStatic),
        other => Err(format!(
            "unknown kind {other:?} (html|image|cgi|asp|video|static)"
        )),
    }
}

fn parse_node(s: &str) -> Result<NodeId, String> {
    let raw = s.strip_prefix('n').unwrap_or(s);
    raw.parse::<u16>()
        .map(NodeId)
        .map_err(|_| format!("bad node {s:?} (use e.g. `2` or `n2`)"))
}

fn parse_nodes(s: &str) -> Result<Vec<NodeId>, String> {
    s.split(',').map(parse_node).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{Cluster, Controller};

    fn shell() -> Shell {
        Shell::new(RemoteConsole::new(Controller::new(Cluster::start(
            3,
            1 << 20,
        ))))
    }

    fn out(shell: &mut Shell, line: &str) -> String {
        match shell.execute(line) {
            ShellOutcome::Output(s) => s,
            other => panic!("expected healthy output, got {other:?}"),
        }
    }

    fn fail(shell: &mut Shell, line: &str) -> String {
        match shell.execute(line) {
            ShellOutcome::Failure(s) => s,
            other => panic!("expected a detected failure, got {other:?}"),
        }
    }

    #[test]
    fn full_admin_session() {
        let mut sh = shell();
        assert!(out(&mut sh, "publish /index.html html 2048 0,1").starts_with("published"));
        assert!(out(&mut sh, "publish /cgi-bin/q.cgi cgi 512 n2").starts_with("published"));
        assert!(out(&mut sh, "replicate /index.html 2").starts_with("replicated"));
        let listing = out(&mut sh, "ls");
        assert!(listing.contains("/index.html"));
        assert!(listing.contains("2 object(s)"));
        assert!(out(&mut sh, "rename /cgi-bin /scripts").starts_with("renamed"));
        assert!(out(&mut sh, "ls /scripts").contains("/scripts/q.cgi"));
        assert!(out(&mut sh, "touch /index.html").contains("version 1"));
        assert!(out(&mut sh, "offload /index.html n0").starts_with("offloaded"));
        assert!(out(&mut sh, "audit").starts_with("consistent"));
        let status = out(&mut sh, "status");
        assert!(status.contains("n0:") && status.contains("n2:"));
        assert!(out(&mut sh, "delete /index.html").starts_with("deleted"));
        assert_eq!(sh.execute("quit"), ShellOutcome::Quit);
        sh.shutdown();
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut sh = shell();
        assert!(out(&mut sh, "delete /nope").starts_with("error:"));
        assert!(out(&mut sh, "publish bad-path html 1 0").starts_with("error:"));
        assert!(out(&mut sh, "publish /x html 1 99").starts_with("error:"));
        assert!(out(&mut sh, "publish /x html notasize 0").starts_with("error:"));
        assert!(out(&mut sh, "publish /x nonsense 1 0").starts_with("error:"));
        assert!(out(&mut sh, "replicate /x").starts_with("error:"));
        assert!(out(&mut sh, "frobnicate").starts_with("error:"));
        // the shell survived all of it
        assert!(out(&mut sh, "ls").contains("0 object(s)"));
        sh.shutdown();
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let mut sh = shell();
        assert_eq!(out(&mut sh, ""), "");
        assert_eq!(out(&mut sh, "   "), "");
        assert_eq!(out(&mut sh, "# a comment"), "");
        sh.shutdown();
    }

    #[test]
    fn node_syntax_variants() {
        assert_eq!(parse_node("3").unwrap(), NodeId(3));
        assert_eq!(parse_node("n3").unwrap(), NodeId(3));
        assert!(parse_node("x3").is_err());
        assert_eq!(
            parse_nodes("0,n1,2").unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn stats_renders_management_metrics() {
        let mut sh = shell();
        assert!(out(&mut sh, "publish /a.html html 64 0").starts_with("published"));
        assert!(out(&mut sh, "delete /nope").starts_with("error:"));
        let stats = out(&mut sh, "stats");
        assert!(stats.contains("mgmt_ops_total"), "{stats}");
        assert!(stats.contains("mgmt_op_errors_total"), "{stats}");
        assert!(stats.contains("mgmt_op_ns"), "{stats}");
        assert!(stats.contains("urltable_entries"), "{stats}");
        assert!(stats.contains("delete failed"), "{stats}");
        assert!(out(&mut sh, "stats now").starts_with("error: usage"));
        sh.shutdown();
    }

    #[test]
    fn nodes_renders_transport_health() {
        let mut sh = shell();
        assert!(out(&mut sh, "publish /a.html html 64 0").starts_with("published"));
        let nodes = out(&mut sh, "nodes");
        assert!(nodes.contains("last_rtt"), "{nodes}");
        assert!(nodes.contains("inproc"), "{nodes}");
        for node in ["n0", "n1", "n2"] {
            assert!(nodes.contains(node), "{nodes}");
        }
        assert!(nodes.contains(" up"), "{nodes}");
        assert!(out(&mut sh, "nodes please").starts_with("error: usage"));
        sh.shutdown();
    }

    #[test]
    fn nodes_shows_down_after_kill() {
        let mut sh = shell();
        sh.console.controller_mut().kill_node(NodeId(1));
        // Threshold is 3: two polls leave n1 suspect, the third marks down.
        out(&mut sh, "nodes");
        out(&mut sh, "nodes");
        let nodes = out(&mut sh, "nodes");
        let n1_row = nodes
            .lines()
            .find(|l| l.starts_with("n1"))
            .expect("n1 row present");
        assert!(n1_row.contains("down"), "{nodes}");
        sh.shutdown();
    }

    #[test]
    fn store_shows_per_node_health() {
        let mut sh = shell();
        assert!(out(&mut sh, "publish /a.html html 600 0,1").starts_with("published"));
        let store = out(&mut sh, "store");
        assert!(store.contains("objects"), "{store}");
        assert!(store.contains("audit clean"), "{store}");
        for node in ["n0", "n1", "n2"] {
            assert!(store.contains(node), "{store}");
        }
        assert!(store.contains("in flight"), "{store}");
        // n0 and n1 hold the object; 600 bytes committed on each.
        let n0 = store.lines().find(|l| l.starts_with("n0")).unwrap();
        assert!(n0.contains("600B"), "{store}");
        assert!(out(&mut sh, "store now").starts_with("error: usage"));
        sh.shutdown();
    }

    #[test]
    fn nodes_renders_store_column() {
        let mut sh = shell();
        assert!(out(&mut sh, "publish /a.html html 64 0").starts_with("published"));
        let nodes = out(&mut sh, "nodes");
        assert!(nodes.contains("store"), "{nodes}");
        let n0 = nodes.lines().find(|l| l.starts_with("n0")).unwrap();
        assert!(n0.contains("1obj"), "{nodes}");
        sh.shutdown();
    }

    #[test]
    fn audit_fails_on_drift() {
        let mut sh = shell();
        assert!(out(&mut sh, "publish /a.html html 600 0,1").starts_with("published"));
        // Sabotage: delete node 1's copy behind the table's back.
        let handle = sh.console.controller().cluster().broker(NodeId(1)).unwrap();
        handle
            .ship(&ShipRequest::Delete {
                path: "/a.html".parse().unwrap(),
            })
            .unwrap();
        let audit = fail(&mut sh, "audit");
        assert!(audit.contains("missing /a.html"), "{audit}");
        let store = fail(&mut sh, "store");
        assert!(store.contains("drift item(s)"), "{store}");
        // repair heals it; the follow-up audit is healthy again.
        assert!(out(&mut sh, "repair").contains("repaired"));
        assert!(out(&mut sh, "audit").starts_with("consistent"));
        sh.shutdown();
    }

    #[test]
    fn status_fails_when_a_node_is_down() {
        let mut sh = shell();
        sh.console.controller_mut().kill_node(NodeId(1));
        let status = fail(&mut sh, "status");
        assert!(status.contains("n1: DOWN"), "{status}");
        // Evicting the dead node makes its absence expected again.
        assert!(out(&mut sh, "evict n1").starts_with("evicted"));
        let status = out(&mut sh, "status");
        assert!(status.contains("n1: DOWN"), "{status}");
        sh.shutdown();
    }

    #[test]
    fn evict_then_repair_converges_after_kill() {
        let mut sh = shell();
        assert!(out(&mut sh, "publish /a.html html 600 0,1").starts_with("published"));
        sh.console.controller_mut().kill_node(NodeId(0));
        // Dead node makes the audit fail until the operator evicts it.
        assert!(fail(&mut sh, "audit").contains("UNREACHABLE: n0"));
        assert!(out(&mut sh, "evict 0").contains("1 location(s) dropped"));
        assert!(out(&mut sh, "audit").starts_with("consistent"));
        sh.shutdown();
    }

    #[test]
    fn trace_lists_and_renders_span_trees() {
        let mut sh = shell();
        assert!(out(&mut sh, "publish /a.html html 64 0").starts_with("published"));
        assert!(out(&mut sh, "replicate /a.html 1").starts_with("replicated"));
        let listing = out(&mut sh, "trace");
        assert!(listing.contains("mgmt.publish"), "{listing}");
        assert!(listing.contains("mgmt.replicate"), "{listing}");
        assert!(listing.contains("trace(s) retained"), "{listing}");
        // Pull the replicate trace id out of the listing and render it.
        let id = listing
            .lines()
            .find(|l| l.contains("mgmt.replicate"))
            .and_then(|l| l.split_whitespace().next())
            .expect("replicate row has a trace id");
        let tree = out(&mut sh, &format!("trace {id}"));
        assert!(tree.contains("mgmt.replicate"), "{tree}");
        assert!(tree.contains("span(s)"), "{tree}");
        // Children are indented under the root management span.
        assert!(
            tree.lines().any(|l| l.starts_with("  ")),
            "expected an indented child span: {tree}"
        );
        assert!(out(&mut sh, "trace nothex").starts_with("error: bad trace id"));
        let missing = format!("trace {}", "0".repeat(32));
        assert!(out(&mut sh, &missing).starts_with("no spans retained"));
        assert!(out(&mut sh, "trace a b").starts_with("error: usage"));
        sh.shutdown();
    }

    #[test]
    fn top_renders_without_a_recorder() {
        let mut sh = shell();
        assert!(out(&mut sh, "publish /a.html html 600 0,1").starts_with("published"));
        let top = out(&mut sh, "top");
        assert!(top.contains("recorder off"), "{top}");
        assert!(top.contains("scrape_seq"), "{top}");
        for node in ["n0", "n1", "n2"] {
            assert!(top.contains(node), "{top}");
        }
        assert!(top.contains("600B"), "{top}");
        assert!(top.contains("-- stage latency --"), "{top}");
        assert!(top.contains("mgmt_op_ns"), "{top}");
        assert!(out(&mut sh, "top now").starts_with("error: usage"));
        sh.shutdown();
    }

    #[test]
    fn top_renders_rates_from_an_installed_recorder() {
        use cpms_obs::SeriesRecorder;
        let mut sh = shell();
        let registry = Arc::clone(sh.console().controller().metrics());
        let recorder = Arc::new(SeriesRecorder::default());
        registry.set_series(Arc::clone(&recorder));
        recorder.sample(&registry.snapshot());
        assert!(out(&mut sh, "publish /a.html html 64 0").starts_with("published"));
        recorder.sample(&registry.snapshot());
        let top = out(&mut sh, "top");
        assert!(top.contains("recorder 2 sample(s)"), "{top}");
        assert!(top.contains("-- rates"), "{top}");
        assert!(top.contains("mgmt_ops_total"), "{top}");
        sh.shutdown();
    }

    #[test]
    fn health_without_rules_reports_reachability() {
        let mut sh = shell();
        let health = out(&mut sh, "health");
        assert!(health.contains("slo: no rules installed"), "{health}");
        assert!(health.contains("nodes: all reachable"), "{health}");
        assert!(out(&mut sh, "health now").starts_with("error: usage"));
        sh.shutdown();
    }

    #[test]
    fn health_fails_when_a_node_goes_down() {
        let mut sh = shell();
        sh.console.controller_mut().kill_node(NodeId(2));
        // Threshold is 3 consecutive misses before `down`.
        out(&mut sh, "health");
        out(&mut sh, "health");
        let health = fail(&mut sh, "health");
        assert!(health.contains("nodes: 1 DOWN (n2)"), "{health}");
        sh.shutdown();
    }

    #[test]
    fn health_renders_slo_verdicts_and_fails_on_breach() {
        use cpms_obs::{SeriesRecorder, SloRule, SloWatchdog};
        let mut sh = shell();
        let registry = Arc::clone(sh.console().controller().metrics());
        let recorder = Arc::new(SeriesRecorder::default());
        registry.set_series(Arc::clone(&recorder));
        SloWatchdog::install(
            &registry,
            vec![SloRule::parse("mgmt_op_errors_total rate <= 0 over 60s").unwrap()],
        );
        recorder.sample(&registry.snapshot());
        let healthy = out(&mut sh, "health");
        assert!(healthy.contains("ok"), "{healthy}");
        assert!(healthy.contains("mgmt_op_errors_total"), "{healthy}");
        // A failed management op drives the error-rate rule into breach.
        assert!(out(&mut sh, "delete /nope").starts_with("error:"));
        recorder.sample(&registry.snapshot());
        let sick = fail(&mut sh, "health");
        assert!(sick.contains("BREACH"), "{sick}");
        assert!(sick.contains("slo breaches: 1 total"), "{sick}");
        // Errors stop; once the breach window drains the verdict clears.
        // (60s window here, so force-clear by sampling a fresh recorder.)
        let fresh = Arc::new(SeriesRecorder::default());
        registry.set_series(Arc::clone(&fresh));
        fresh.sample(&registry.snapshot());
        fresh.sample(&registry.snapshot());
        let clear = out(&mut sh, "health");
        assert!(clear.contains("slo breaches: 1 total"), "{clear}");
        sh.shutdown();
    }

    #[test]
    fn help_lists_commands() {
        let mut sh = shell();
        let help = out(&mut sh, "help");
        for cmd in [
            "publish",
            "replicate",
            "offload",
            "rename",
            "delete",
            "audit",
        ] {
            assert!(help.contains(cmd), "help missing {cmd}");
        }
        sh.shutdown();
    }
}
