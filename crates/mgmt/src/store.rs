//! Per-node local file stores.
//!
//! A [`NodeStore`] models one back-end node's local filesystem as the
//! management system sees it: the set of content files present, their
//! sizes and versions, and the disk-capacity budget. Brokers execute
//! agents against their node's store.

use cpms_model::{ContentId, NodeId, UrlPath};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// One file as stored on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredFile {
    /// Which content object this file is a copy of.
    pub content: ContentId,
    /// Size in bytes.
    pub size: u64,
    /// Monotone version, bumped on each update (mutable documents).
    pub version: u64,
}

/// Errors from store operations. Serializable because agent results
/// (which embed store failures) ride the wire back to the controller.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum StoreError {
    /// The path has no file on this node.
    NotFound {
        /// The missing path.
        path: UrlPath,
    },
    /// Storing would exceed the node's disk capacity.
    DiskFull {
        /// The path being stored.
        path: UrlPath,
        /// Bytes that would be needed.
        needed: u64,
        /// Bytes actually free.
        free: u64,
    },
    /// A file already exists at the path (store with `overwrite = false`).
    AlreadyExists {
        /// The conflicting path.
        path: UrlPath,
    },
    /// The node's content repository refused the operation (checksum
    /// mismatch, incomplete transfer, I/O failure — anything beyond the
    /// metadata-level taxonomy above).
    Content {
        /// The underlying content-store failure, rendered.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound { path } => write!(f, "no file at {path}"),
            StoreError::DiskFull { path, needed, free } => {
                write!(
                    f,
                    "disk full storing {path}: need {needed} bytes, {free} free"
                )
            }
            StoreError::AlreadyExists { path } => write!(f, "file already exists at {path}"),
            StoreError::Content { detail } => write!(f, "content repository: {detail}"),
        }
    }
}

impl From<StoreError> for cpms_store::StoreError {
    /// The reverse direction, for tunneling ledger failures back to a
    /// ship-protocol caller.
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::NotFound { path } => cpms_store::StoreError::NotFound { path },
            StoreError::DiskFull { path, needed, free } => {
                cpms_store::StoreError::DiskFull { path, needed, free }
            }
            StoreError::AlreadyExists { path } => cpms_store::StoreError::AlreadyExists { path },
            StoreError::Content { detail } => cpms_store::StoreError::Io { detail },
        }
    }
}

impl From<cpms_store::StoreError> for StoreError {
    /// Maps a content-repository failure onto the metadata-level
    /// taxonomy the controller's policies match on; failure modes that
    /// only exist for real bytes (checksums, chunking, I/O) fold into
    /// [`StoreError::Content`].
    fn from(e: cpms_store::StoreError) -> Self {
        match e {
            cpms_store::StoreError::NotFound { path } => StoreError::NotFound { path },
            cpms_store::StoreError::DiskFull { path, needed, free } => {
                StoreError::DiskFull { path, needed, free }
            }
            cpms_store::StoreError::AlreadyExists { path } => StoreError::AlreadyExists { path },
            other => StoreError::Content {
                detail: other.to_string(),
            },
        }
    }
}

impl std::error::Error for StoreError {}

/// One node's local content files plus disk accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeStore {
    node: NodeId,
    files: HashMap<UrlPath, StoredFile>,
    capacity_bytes: u64,
    used_bytes: u64,
}

impl NodeStore {
    /// Creates an empty store for `node` with the given disk capacity.
    pub fn new(node: NodeId, capacity_bytes: u64) -> Self {
        NodeStore {
            node,
            files: HashMap::new(),
            capacity_bytes,
            used_bytes: 0,
        }
    }

    /// The node this store belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of files stored.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Disk capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes in use.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Bytes free.
    pub fn free_bytes(&self) -> u64 {
        self.capacity_bytes - self.used_bytes
    }

    /// The file at `path`, if present.
    pub fn get(&self, path: &UrlPath) -> Option<&StoredFile> {
        self.files.get(path)
    }

    /// Whether a copy of `path` exists here.
    pub fn contains(&self, path: &UrlPath) -> bool {
        self.files.contains_key(path)
    }

    /// Stores (or overwrites) a file.
    ///
    /// # Errors
    ///
    /// [`StoreError::DiskFull`] if the file does not fit;
    /// [`StoreError::AlreadyExists`] if `overwrite` is false and the path
    /// is taken.
    pub fn store(
        &mut self,
        path: UrlPath,
        file: StoredFile,
        overwrite: bool,
    ) -> Result<(), StoreError> {
        let existing = self.files.get(&path).copied();
        if existing.is_some() && !overwrite {
            return Err(StoreError::AlreadyExists { path });
        }
        let freed = existing.map(|f| f.size).unwrap_or(0);
        let needed = file.size;
        let free = self.capacity_bytes - (self.used_bytes - freed);
        if needed > free {
            return Err(StoreError::DiskFull { path, needed, free });
        }
        self.used_bytes = self.used_bytes - freed + needed;
        self.files.insert(path, file);
        Ok(())
    }

    /// Removes the file at `path`.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] if absent.
    pub fn remove(&mut self, path: &UrlPath) -> Result<StoredFile, StoreError> {
        match self.files.remove(path) {
            Some(f) => {
                self.used_bytes -= f.size;
                Ok(f)
            }
            None => Err(StoreError::NotFound { path: path.clone() }),
        }
    }

    /// Renames a file (same node, metadata only).
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] / [`StoreError::AlreadyExists`].
    pub fn rename(&mut self, from: &UrlPath, to: UrlPath) -> Result<(), StoreError> {
        if self.files.contains_key(&to) {
            return Err(StoreError::AlreadyExists { path: to });
        }
        let f = self
            .files
            .remove(from)
            .ok_or_else(|| StoreError::NotFound { path: from.clone() })?;
        self.files.insert(to, f);
        Ok(())
    }

    /// Bumps the version of a mutable document in place.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] if absent.
    pub fn touch(&mut self, path: &UrlPath) -> Result<u64, StoreError> {
        match self.files.get_mut(path) {
            Some(f) => {
                f.version += 1;
                Ok(f.version)
            }
            None => Err(StoreError::NotFound { path: path.clone() }),
        }
    }

    /// Lists all files, in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&UrlPath, &StoredFile)> {
        self.files.iter()
    }
}

/// Everything a broker owns on its node: the metadata ledger
/// ([`NodeStore`]) the controller's policies reason over, plus the
/// durable content repository ([`cpms_store::ContentStore`]) that holds
/// the actual bytes. Agents execute against this pair and keep the two
/// views consistent — a file is only listed in the ledger while its
/// bytes are committed in the repository.
#[derive(Debug)]
pub struct BrokerState {
    meta: NodeStore,
    content: Arc<cpms_store::ContentStore>,
}

impl BrokerState {
    /// Fresh state for `node`: empty ledger, in-memory content store,
    /// one shared capacity.
    pub fn new(node: NodeId, capacity_bytes: u64) -> Self {
        BrokerState {
            meta: NodeStore::new(node, capacity_bytes),
            content: Arc::new(cpms_store::ContentStore::in_memory(node, capacity_bytes)),
        }
    }

    /// Wraps an existing metadata ledger, materializing each of its
    /// files into a fresh in-memory content store (their deterministic
    /// [`cpms_store::synthetic_body`] bytes) so the two views start
    /// consistent.
    pub fn from_meta(meta: NodeStore) -> Self {
        let content = Arc::new(cpms_store::ContentStore::in_memory(
            meta.node(),
            meta.capacity_bytes(),
        ));
        let state = BrokerState { meta, content };
        state.materialize_meta();
        state
    }

    /// Pairs a ledger with an existing (possibly disk-backed, possibly
    /// already populated) content repository, reconciling both ways:
    /// committed objects absent from the ledger are adopted into it, and
    /// ledger files absent from the repository are materialized.
    pub fn with_content(mut meta: NodeStore, content: Arc<cpms_store::ContentStore>) -> Self {
        for (path, object) in content.inventory() {
            if !meta.contains(&path) {
                let _ = meta.store(
                    path,
                    StoredFile {
                        content: object.content,
                        size: object.size,
                        version: object.version,
                    },
                    false,
                );
            }
        }
        let state = BrokerState { meta, content };
        state.materialize_meta();
        state
    }

    /// Puts the synthetic body of every ledger file the repository lacks.
    fn materialize_meta(&self) {
        for (path, file) in self.meta.iter() {
            if !self.content.contains(path) {
                let body = cpms_store::synthetic_body(file.content, file.size);
                let _ = self
                    .content
                    .put(path, file.content, file.version, &body, true);
            }
        }
    }

    /// The node this state belongs to.
    pub fn node(&self) -> NodeId {
        self.meta.node()
    }

    /// The metadata ledger.
    pub fn meta(&self) -> &NodeStore {
        &self.meta
    }

    /// Mutable access to the metadata ledger.
    pub fn meta_mut(&mut self) -> &mut NodeStore {
        &mut self.meta
    }

    /// The content repository (shared with origin servers that serve
    /// object bodies straight from the store).
    pub fn content(&self) -> &Arc<cpms_store::ContentStore> {
        &self.content
    }

    /// Unwraps back into the metadata ledger (broker shutdown).
    pub fn into_meta(self) -> NodeStore {
        self.meta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> UrlPath {
        s.parse().unwrap()
    }

    fn file(id: u32, size: u64) -> StoredFile {
        StoredFile {
            content: ContentId(id),
            size,
            version: 0,
        }
    }

    #[test]
    fn store_and_accounting() {
        let mut s = NodeStore::new(NodeId(0), 1000);
        s.store(p("/a"), file(1, 400), false).unwrap();
        assert_eq!(s.used_bytes(), 400);
        assert_eq!(s.free_bytes(), 600);
        assert!(s.contains(&p("/a")));
        s.remove(&p("/a")).unwrap();
        assert_eq!(s.used_bytes(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn disk_full_rejected() {
        let mut s = NodeStore::new(NodeId(0), 1000);
        s.store(p("/a"), file(1, 800), false).unwrap();
        let err = s.store(p("/b"), file(2, 300), false).unwrap_err();
        assert!(matches!(err, StoreError::DiskFull { free: 200, .. }));
        assert_eq!(s.len(), 1, "failed store leaves state unchanged");
    }

    #[test]
    fn overwrite_frees_old_size() {
        let mut s = NodeStore::new(NodeId(0), 1000);
        s.store(p("/a"), file(1, 900), false).unwrap();
        // overwriting with a smaller file must account for freeing 900
        s.store(p("/a"), file(1, 950), true).unwrap();
        assert_eq!(s.used_bytes(), 950);
        let err = s.store(p("/a"), file(1, 1100), true).unwrap_err();
        assert!(matches!(err, StoreError::DiskFull { .. }));
    }

    #[test]
    fn no_overwrite_flag() {
        let mut s = NodeStore::new(NodeId(0), 1000);
        s.store(p("/a"), file(1, 10), false).unwrap();
        assert!(matches!(
            s.store(p("/a"), file(2, 10), false),
            Err(StoreError::AlreadyExists { .. })
        ));
    }

    #[test]
    fn rename_moves_metadata() {
        let mut s = NodeStore::new(NodeId(0), 1000);
        s.store(p("/a"), file(1, 10), false).unwrap();
        s.rename(&p("/a"), p("/b")).unwrap();
        assert!(!s.contains(&p("/a")));
        assert_eq!(s.get(&p("/b")).unwrap().content, ContentId(1));
        assert!(matches!(
            s.rename(&p("/missing"), p("/c")),
            Err(StoreError::NotFound { .. })
        ));
        s.store(p("/c"), file(2, 10), false).unwrap();
        assert!(matches!(
            s.rename(&p("/b"), p("/c")),
            Err(StoreError::AlreadyExists { .. })
        ));
    }

    #[test]
    fn touch_bumps_version() {
        let mut s = NodeStore::new(NodeId(0), 1000);
        s.store(p("/a"), file(1, 10), false).unwrap();
        assert_eq!(s.touch(&p("/a")).unwrap(), 1);
        assert_eq!(s.touch(&p("/a")).unwrap(), 2);
        assert!(s.touch(&p("/zzz")).is_err());
    }
}
