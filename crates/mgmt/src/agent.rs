//! Management agents — the "mobile code" of the paper's §3.
//!
//! > "Each administrative function is implemented in the form of a Java
//! > class, which is termed an agent. The brokers distributed on each node
//! > may download the appropriate classes to perform the corresponding
//! > management tasks."
//!
//! An agent is a *serializable wire message*: the controller ships an
//! [`AgentRequest`] to a broker over a `cpms-wire` transport (in-process
//! channel or TCP), the broker executes it against its node's
//! [`NodeStore`], and the [`AgentReply`] rides back the same way. The
//! built-in agents cover the operations the controller needs (store,
//! delete, rename, replicate, status, listing); new management functions
//! are added by implementing [`Agent`] and giving [`AgentRequest`] a
//! variant, without touching broker or controller plumbing.

use crate::store::{BrokerState, StoreError, StoredFile};
use cpms_model::{NodeId, UrlPath};
use cpms_store::{ShipReply, ShipRequest};
use cpms_wire::WireError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What an agent produced.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AgentOutput {
    /// The operation completed with nothing to report.
    Done,
    /// A listing of the node's files.
    Listing(Vec<(UrlPath, StoredFile)>),
    /// A status snapshot of the node.
    Status {
        /// Files stored on the node.
        files: usize,
        /// Bytes in use.
        used_bytes: u64,
        /// Bytes free.
        free_bytes: u64,
    },
    /// The new version of a touched document.
    Version(u64),
    /// The content store's reply to a tunneled ship request.
    Ship(ShipReply),
}

/// Errors an agent can report back to the controller.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AgentError {
    /// A store-level failure on the target node.
    Store(StoreError),
    /// The broker for the target node is gone (crashed / shut down /
    /// unreachable).
    BrokerUnavailable(NodeId),
    /// The transport to the broker failed in a way that does not mean
    /// "gone" — a deadline expired, a frame was poisoned, retries were
    /// exhausted. The request *may* have executed (at-most-once is not
    /// guaranteed over a lossy wire).
    Transport {
        /// The node whose broker was being called.
        node: NodeId,
        /// The underlying wire failure.
        error: WireError,
    },
}

impl fmt::Display for AgentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgentError::Store(e) => write!(f, "store operation failed: {e}"),
            AgentError::BrokerUnavailable(n) => write!(f, "broker on {n} unavailable"),
            AgentError::Transport { node, error } => {
                write!(f, "transport to broker on {node} failed: {error}")
            }
        }
    }
}

impl std::error::Error for AgentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AgentError::Store(e) => Some(e),
            AgentError::BrokerUnavailable(_) => None,
            AgentError::Transport { error, .. } => Some(error),
        }
    }
}

#[doc(hidden)]
impl From<StoreError> for AgentError {
    fn from(e: StoreError) -> Self {
        AgentError::Store(e)
    }
}

impl AgentError {
    /// Classifies a wire failure against `node`'s broker: peers that are
    /// gone (refused, closed, in-process server stopped) surface as
    /// [`AgentError::BrokerUnavailable`]; everything else keeps its
    /// transport taxonomy.
    #[must_use]
    pub fn from_wire(node: NodeId, error: WireError) -> Self {
        match error.root() {
            WireError::Unavailable { .. } | WireError::Closed => {
                AgentError::BrokerUnavailable(node)
            }
            _ => AgentError::Transport { node, error },
        }
    }
}

/// A management function executed by a broker against its node's store.
///
/// The trait is the *execution* interface; shipping happens as the
/// serializable [`AgentRequest`] enum, which is what actually crosses
/// the wire.
pub trait Agent: Send {
    /// Short name for logs and reports.
    fn name(&self) -> &'static str;

    /// Runs the function on the broker's node, against both halves of
    /// its state: the metadata ledger and the content repository.
    ///
    /// # Errors
    ///
    /// Implementations surface store-level failures as
    /// [`AgentError::Store`].
    fn execute(&self, state: &mut BrokerState) -> Result<AgentOutput, AgentError>;
}

/// The wire form of an agent: every management function the controller
/// can ship to a broker, as one serializable message.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AgentRequest {
    /// Store (or overwrite) a file.
    Store(StoreFile),
    /// Delete a file.
    Delete(DeleteFile),
    /// Rename a file.
    Rename(RenameFile),
    /// Bump a mutable document's version.
    Touch(TouchFile),
    /// Probe node status.
    Status(StatusProbe),
    /// List every file on the node.
    List(ListFiles),
    /// Tunnel a content-shipping request to the node's content store.
    Ship(ShipAgent),
}

impl AgentRequest {
    /// The wrapped agent's short name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            AgentRequest::Store(a) => a.name(),
            AgentRequest::Delete(a) => a.name(),
            AgentRequest::Rename(a) => a.name(),
            AgentRequest::Touch(a) => a.name(),
            AgentRequest::Status(a) => a.name(),
            AgentRequest::List(a) => a.name(),
            AgentRequest::Ship(a) => a.name(),
        }
    }

    /// Executes the wrapped agent against `state`.
    ///
    /// # Errors
    ///
    /// See [`Agent::execute`].
    pub fn execute(&self, state: &mut BrokerState) -> Result<AgentOutput, AgentError> {
        match self {
            AgentRequest::Store(a) => a.execute(state),
            AgentRequest::Delete(a) => a.execute(state),
            AgentRequest::Rename(a) => a.execute(state),
            AgentRequest::Touch(a) => a.execute(state),
            AgentRequest::Status(a) => a.execute(state),
            AgentRequest::List(a) => a.execute(state),
            AgentRequest::Ship(a) => a.execute(state),
        }
    }
}

macro_rules! into_request {
    ($($agent:ident => $variant:ident),+ $(,)?) => {
        $(impl From<$agent> for AgentRequest {
            fn from(a: $agent) -> Self {
                AgentRequest::$variant(a)
            }
        })+
    };
}

into_request!(
    StoreFile => Store,
    DeleteFile => Delete,
    RenameFile => Rename,
    TouchFile => Touch,
    StatusProbe => Status,
    ListFiles => List,
    ShipAgent => Ship,
);

/// The wire form of an agent's result (the vendored serde stand-in has
/// no `Result` impl, so the broker protocol spells it out).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AgentReply {
    /// The agent succeeded.
    Ok(AgentOutput),
    /// The agent failed.
    Err(AgentError),
}

impl From<Result<AgentOutput, AgentError>> for AgentReply {
    fn from(r: Result<AgentOutput, AgentError>) -> Self {
        match r {
            Ok(o) => AgentReply::Ok(o),
            Err(e) => AgentReply::Err(e),
        }
    }
}

impl From<AgentReply> for Result<AgentOutput, AgentError> {
    fn from(r: AgentReply) -> Self {
        match r {
            AgentReply::Ok(o) => Ok(o),
            AgentReply::Err(e) => Err(e),
        }
    }
}

/// Stores a file on the node (used for publishing and as the receiving
/// half of replication).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreFile {
    /// Destination path.
    pub path: UrlPath,
    /// File metadata to store.
    pub file: StoredFile,
    /// Whether to overwrite an existing copy (content updates).
    pub overwrite: bool,
}

impl Agent for StoreFile {
    fn name(&self) -> &'static str {
        "store-file"
    }

    fn execute(&self, state: &mut BrokerState) -> Result<AgentOutput, AgentError> {
        // The ledger is authoritative for quota/conflict policy; commit
        // the bytes second and roll the ledger back if they fail.
        let prior = state.meta().get(&self.path).copied();
        state
            .meta_mut()
            .store(self.path.clone(), self.file, self.overwrite)?;
        let body = cpms_store::synthetic_body(self.file.content, self.file.size);
        if let Err(e) = state.content().put(
            &self.path,
            self.file.content,
            self.file.version,
            &body,
            true,
        ) {
            match prior {
                Some(f) => {
                    let _ = state.meta_mut().store(self.path.clone(), f, true);
                }
                None => {
                    let _ = state.meta_mut().remove(&self.path);
                }
            }
            return Err(AgentError::Store(e.into()));
        }
        Ok(AgentOutput::Done)
    }
}

/// Deletes a file from the node's local filesystem — the paper's worked
/// example: "one agent is responsible for deleting a file from the local
/// file system of the node that it executes. If the administrator tries to
/// offload some pages from a server, the controller will send this agent
/// to that node."
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeleteFile {
    /// Path to delete.
    pub path: UrlPath,
}

impl Agent for DeleteFile {
    fn name(&self) -> &'static str {
        "delete-file"
    }

    fn execute(&self, state: &mut BrokerState) -> Result<AgentOutput, AgentError> {
        state.meta_mut().remove(&self.path)?;
        // The ledger delete is the decision; the repository follows
        // (already-absent bytes are not an error).
        let _ = state.content().delete(&self.path);
        Ok(AgentOutput::Done)
    }
}

/// Renames a file on the node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RenameFile {
    /// Current path.
    pub from: UrlPath,
    /// New path.
    pub to: UrlPath,
}

impl Agent for RenameFile {
    fn name(&self) -> &'static str {
        "rename-file"
    }

    fn execute(&self, state: &mut BrokerState) -> Result<AgentOutput, AgentError> {
        state.meta_mut().rename(&self.from, self.to.clone())?;
        let _ = state.content().rename(&self.from, &self.to);
        Ok(AgentOutput::Done)
    }
}

/// Bumps a mutable document's version in place (a content-provider
/// update).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TouchFile {
    /// Path to update.
    pub path: UrlPath,
}

impl Agent for TouchFile {
    fn name(&self) -> &'static str {
        "touch-file"
    }

    fn execute(&self, state: &mut BrokerState) -> Result<AgentOutput, AgentError> {
        let version = state.meta_mut().touch(&self.path)?;
        let _ = state.content().touch(&self.path);
        Ok(AgentOutput::Version(version))
    }
}

/// Reports the node's status (files, disk usage) — the broker's monitoring
/// duty.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StatusProbe;

impl Agent for StatusProbe {
    fn name(&self) -> &'static str {
        "status-probe"
    }

    fn execute(&self, state: &mut BrokerState) -> Result<AgentOutput, AgentError> {
        let store = state.meta();
        Ok(AgentOutput::Status {
            files: store.len(),
            used_bytes: store.used_bytes(),
            free_bytes: store.free_bytes(),
        })
    }
}

/// Lists every file on the node (used to audit the single system image).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ListFiles;

impl Agent for ListFiles {
    fn name(&self) -> &'static str {
        "list-files"
    }

    fn execute(&self, state: &mut BrokerState) -> Result<AgentOutput, AgentError> {
        let mut listing: Vec<(UrlPath, StoredFile)> =
            state.meta().iter().map(|(p, f)| (p.clone(), *f)).collect();
        listing.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(AgentOutput::Listing(listing))
    }
}

/// Tunnels one content-shipping request to the node's content store —
/// this is how replica bytes actually arrive at a broker. Commits and
/// deletes keep the metadata ledger in sync, preserving the invariant
/// that a ledger entry always has committed bytes behind it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShipAgent {
    /// The ship-protocol message to apply.
    pub request: ShipRequest,
}

impl Agent for ShipAgent {
    fn name(&self) -> &'static str {
        "ship"
    }

    fn execute(&self, state: &mut BrokerState) -> Result<AgentOutput, AgentError> {
        let reply = cpms_store::apply(state.content(), &self.request);
        match (&self.request, &reply) {
            (ShipRequest::Commit { path, .. }, ShipReply::Committed(object)) => {
                let file = StoredFile {
                    content: object.content,
                    size: object.size,
                    version: object.version,
                };
                if let Err(e) = state.meta_mut().store(path.clone(), file, true) {
                    // The ledger would lie about the commit: undo it.
                    let _ = state.content().delete(path);
                    return Err(AgentError::Store(e));
                }
            }
            (ShipRequest::Delete { path }, ShipReply::Deleted(_)) => {
                let _ = state.meta_mut().remove(path);
            }
            _ => {}
        }
        Ok(AgentOutput::Ship(reply))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpms_model::ContentId;

    fn p(s: &str) -> UrlPath {
        s.parse().unwrap()
    }

    fn store() -> BrokerState {
        BrokerState::new(NodeId(1), 1 << 20)
    }

    fn f(id: u32) -> StoredFile {
        StoredFile {
            content: ContentId(id),
            size: 100,
            version: 0,
        }
    }

    #[test]
    fn store_then_delete() {
        let mut s = store();
        let out = StoreFile {
            path: p("/a"),
            file: f(1),
            overwrite: false,
        }
        .execute(&mut s)
        .unwrap();
        assert_eq!(out, AgentOutput::Done);
        assert!(s.meta().contains(&p("/a")));
        assert!(s.content().contains(&p("/a")), "bytes committed too");

        DeleteFile { path: p("/a") }.execute(&mut s).unwrap();
        assert!(!s.meta().contains(&p("/a")));
        assert!(!s.content().contains(&p("/a")), "bytes removed too");
        let err = DeleteFile { path: p("/a") }.execute(&mut s).unwrap_err();
        assert!(matches!(
            err,
            AgentError::Store(StoreError::NotFound { .. })
        ));
    }

    #[test]
    fn rename_and_touch() {
        let mut s = store();
        StoreFile {
            path: p("/old"),
            file: f(2),
            overwrite: false,
        }
        .execute(&mut s)
        .unwrap();
        RenameFile {
            from: p("/old"),
            to: p("/new"),
        }
        .execute(&mut s)
        .unwrap();
        let out = TouchFile { path: p("/new") }.execute(&mut s).unwrap();
        assert_eq!(out, AgentOutput::Version(1));
    }

    #[test]
    fn status_and_listing() {
        let mut s = store();
        for i in 0..3 {
            StoreFile {
                path: p(&format!("/f{i}")),
                file: f(i),
                overwrite: false,
            }
            .execute(&mut s)
            .unwrap();
        }
        match StatusProbe.execute(&mut s).unwrap() {
            AgentOutput::Status {
                files, used_bytes, ..
            } => {
                assert_eq!(files, 3);
                assert_eq!(used_bytes, 300);
            }
            other => panic!("unexpected output {other:?}"),
        }
        match ListFiles.execute(&mut s).unwrap() {
            AgentOutput::Listing(l) => {
                assert_eq!(l.len(), 3);
                assert!(l.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
            }
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn agent_names() {
        assert_eq!(StatusProbe.name(), "status-probe");
        assert_eq!(ListFiles.name(), "list-files");
        assert_eq!(DeleteFile { path: p("/x") }.name(), "delete-file");
        assert_eq!(
            ShipAgent {
                request: ShipRequest::Inventory
            }
            .name(),
            "ship"
        );
    }

    #[test]
    fn ship_commit_syncs_the_ledger() {
        use cpms_store::{fnv64, hex_encode, ObjectMeta};
        let mut s = store();
        let body = vec![7u8; 300];
        let meta = ObjectMeta::for_body(ContentId(9), &body, 256, 0);
        let reply = |r: AgentOutput| match r {
            AgentOutput::Ship(reply) => reply,
            other => panic!("{other:?}"),
        };
        let begun = reply(
            ShipAgent {
                request: ShipRequest::Begin {
                    path: p("/shipped"),
                    meta,
                    overwrite: false,
                },
            }
            .execute(&mut s)
            .unwrap(),
        );
        let transfer = match begun {
            ShipReply::Begun { transfer, .. } => transfer,
            other => panic!("{other:?}"),
        };
        for index in 0..meta.chunk_count() {
            let range = meta.chunk_range(index).unwrap();
            ShipAgent {
                request: ShipRequest::Chunk {
                    transfer,
                    index,
                    data: hex_encode(&body[range.clone()]),
                    checksum: fnv64(&body[range]),
                },
            }
            .execute(&mut s)
            .unwrap();
        }
        assert!(
            !s.meta().contains(&p("/shipped")),
            "staged bytes are not in the ledger yet"
        );
        ShipAgent {
            request: ShipRequest::Commit {
                transfer,
                path: p("/shipped"),
                checksum: meta.checksum,
            },
        }
        .execute(&mut s)
        .unwrap();
        let file = s.meta().get(&p("/shipped")).expect("ledger synced");
        assert_eq!(file.content, ContentId(9));
        assert_eq!(file.size, 300, "ledger records the committed size");
        assert_eq!(s.content().read(&p("/shipped")).unwrap(), body);

        ShipAgent {
            request: ShipRequest::Delete {
                path: p("/shipped"),
            },
        }
        .execute(&mut s)
        .unwrap();
        assert!(!s.meta().contains(&p("/shipped")), "delete synced");
    }
}
