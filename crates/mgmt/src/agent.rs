//! Management agents — the "mobile code" of the paper's §3.
//!
//! > "Each administrative function is implemented in the form of a Java
//! > class, which is termed an agent. The brokers distributed on each node
//! > may download the appropriate classes to perform the corresponding
//! > management tasks."
//!
//! Here an agent is a boxed [`Agent`] implementation shipped to a broker
//! over its channel. The built-in agents cover the operations the
//! controller needs (store, delete, rename, replicate, status, listing);
//! new management functions are added by implementing the trait, without
//! touching broker or controller code.

use crate::store::{NodeStore, StoreError, StoredFile};
use cpms_model::{NodeId, UrlPath};
use std::fmt;

/// What an agent produced.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AgentOutput {
    /// The operation completed with nothing to report.
    Done,
    /// A listing of the node's files.
    Listing(Vec<(UrlPath, StoredFile)>),
    /// A status snapshot of the node.
    Status {
        /// Files stored on the node.
        files: usize,
        /// Bytes in use.
        used_bytes: u64,
        /// Bytes free.
        free_bytes: u64,
    },
    /// The new version of a touched document.
    Version(u64),
}

/// Errors an agent can report back to the controller.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AgentError {
    /// A store-level failure on the target node.
    Store(StoreError),
    /// The broker for the target node is gone (crashed / shut down).
    BrokerUnavailable(NodeId),
}

impl fmt::Display for AgentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgentError::Store(e) => write!(f, "store operation failed: {e}"),
            AgentError::BrokerUnavailable(n) => write!(f, "broker on {n} unavailable"),
        }
    }
}

impl std::error::Error for AgentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AgentError::Store(e) => Some(e),
            AgentError::BrokerUnavailable(_) => None,
        }
    }
}

#[doc(hidden)]
impl From<StoreError> for AgentError {
    fn from(e: StoreError) -> Self {
        AgentError::Store(e)
    }
}

/// A management function executed by a broker against its node's store.
pub trait Agent: Send {
    /// Short name for logs and reports.
    fn name(&self) -> &'static str;

    /// Runs the function on the broker's node.
    ///
    /// # Errors
    ///
    /// Implementations surface store-level failures as
    /// [`AgentError::Store`].
    fn execute(&self, store: &mut NodeStore) -> Result<AgentOutput, AgentError>;
}

/// Stores a file on the node (used for publishing and as the receiving
/// half of replication).
#[derive(Debug, Clone)]
pub struct StoreFile {
    /// Destination path.
    pub path: UrlPath,
    /// File metadata to store.
    pub file: StoredFile,
    /// Whether to overwrite an existing copy (content updates).
    pub overwrite: bool,
}

impl Agent for StoreFile {
    fn name(&self) -> &'static str {
        "store-file"
    }

    fn execute(&self, store: &mut NodeStore) -> Result<AgentOutput, AgentError> {
        store.store(self.path.clone(), self.file, self.overwrite)?;
        Ok(AgentOutput::Done)
    }
}

/// Deletes a file from the node's local filesystem — the paper's worked
/// example: "one agent is responsible for deleting a file from the local
/// file system of the node that it executes. If the administrator tries to
/// offload some pages from a server, the controller will send this agent
/// to that node."
#[derive(Debug, Clone)]
pub struct DeleteFile {
    /// Path to delete.
    pub path: UrlPath,
}

impl Agent for DeleteFile {
    fn name(&self) -> &'static str {
        "delete-file"
    }

    fn execute(&self, store: &mut NodeStore) -> Result<AgentOutput, AgentError> {
        store.remove(&self.path)?;
        Ok(AgentOutput::Done)
    }
}

/// Renames a file on the node.
#[derive(Debug, Clone)]
pub struct RenameFile {
    /// Current path.
    pub from: UrlPath,
    /// New path.
    pub to: UrlPath,
}

impl Agent for RenameFile {
    fn name(&self) -> &'static str {
        "rename-file"
    }

    fn execute(&self, store: &mut NodeStore) -> Result<AgentOutput, AgentError> {
        store.rename(&self.from, self.to.clone())?;
        Ok(AgentOutput::Done)
    }
}

/// Bumps a mutable document's version in place (a content-provider
/// update).
#[derive(Debug, Clone)]
pub struct TouchFile {
    /// Path to update.
    pub path: UrlPath,
}

impl Agent for TouchFile {
    fn name(&self) -> &'static str {
        "touch-file"
    }

    fn execute(&self, store: &mut NodeStore) -> Result<AgentOutput, AgentError> {
        let version = store.touch(&self.path)?;
        Ok(AgentOutput::Version(version))
    }
}

/// Reports the node's status (files, disk usage) — the broker's monitoring
/// duty.
#[derive(Debug, Clone, Default)]
pub struct StatusProbe;

impl Agent for StatusProbe {
    fn name(&self) -> &'static str {
        "status-probe"
    }

    fn execute(&self, store: &mut NodeStore) -> Result<AgentOutput, AgentError> {
        Ok(AgentOutput::Status {
            files: store.len(),
            used_bytes: store.used_bytes(),
            free_bytes: store.free_bytes(),
        })
    }
}

/// Lists every file on the node (used to audit the single system image).
#[derive(Debug, Clone, Default)]
pub struct ListFiles;

impl Agent for ListFiles {
    fn name(&self) -> &'static str {
        "list-files"
    }

    fn execute(&self, store: &mut NodeStore) -> Result<AgentOutput, AgentError> {
        let mut listing: Vec<(UrlPath, StoredFile)> =
            store.iter().map(|(p, f)| (p.clone(), *f)).collect();
        listing.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(AgentOutput::Listing(listing))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpms_model::ContentId;

    fn p(s: &str) -> UrlPath {
        s.parse().unwrap()
    }

    fn store() -> NodeStore {
        NodeStore::new(NodeId(1), 1 << 20)
    }

    fn f(id: u32) -> StoredFile {
        StoredFile {
            content: ContentId(id),
            size: 100,
            version: 0,
        }
    }

    #[test]
    fn store_then_delete() {
        let mut s = store();
        let out = StoreFile {
            path: p("/a"),
            file: f(1),
            overwrite: false,
        }
        .execute(&mut s)
        .unwrap();
        assert_eq!(out, AgentOutput::Done);
        assert!(s.contains(&p("/a")));

        DeleteFile { path: p("/a") }.execute(&mut s).unwrap();
        assert!(!s.contains(&p("/a")));
        let err = DeleteFile { path: p("/a") }.execute(&mut s).unwrap_err();
        assert!(matches!(
            err,
            AgentError::Store(StoreError::NotFound { .. })
        ));
    }

    #[test]
    fn rename_and_touch() {
        let mut s = store();
        StoreFile {
            path: p("/old"),
            file: f(2),
            overwrite: false,
        }
        .execute(&mut s)
        .unwrap();
        RenameFile {
            from: p("/old"),
            to: p("/new"),
        }
        .execute(&mut s)
        .unwrap();
        let out = TouchFile { path: p("/new") }.execute(&mut s).unwrap();
        assert_eq!(out, AgentOutput::Version(1));
    }

    #[test]
    fn status_and_listing() {
        let mut s = store();
        for i in 0..3 {
            StoreFile {
                path: p(&format!("/f{i}")),
                file: f(i),
                overwrite: false,
            }
            .execute(&mut s)
            .unwrap();
        }
        match StatusProbe.execute(&mut s).unwrap() {
            AgentOutput::Status {
                files, used_bytes, ..
            } => {
                assert_eq!(files, 3);
                assert_eq!(used_bytes, 300);
            }
            other => panic!("unexpected output {other:?}"),
        }
        match ListFiles.execute(&mut s).unwrap() {
            AgentOutput::Listing(l) => {
                assert_eq!(l.len(), 3);
                assert!(l.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
            }
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn agent_names() {
        assert_eq!(StatusProbe.name(), "status-probe");
        assert_eq!(ListFiles.name(), "list-files");
        assert_eq!(DeleteFile { path: p("/x") }.name(), "delete-file");
    }
}
