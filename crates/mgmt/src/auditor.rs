//! Anti-entropy: reconciling each node's content store against the URL
//! table.
//!
//! The URL table is the single system image the distributor routes
//! from; the content stores are what nodes actually hold. Crashes,
//! partial transfers, operator mistakes, and disk corruption can make
//! the two drift. The [`AntiEntropyAuditor`] walks every node's store
//! inventory (over the same ship protocol replica bytes travel on),
//! compares it against the table — including the committed checksums
//! recorded at publish time — and either reports the drift or repairs
//! it: missing copies are re-shipped from a healthy replica, orphan
//! objects are deleted, stale or corrupt copies are overwritten with
//! verified bytes.

use crate::controller::Controller;
use cpms_model::{NodeId, UrlPath};
use cpms_store::{ObjectMeta, ShipPort, ShipReply, ShipRequest, Shipper};
use cpms_urltable::UrlEntry;
use std::collections::HashMap;
use std::fmt;

/// One observed divergence between the URL table and a node's content
/// store.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Drift {
    /// The table routes `path` to `node`, but the node's store has no
    /// committed object for it.
    MissingObject {
        /// The object's path.
        path: UrlPath,
        /// The node that should hold it.
        node: NodeId,
    },
    /// The node's store holds an object the table does not route to it.
    OrphanObject {
        /// The orphan's path.
        path: UrlPath,
        /// The node holding it.
        node: NodeId,
    },
    /// The node's copy does not match the checksum the table recorded
    /// at publish time (a stale or corrupt replica).
    StaleObject {
        /// The object's path.
        path: UrlPath,
        /// The node with the divergent copy.
        node: NodeId,
        /// What the table expects.
        expected: u64,
        /// What the store holds.
        got: u64,
    },
}

impl Drift {
    /// The node the divergence was observed on.
    #[must_use]
    pub fn node(&self) -> NodeId {
        match self {
            Drift::MissingObject { node, .. }
            | Drift::OrphanObject { node, .. }
            | Drift::StaleObject { node, .. } => *node,
        }
    }
}

impl fmt::Display for Drift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Drift::MissingObject { path, node } => write!(f, "{node} is missing {path}"),
            Drift::OrphanObject { path, node } => write!(f, "{node} holds orphan {path}"),
            Drift::StaleObject {
                path,
                node,
                expected,
                got,
            } => write!(
                f,
                "{node} holds stale {path} (checksum {got:#x}, table says {expected:#x})"
            ),
        }
    }
}

/// The outcome of one audit pass.
#[derive(Debug, Default)]
pub struct DriftReport {
    /// Every divergence found.
    pub drift: Vec<Drift>,
    /// Nodes whose inventory could not be fetched (their objects are
    /// not judged this pass).
    pub unreachable: Vec<NodeId>,
    /// Divergences repaired (repair mode only).
    pub repaired: usize,
    /// Divergences that could not be repaired, with the reason.
    pub failed_repairs: Vec<(Drift, String)>,
}

impl DriftReport {
    /// Whether every reachable node agreed with the table.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.drift.is_empty() && self.unreachable.is_empty()
    }

    /// Number of divergences found.
    #[must_use]
    pub fn drift_count(&self) -> usize {
        self.drift.len()
    }

    /// One-line console rendering.
    #[must_use]
    pub fn summary(&self) -> String {
        if self.is_clean() {
            "audit clean: stores agree with the URL table".to_string()
        } else {
            format!(
                "audit found {} drift item(s) ({} repaired, {} failed, {} node(s) unreachable)",
                self.drift.len(),
                self.repaired,
                self.failed_repairs.len(),
                self.unreachable.len()
            )
        }
    }
}

/// Walks node inventories and reconciles them with the URL table.
#[derive(Debug)]
pub struct AntiEntropyAuditor {
    inventory_attempts: u32,
    deep_verify: bool,
    shipper: Shipper,
}

impl Default for AntiEntropyAuditor {
    fn default() -> Self {
        AntiEntropyAuditor::new()
    }
}

impl AntiEntropyAuditor {
    /// An auditor with 3 inventory attempts per node and deep verify on.
    #[must_use]
    pub fn new() -> Self {
        AntiEntropyAuditor {
            inventory_attempts: 3,
            deep_verify: true,
            shipper: Shipper::new(),
        }
    }

    /// Sets how many times a node's inventory fetch is attempted before
    /// the node is reported unreachable.
    #[must_use]
    pub fn with_inventory_attempts(mut self, attempts: u32) -> Self {
        self.inventory_attempts = attempts.max(1);
        self
    }

    /// Enables or disables deep verification (re-checksumming each
    /// routed object on its node, catching bit rot the manifest alone
    /// cannot).
    #[must_use]
    pub fn with_deep_verify(mut self, deep: bool) -> Self {
        self.deep_verify = deep;
        self
    }

    /// Fetches one node's committed inventory with bounded retries.
    fn inventory(&self, port: &dyn ShipPort) -> Option<HashMap<UrlPath, ObjectMeta>> {
        for _ in 0..self.inventory_attempts {
            if let Ok(ShipReply::InventoryIs(listing)) = port.ship(&ShipRequest::Inventory) {
                return Some(listing.into_iter().collect());
            }
        }
        None
    }

    /// The store-side checksum of `path` on the node behind `port`:
    /// manifest checksum, or the actual re-hashed bytes under deep
    /// verify (a verify failure reports as a mismatching checksum).
    fn store_checksum(&self, port: &dyn ShipPort, path: &UrlPath, manifest: &ObjectMeta) -> u64 {
        if !self.deep_verify {
            return manifest.checksum;
        }
        match port.ship(&ShipRequest::Verify { path: path.clone() }) {
            Ok(ShipReply::Verified(meta)) => meta.checksum,
            // Corrupt on disk (or unreadable): force a mismatch so the
            // copy is treated as stale.
            _ => !manifest.checksum,
        }
    }

    /// One detection pass: every reachable node's inventory against the
    /// table. No repairs.
    #[must_use]
    pub fn audit(&self, controller: &Controller) -> DriftReport {
        let mut report = DriftReport::default();
        let table = controller.table();
        let cluster = controller.cluster();
        let mut inventories: Vec<Option<HashMap<UrlPath, ObjectMeta>>> = Vec::new();
        for i in 0..cluster.len() {
            let node = NodeId(i as u16);
            // Evicted nodes are out of the routing image by definition:
            // neither their absence (unreachable) nor any bytes still on
            // their disk (orphans) count as drift.
            if controller.is_decommissioned(node) {
                inventories.push(None);
                continue;
            }
            let handle = cluster.broker(node).expect("index in range");
            let inventory = self.inventory(handle);
            if inventory.is_none() {
                report.unreachable.push(node);
            }
            inventories.push(inventory);
        }
        // Table → stores: every routed location must hold a matching
        // committed object.
        for (path, entry) in table.iter() {
            for &node in entry.locations() {
                let Some(Some(inventory)) = inventories.get(node.index()) else {
                    continue; // unreachable: don't guess
                };
                match inventory.get(&path) {
                    None => report.drift.push(Drift::MissingObject {
                        path: path.clone(),
                        node,
                    }),
                    Some(object) => {
                        if entry.checksum() == 0 {
                            continue; // published before checksums existed
                        }
                        let handle = cluster.broker(node).expect("index in range");
                        let got = self.store_checksum(handle, &path, object);
                        if got != entry.checksum() {
                            report.drift.push(Drift::StaleObject {
                                path: path.clone(),
                                node,
                                expected: entry.checksum(),
                                got,
                            });
                        }
                    }
                }
            }
        }
        // Stores → table: objects nobody routes to are orphans.
        for (i, inventory) in inventories.iter().enumerate() {
            let node = NodeId(i as u16);
            let Some(inventory) = inventory else { continue };
            for path in inventory.keys() {
                let routed = table
                    .lookup_exact(path)
                    .map(|e| e.hosted_on(node))
                    .unwrap_or(false);
                if !routed {
                    report.drift.push(Drift::OrphanObject {
                        path: path.clone(),
                        node,
                    });
                }
            }
        }
        report
    }

    /// Pulls verified bytes for `path` from any healthy replica other
    /// than `avoid`.
    fn pull_healthy(
        &self,
        controller: &Controller,
        entry: &UrlEntry,
        path: &UrlPath,
        avoid: NodeId,
    ) -> Result<(ObjectMeta, Vec<u8>), String> {
        let mut last = "no other replica".to_string();
        for &source in entry.locations() {
            if source == avoid {
                continue;
            }
            let Some(handle) = controller.cluster().broker(source) else {
                continue;
            };
            match self.shipper.pull(handle, path) {
                Ok((meta, body)) => {
                    if entry.checksum() != 0 && meta.checksum != entry.checksum() {
                        last = format!("{source} also stale ({:#x})", meta.checksum);
                        continue;
                    }
                    return Ok((meta, body));
                }
                Err(e) => last = e.to_string(),
            }
        }
        Err(last)
    }

    /// Detects drift and repairs it: missing copies are re-shipped from
    /// a healthy replica, orphans deleted, stale copies overwritten
    /// with verified bytes. Run [`AntiEntropyAuditor::audit`] again
    /// afterwards to confirm convergence.
    pub fn repair(&self, controller: &mut Controller) -> DriftReport {
        let mut report = self.audit(controller);
        let table = controller.table();
        for drift in report.drift.clone() {
            let outcome: Result<(), String> = match &drift {
                Drift::MissingObject { path, node } | Drift::StaleObject { path, node, .. } => {
                    match table.lookup_exact(path) {
                        None => Err("no longer in the table".to_string()),
                        Some(entry) => self.pull_healthy(controller, entry, path, *node).and_then(
                            |(meta, body)| {
                                let handle = controller
                                    .cluster()
                                    .broker(*node)
                                    .ok_or("node gone".to_string())?;
                                if matches!(drift, Drift::StaleObject { .. }) {
                                    // Drop the known-bad copy first: its
                                    // manifest may still claim the right
                                    // checksum (silent corruption), which
                                    // would let the re-ship short-circuit
                                    // as "already committed".
                                    let _ =
                                        handle.ship(&ShipRequest::Delete { path: path.clone() });
                                }
                                self.shipper
                                    .push_meta(handle, path, meta, &body, true)
                                    .map(|_| ())
                                    .map_err(|e| e.to_string())
                            },
                        ),
                    }
                }
                Drift::OrphanObject { path, node } => controller
                    .cluster()
                    .broker(*node)
                    .ok_or("node gone".to_string())
                    .and_then(|handle| {
                        match handle.ship(&ShipRequest::Delete { path: path.clone() }) {
                            Ok(ShipReply::Deleted(_)) => Ok(()),
                            Ok(other) => Err(format!("delete answered {other:?}")),
                            Err(e) => Err(e.to_string()),
                        }
                    }),
            };
            match outcome {
                Ok(()) => report.repaired += 1,
                Err(reason) => report.failed_repairs.push((drift, reason)),
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::Cluster;
    use cpms_model::{ContentId, ContentKind, Priority};

    fn p(s: &str) -> UrlPath {
        s.parse().unwrap()
    }

    fn published_controller() -> Controller {
        let mut c = Controller::new(Cluster::start(3, 1 << 20));
        c.publish(
            &p("/a"),
            ContentId(1),
            ContentKind::StaticHtml,
            5000,
            Priority::Normal,
            &[NodeId(0), NodeId(1)],
        )
        .unwrap();
        c.publish(
            &p("/b"),
            ContentId(2),
            ContentKind::Image,
            2000,
            Priority::Normal,
            &[NodeId(2)],
        )
        .unwrap();
        c
    }

    #[test]
    fn clean_cluster_audits_clean() {
        let mut c = published_controller();
        let report = AntiEntropyAuditor::new().audit(&c);
        assert!(report.is_clean(), "{:?}", report.drift);
        assert_eq!(
            report.summary(),
            "audit clean: stores agree with the URL table"
        );
        c.shutdown();
    }

    #[test]
    fn missing_copy_is_found_and_reshipped() {
        let mut c = published_controller();
        // Inject drift: delete node 1's object behind the table's back.
        let handle = c.cluster().broker(NodeId(1)).unwrap();
        handle.ship(&ShipRequest::Delete { path: p("/a") }).unwrap();
        let auditor = AntiEntropyAuditor::new();
        let report = auditor.repair(&mut c);
        assert_eq!(report.drift_count(), 1);
        assert_eq!(report.repaired, 1, "{:?}", report.failed_repairs);
        assert!(auditor.audit(&c).is_clean(), "drift converged to zero");
        c.shutdown();
    }

    #[test]
    fn dead_node_reports_unreachable_not_a_panic() {
        let mut c = published_controller();
        c.kill_node(NodeId(2));
        let report = AntiEntropyAuditor::new().audit(&c);
        assert_eq!(report.unreachable, vec![NodeId(2)]);
        assert!(!report.is_clean());
        c.shutdown();
    }

    #[test]
    fn evicted_node_converges_after_repair() {
        let mut c = published_controller();
        // Kill node 0 (one of /a's two replicas), evict it, and repair:
        // the audit must come back clean — the dead node is out of the
        // image, and /a still routes to its surviving copy on node 1.
        c.kill_node(NodeId(0));
        let report = c.evict(NodeId(0)).unwrap();
        assert_eq!(report.dropped_locations, 1);
        assert!(report.lost.is_empty());
        let auditor = AntiEntropyAuditor::new();
        auditor.repair(&mut c);
        let after = auditor.audit(&c);
        assert!(after.is_clean(), "{:?}", after);
        assert_eq!(c.table().lookup(&p("/a")).unwrap().locations(), [NodeId(1)]);
        c.shutdown();
    }
}
