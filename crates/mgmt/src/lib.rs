//! # cpms-mgmt
//!
//! The paper's **content management system** (§3): the layer that gives
//! the administrator a *single system image* of a document tree that is
//! physically partitioned across heterogeneous nodes, and that keeps the
//! cluster balanced automatically.
//!
//! Architecture, mirroring the paper's four components:
//!
//! - [`Broker`] — a daemon on each back-end node that executes management
//!   functions against that node's local file store ([`NodeStore`]). The
//!   paper implements brokers in Java for portability; here each broker is
//!   a [`cpms_wire::Service`] reachable over a [`cpms_wire`] transport —
//!   in-process channels ([`WireMode::InProc`]) or a real TCP daemon
//!   ([`WireMode::Tcp`], the `cpms-broker` binary).
//! - [`agent::AgentRequest`] — a management function shipped to a broker
//!   as a serialized wire message ("mobile code"): delete a file, store a
//!   file, replicate content from a peer, report status. New functions are
//!   added by implementing [`agent::Agent`] and adding a request variant,
//!   matching the paper's "can be tailored or extended … without
//!   requiring significant redesign".
//! - [`Controller`] — receives administrator operations, dispatches the
//!   corresponding agents to the affected brokers, and keeps the
//!   distributor's URL table in sync ("the controller will change the URL
//!   table to adapt to these changes").
//! - [`console::RemoteConsole`] — the administrator-facing file-manager
//!   API: a coherent view of the whole document tree with insert, delete,
//!   rename, assign, and replicate operations.
//!
//! Plus §3.3's [`autorep::AutoReplicator`]: the load-balancing policy that
//! replicates popular content to underutilized nodes and sheds copies from
//! overloaded ones, driven by the paper's `l_i` / `L_j` metrics
//! ([`cpms_model::load`]).
//!
//! # Example
//!
//! ```
//! use cpms_mgmt::{Cluster, Controller, console::RemoteConsole};
//! use cpms_model::{ContentId, ContentKind, NodeId, UrlPath};
//!
//! // Three nodes with 1 GB of disk each.
//! let cluster = Cluster::start(3, 1 << 30);
//! let mut console = RemoteConsole::new(Controller::new(cluster));
//!
//! let path: UrlPath = "/site/index.html".parse().unwrap();
//! console.publish(&path, ContentId(0), ContentKind::StaticHtml, 2048, &[NodeId(0)])?;
//! console.replicate(&path, NodeId(2))?;
//!
//! let view = console.tree_view();
//! assert_eq!(view.len(), 1);
//! assert_eq!(view[0].locations, vec![NodeId(0), NodeId(2)]);
//! # console.shutdown();
//! # Ok::<(), cpms_mgmt::MgmtError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admin;
pub mod agent;
pub mod auditor;
pub mod autorep;
pub mod broker;
pub mod console;
pub mod controller;
pub mod monitor;
pub mod shell;
pub mod store;

pub use admin::{AdminClient, AdminRequest, AdminResponse, AdminServer};
pub use agent::{Agent, AgentError, AgentOutput, AgentReply, AgentRequest, ShipAgent};
pub use auditor::{AntiEntropyAuditor, Drift, DriftReport};
pub use autorep::{AutoReplicator, RebalanceAction};
pub use broker::{Broker, BrokerHandle, BrokerService};
pub use controller::{Cluster, Controller, EvictReport, MgmtError, WireMode};
pub use monitor::{ClusterMonitor, NodeHealth, NodeTransportHealth};
pub use store::{BrokerState, NodeStore, StoredFile};
