//! A newline-delimited-JSON admin API for management daemons.
//!
//! The interactive [`Shell`](crate::shell::Shell) reads commands from a
//! TTY; a cluster orchestrator (the `cpms-lab` harness) needs the same
//! verbs over a socket, with machine-parseable success/failure. The
//! protocol is one JSON object per line in each direction:
//!
//! ```text
//! -> {"cmd": "publish /a.html html 1024 0,1"}
//! <- {"ok": true, "output": "published /a.html as content#0"}
//! ```
//!
//! `ok` is `false` both for command errors ("no such node") and for
//! health commands that *detected* a problem (`audit` finding drift), so
//! a driver can gate on it directly.

use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// One admin request: a single shell command line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdminRequest {
    /// The command line, in the shell's command language.
    pub cmd: String,
}

/// The response to one admin request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdminResponse {
    /// Whether the command succeeded *and* found the system healthy.
    pub ok: bool,
    /// Human-readable output (or the error / failure detail).
    pub output: String,
}

impl AdminResponse {
    /// A successful response.
    #[must_use]
    pub fn ok(output: impl Into<String>) -> Self {
        AdminResponse {
            ok: true,
            output: output.into(),
        }
    }

    /// A failed response.
    #[must_use]
    pub fn err(output: impl Into<String>) -> Self {
        AdminResponse {
            ok: false,
            output: output.into(),
        }
    }
}

/// A TCP listener serving the ND-JSON admin protocol, dispatching each
/// request line to a handler. Connections are served one at a time —
/// the admin plane has a single driver, and serializing keeps the
/// handler a plain `FnMut` over mutable daemon state.
#[derive(Debug)]
pub struct AdminServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl AdminServer {
    /// Binds `addr` (port 0 picks an ephemeral port) and serves requests
    /// through `handler` on a background thread.
    ///
    /// # Errors
    ///
    /// Propagates the listener bind failure.
    pub fn bind(
        addr: SocketAddr,
        handler: impl FnMut(&str) -> AdminResponse + Send + 'static,
    ) -> io::Result<AdminServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handler = Arc::new(Mutex::new(handler));
        let accept_thread = std::thread::Builder::new()
            .name("cpms-admin".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let _ = Self::serve_connection(stream, &handler, &stop_flag);
                }
            })
            .expect("spawn admin accept thread");
        Ok(AdminServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    fn serve_connection(
        stream: TcpStream,
        handler: &Arc<Mutex<impl FnMut(&str) -> AdminResponse>>,
        stop: &AtomicBool,
    ) -> io::Result<()> {
        // Short read timeout so an idle connection cannot pin the server
        // past a stop() call; a timeout just re-checks the flag.
        stream.set_read_timeout(Some(Duration::from_millis(250)))?;
        let mut writer = BufWriter::new(stream.try_clone()?);
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        loop {
            if stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            match reader.read_line(&mut line) {
                Ok(0) => return Ok(()),
                Ok(_) => {
                    let trimmed = line.trim();
                    if !trimmed.is_empty() {
                        let response = match serde_json::from_str::<AdminRequest>(trimmed) {
                            Ok(request) => {
                                let mut handler = handler.lock().expect("admin handler lock");
                                handler(&request.cmd)
                            }
                            Err(e) => AdminResponse::err(format!("bad request line: {e}")),
                        };
                        let encoded =
                            serde_json::to_string(&response).expect("response serializes");
                        writer.write_all(encoded.as_bytes())?;
                        writer.write_all(b"\n")?;
                        writer.flush()?;
                    }
                    line.clear();
                }
                // Timed out mid-wait: any partial line stays buffered in
                // `line` and the next read appends the rest.
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                    ) =>
                {
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A client for the ND-JSON admin protocol: one persistent connection,
/// one request/response pair per [`AdminClient::send`].
#[derive(Debug)]
pub struct AdminClient {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
}

impl AdminClient {
    /// Connects to an [`AdminServer`].
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: SocketAddr) -> io::Result<AdminClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(AdminClient {
            writer: BufWriter::new(stream.try_clone()?),
            reader: BufReader::new(stream),
        })
    }

    /// Sends one command line and reads its response.
    ///
    /// # Errors
    ///
    /// I/O failures, a closed connection, or an unparseable response.
    pub fn send(&mut self, cmd: &str) -> io::Result<AdminResponse> {
        let encoded = serde_json::to_string(&AdminRequest {
            cmd: cmd.to_string(),
        })
        .expect("request serializes");
        self.writer.write_all(encoded.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "admin server closed the connection",
            ));
        }
        serde_json::from_str(&line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_commands_and_failures() {
        let mut server = AdminServer::bind("127.0.0.1:0".parse().unwrap(), |cmd| {
            if cmd == "ping" {
                AdminResponse::ok("pong")
            } else {
                AdminResponse::err(format!("unknown {cmd:?}"))
            }
        })
        .unwrap();
        let mut client = AdminClient::connect(server.addr()).unwrap();
        assert_eq!(client.send("ping").unwrap(), AdminResponse::ok("pong"));
        let bad = client.send("nope").unwrap();
        assert!(!bad.ok);
        assert!(bad.output.contains("unknown"));
        // Requests on the same connection keep working.
        assert_eq!(client.send("ping").unwrap(), AdminResponse::ok("pong"));
        server.stop();
        // After stop, new connections get no service.
        assert!(AdminClient::connect(server.addr())
            .and_then(|mut c| c.send("ping"))
            .is_err());
    }

    #[test]
    fn malformed_lines_answer_with_an_error() {
        let server = AdminServer::bind("127.0.0.1:0".parse().unwrap(), |_| {
            AdminResponse::ok("fine")
        })
        .unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut writer = BufWriter::new(stream.try_clone().unwrap());
        writer.write_all(b"this is not json\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        let response: AdminResponse = serde_json::from_str(&line).unwrap();
        assert!(!response.ok);
        assert!(response.output.contains("bad request line"));
    }
}
