//! The distributor as a standalone daemon: a content-aware proxy, the
//! management controller that feeds its URL table, and an ND-JSON admin
//! socket — the front end of a multi-process paper testbed.
//!
//! Usage:
//!   cpms-proxy \[--admin ADDR\] \[--prefork N\] \[--workers N\]
//!              <WIRE,HTTP> \[<WIRE,HTTP> ...\]
//!
//! Each positional argument names one backend node as a pair of
//! addresses: the node's `cpms-broker` wire endpoint and its origin
//! HTTP endpoint (`cpms-broker --http`'s second stdout line). The
//! argument's position is the node id. The daemon prints one JSON ready
//! line on stdout:
//!
//! ```text
//! {"proxy": "127.0.0.1:40001", "admin": "127.0.0.1:40002", "nodes": 3}
//! ```
//!
//! then serves until stdin closes or the admin socket receives
//! `shutdown`. The admin protocol is [`cpms_mgmt::admin`]'s ND-JSON:
//! every shell command (`publish`, `audit`, `evict`, …) plus the chaos
//! verbs wired to per-link [`FaultSwitch`]es:
//!
//! ```text
//! fault <node> loss <rate> [seed]   arm frame loss on the node's link
//! fault <node> poison [seed]        arm frame truncation
//! partition <node>                  cut the link entirely
//! heal <node>                       disarm faults and reconnect
//! metrics                           merged metrics registry as JSON
//! generation                        current URL-table generation
//! shutdown                          clean exit
//! ```

use cpms_httpd::ContentAwareProxy;
use cpms_mgmt::admin::{AdminResponse, AdminServer};
use cpms_mgmt::console::RemoteConsole;
use cpms_mgmt::shell::{Shell, ShellOutcome};
use cpms_mgmt::{Broker, Cluster, Controller};
use cpms_model::NodeId;
use cpms_obs::MetricsRegistry;
use cpms_wire::{FaultPlan, FaultSwitch, Transport};
use std::net::SocketAddr;
use std::sync::{mpsc, Arc};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut admin_addr: SocketAddr = "127.0.0.1:0".parse().expect("literal addr");
    let mut prefork: u32 = 2;
    let mut workers: usize = 4;
    let mut pairs: Vec<(SocketAddr, SocketAddr)> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--admin" => {
                admin_addr = it
                    .next()
                    .expect("--admin needs an address")
                    .parse()
                    .expect("--admin address must be host:port");
            }
            "--prefork" => {
                prefork = it
                    .next()
                    .expect("--prefork needs a number")
                    .parse()
                    .expect("--prefork must be a number");
            }
            "--workers" => {
                workers = it
                    .next()
                    .expect("--workers needs a number")
                    .parse()
                    .expect("--workers must be a number");
            }
            pair => {
                let (wire, http) = pair
                    .split_once(',')
                    .expect("node argument must be WIREADDR,HTTPADDR");
                pairs.push((
                    wire.parse().expect("wire address must be host:port"),
                    http.parse().expect("http address must be host:port"),
                ));
            }
        }
    }
    if pairs.is_empty() {
        eprintln!(
            "usage: cpms-proxy [--admin ADDR] [--prefork N] [--workers N] <WIRE,HTTP> [<WIRE,HTTP> ...]"
        );
        std::process::exit(2);
    }

    // One armable fault switch per controller→broker link, so chaos can
    // be injected per node at runtime without touching the processes.
    let mut switches: Vec<Arc<FaultSwitch>> = Vec::new();
    let mut handles = Vec::new();
    let backends: Vec<SocketAddr> = pairs.iter().map(|&(_, http)| http).collect();
    for (i, &(wire, _)) in pairs.iter().enumerate() {
        let node = NodeId(i as u16);
        let mut slot: Option<Arc<FaultSwitch>> = None;
        let handle = Broker::connect_wrapped(node, wire, |transport| {
            let switch = Arc::new(FaultSwitch::new(transport));
            slot = Some(Arc::clone(&switch));
            switch as Arc<dyn Transport>
        });
        switches.push(slot.expect("wrap closure always runs"));
        handles.push(handle);
    }

    let registry = Arc::new(MetricsRegistry::new());
    registry.spans().set_process("proxy");
    let mut controller = Controller::new(Cluster::from_handles(handles));
    controller.set_metrics(&registry);
    let publisher = controller.publisher().share();
    let proxy = ContentAwareProxy::start_with_publisher(
        publisher,
        backends,
        prefork,
        workers,
        Arc::clone(&registry),
    )
    .expect("start content-aware proxy");

    let mut shell = Shell::new(RemoteConsole::new(controller));
    let (stop_tx, stop_rx) = mpsc::channel::<&'static str>();
    let admin_stop = stop_tx.clone();
    let admin = AdminServer::bind(admin_addr, move |cmd| {
        dispatch(&mut shell, &switches, &admin_stop, cmd)
    })
    .expect("bind admin listener");

    println!(
        "{{\"proxy\": \"{}\", \"admin\": \"{}\", \"nodes\": {}}}",
        proxy.addr(),
        admin.addr(),
        pairs.len()
    );
    use std::io::Write as _;
    std::io::stdout().flush().expect("flush ready line");
    eprintln!(
        "cpms-proxy: routing for {} node(s) on {}, admin on {}",
        pairs.len(),
        proxy.addr(),
        admin.addr()
    );

    // Serve until whoever holds our stdin pipe drops it, someone types
    // `shutdown`, or the admin socket asks for it.
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::BufRead::read_line(&mut stdin.lock(), &mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) if line.trim() == "shutdown" => break,
                Ok(_) => {}
            }
        }
        let _ = stop_tx.send("stdin closed");
    });
    let reason = stop_rx.recv().unwrap_or("stop channel closed");
    eprintln!("cpms-proxy: shutting down ({reason})");
    let mut proxy = proxy;
    let mut admin = admin;
    admin.stop();
    proxy.shutdown();
}

/// Handles one admin command: chaos verbs against the fault switches,
/// daemon verbs, and everything else through the shell.
fn dispatch(
    shell: &mut Shell,
    switches: &[Arc<FaultSwitch>],
    stop: &mpsc::Sender<&'static str>,
    cmd: &str,
) -> AdminResponse {
    let words: Vec<&str> = cmd.split_whitespace().collect();
    match words.as_slice() {
        ["fault", node, rest @ ..] => match switch_for(switches, node) {
            Ok((node, switch)) => match rest {
                ["loss", rate] | ["loss", rate, _] => {
                    let Ok(rate) = rate.parse::<f64>() else {
                        return AdminResponse::err(format!("bad loss rate {rate:?}"));
                    };
                    let seed = rest
                        .get(2)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(0xC405_0000 + u64::from(node.0));
                    switch.arm(FaultPlan::lossy(seed, rate));
                    AdminResponse::ok(format!("armed {rate} loss on {node}"))
                }
                ["poison"] | ["poison", _] => {
                    let seed = rest
                        .get(1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(0xBAD_0000 + u64::from(node.0));
                    switch.arm(FaultPlan::poisoned(seed));
                    AdminResponse::ok(format!("armed poison on {node}"))
                }
                _ => AdminResponse::err("usage: fault <node> loss <rate> [seed] | poison [seed]"),
            },
            Err(e) => AdminResponse::err(e),
        },
        ["partition", node] => match switch_for(switches, node) {
            Ok((node, switch)) => {
                switch.set_partitioned(true);
                AdminResponse::ok(format!("partitioned {node}"))
            }
            Err(e) => AdminResponse::err(e),
        },
        ["heal", node] => match switch_for(switches, node) {
            Ok((node, switch)) => {
                switch.disarm();
                switch.set_partitioned(false);
                AdminResponse::ok(format!("healed {node}"))
            }
            Err(e) => AdminResponse::err(e),
        },
        ["metrics"] => AdminResponse::ok(shell.console().controller().metrics_json()),
        ["traces"] => AdminResponse::ok(shell.console().controller().metrics().spans().to_json()),
        ["generation"] => AdminResponse::ok(
            shell
                .console()
                .controller()
                .publisher()
                .generation()
                .to_string(),
        ),
        ["shutdown"] => {
            let _ = stop.send("admin shutdown");
            AdminResponse::ok("shutting down")
        }
        _ => match shell.execute(cmd) {
            ShellOutcome::Output(out) => AdminResponse::ok(out),
            ShellOutcome::Failure(out) => AdminResponse::err(out),
            ShellOutcome::Quit => {
                let _ = stop.send("admin quit");
                AdminResponse::ok("shutting down")
            }
        },
    }
}

/// Resolves a `<node>` argument (`2` or `n2`) to its fault switch.
fn switch_for<'a>(
    switches: &'a [Arc<FaultSwitch>],
    raw: &str,
) -> Result<(NodeId, &'a Arc<FaultSwitch>), String> {
    let digits = raw.strip_prefix('n').unwrap_or(raw);
    let id: u16 = digits
        .parse()
        .map_err(|_| format!("bad node {raw:?} (use e.g. `2` or `n2`)"))?;
    match switches.get(usize::from(id)) {
        Some(switch) => Ok((NodeId(id), switch)),
        None => Err(format!("no node {raw} in this topology")),
    }
}
