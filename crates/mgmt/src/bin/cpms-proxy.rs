//! The distributor as a standalone daemon: a content-aware proxy, the
//! management controller that feeds its URL table, and an ND-JSON admin
//! socket — the front end of a multi-process paper testbed.
//!
//! Usage:
//!   cpms-proxy \[--admin ADDR\] \[--prefork N\] \[--workers N\]
//!              \[--max-conns N\] \[--tenant-cap PREFIX=N ...\]
//!              \[--record-interval MS\]
//!              <WIRE,HTTP> \[<WIRE,HTTP> ...\]
//!   cpms-proxy --smoke
//!
//! `--workers` fixes the event-loop thread count (connections beyond
//! that multiplex, they never add threads), `--max-conns` is the global
//! admission cap (overload sheds an immediate 503 at accept), and each
//! `--tenant-cap` bounds concurrent connections whose first routed
//! request matches a path prefix. `--record-interval` sets the flight
//! recorder's sampling period in milliseconds (default 100; `0`
//! disables the recorder and the SLO watchdog). `--smoke` runs the
//! self-contained high-concurrency data-plane check used by CI and
//! exits.
//!
//! Each positional argument names one backend node as a pair of
//! addresses: the node's `cpms-broker` wire endpoint and its origin
//! HTTP endpoint (`cpms-broker --http`'s second stdout line). The
//! argument's position is the node id. The daemon prints one JSON ready
//! line on stdout:
//!
//! ```text
//! {"proxy": "127.0.0.1:40001", "admin": "127.0.0.1:40002", "nodes": 3}
//! ```
//!
//! then serves until stdin closes or the admin socket receives
//! `shutdown`. The admin protocol is [`cpms_mgmt::admin`]'s ND-JSON:
//! every shell command (`publish`, `audit`, `evict`, …) plus the chaos
//! verbs wired to per-link [`FaultSwitch`]es:
//!
//! ```text
//! fault <node> loss <rate> [seed]   arm frame loss on the node's link
//! fault <node> poison [seed]        arm frame truncation
//! partition <node>                  cut the link entirely
//! heal <node>                       disarm faults and reconnect
//! metrics                           merged metrics registry as JSON
//! traces                            retained spans as JSON
//! series                            flight-recorder time series as JSON
//! generation                        current URL-table generation
//! shutdown                          clean exit
//! ```
//!
//! With the recorder on, the daemon also watches two default SLOs —
//! `proxy_backend_errors_total rate <= 0 over 2s` and
//! `proxy_pool_failures_total rate <= 0 over 2s` — whose verdicts the
//! `health` shell command renders and whose breaches increment
//! `slo_breach_total`.

use cpms_httpd::{ContentAwareProxy, ProxyConfig, TenantCap};
use cpms_mgmt::admin::{AdminResponse, AdminServer};
use cpms_mgmt::console::RemoteConsole;
use cpms_mgmt::shell::{Shell, ShellOutcome};
use cpms_mgmt::{Broker, Cluster, Controller};
use cpms_model::NodeId;
use cpms_obs::{MetricsRegistry, SloRule, SloWatchdog};
use cpms_wire::{FaultPlan, FaultSwitch, Transport};
use std::net::SocketAddr;
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// SLOs every proxy daemon watches when the flight recorder is on: the
/// data plane must not be producing backend errors or pool failures.
/// A killed or unreachable origin drives these into breach within one
/// sampling round; two quiet seconds clear them.
const DEFAULT_SLOS: [&str; 2] = [
    "proxy_backend_errors_total rate <= 0 over 2s",
    "proxy_pool_failures_total rate <= 0 over 2s",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--smoke") {
        smoke();
        return;
    }
    let mut admin_addr: SocketAddr = "127.0.0.1:0".parse().expect("literal addr");
    let mut config = ProxyConfig {
        prefork: 2,
        ..ProxyConfig::default()
    };
    let mut record_interval_ms: u64 = 100;
    let mut pairs: Vec<(SocketAddr, SocketAddr)> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--admin" => {
                admin_addr = it
                    .next()
                    .expect("--admin needs an address")
                    .parse()
                    .expect("--admin address must be host:port");
            }
            "--prefork" => {
                config.prefork = it
                    .next()
                    .expect("--prefork needs a number")
                    .parse()
                    .expect("--prefork must be a number");
            }
            "--workers" => {
                config.workers = it
                    .next()
                    .expect("--workers needs a number")
                    .parse()
                    .expect("--workers must be a number");
            }
            "--max-conns" => {
                config.max_conns = it
                    .next()
                    .expect("--max-conns needs a number")
                    .parse()
                    .expect("--max-conns must be a number");
            }
            "--record-interval" => {
                record_interval_ms = it
                    .next()
                    .expect("--record-interval needs milliseconds")
                    .parse()
                    .expect("--record-interval must be a number of milliseconds");
            }
            "--tenant-cap" => {
                let spec = it.next().expect("--tenant-cap needs PREFIX=N");
                let (prefix, cap) = spec
                    .split_once('=')
                    .expect("--tenant-cap argument must be PREFIX=N");
                config.tenant_caps.push(TenantCap {
                    prefix: prefix.trim_matches('/').to_string(),
                    max_conns: cap.parse().expect("tenant cap must be a number"),
                });
            }
            pair => {
                let (wire, http) = pair
                    .split_once(',')
                    .expect("node argument must be WIREADDR,HTTPADDR");
                pairs.push((
                    wire.parse().expect("wire address must be host:port"),
                    http.parse().expect("http address must be host:port"),
                ));
            }
        }
    }
    if pairs.is_empty() {
        eprintln!(
            "usage: cpms-proxy [--admin ADDR] [--prefork N] [--workers N] [--max-conns N] [--tenant-cap PREFIX=N ...] [--record-interval MS] <WIRE,HTTP> [<WIRE,HTTP> ...]"
        );
        std::process::exit(2);
    }

    // One armable fault switch per controller→broker link, so chaos can
    // be injected per node at runtime without touching the processes.
    let mut switches: Vec<Arc<FaultSwitch>> = Vec::new();
    let mut handles = Vec::new();
    let backends: Vec<SocketAddr> = pairs.iter().map(|&(_, http)| http).collect();
    for (i, &(wire, _)) in pairs.iter().enumerate() {
        let node = NodeId(i as u16);
        let mut slot: Option<Arc<FaultSwitch>> = None;
        let handle = Broker::connect_wrapped(node, wire, |transport| {
            let switch = Arc::new(FaultSwitch::new(transport));
            slot = Some(Arc::clone(&switch));
            switch as Arc<dyn Transport>
        });
        switches.push(slot.expect("wrap closure always runs"));
        handles.push(handle);
    }

    let registry = Arc::new(MetricsRegistry::new());
    registry.spans().set_process("proxy");
    if record_interval_ms > 0 {
        config.record_interval = Some(Duration::from_millis(record_interval_ms));
        let rules = DEFAULT_SLOS
            .iter()
            .map(|text| SloRule::parse(text).expect("default SLO rules parse"))
            .collect();
        let _watchdog = SloWatchdog::install(&registry, rules);
    }
    let mut controller = Controller::new(Cluster::from_handles(handles));
    controller.set_metrics(&registry);
    let publisher = controller.publisher().share();
    let proxy =
        ContentAwareProxy::start_with_config(publisher, backends, Arc::clone(&registry), config)
            .expect("start content-aware proxy");

    let mut shell = Shell::new(RemoteConsole::new(controller));
    let (stop_tx, stop_rx) = mpsc::channel::<&'static str>();
    let admin_stop = stop_tx.clone();
    let admin = AdminServer::bind(admin_addr, move |cmd| {
        dispatch(&mut shell, &switches, &admin_stop, cmd)
    })
    .expect("bind admin listener");

    println!(
        "{{\"proxy\": \"{}\", \"admin\": \"{}\", \"nodes\": {}}}",
        proxy.addr(),
        admin.addr(),
        pairs.len()
    );
    use std::io::Write as _;
    std::io::stdout().flush().expect("flush ready line");
    eprintln!(
        "cpms-proxy: routing for {} node(s) on {}, admin on {}",
        pairs.len(),
        proxy.addr(),
        admin.addr()
    );

    // Serve until whoever holds our stdin pipe drops it, someone types
    // `shutdown`, or the admin socket asks for it.
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::BufRead::read_line(&mut stdin.lock(), &mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) if line.trim() == "shutdown" => break,
                Ok(_) => {}
            }
        }
        let _ = stop_tx.send("stdin closed");
    });
    let reason = stop_rx.recv().unwrap_or("stop channel closed");
    eprintln!("cpms-proxy: shutting down ({reason})");
    let mut proxy = proxy;
    let mut admin = admin;
    admin.stop();
    proxy.shutdown();
}

/// Handles one admin command: chaos verbs against the fault switches,
/// daemon verbs, and everything else through the shell.
fn dispatch(
    shell: &mut Shell,
    switches: &[Arc<FaultSwitch>],
    stop: &mpsc::Sender<&'static str>,
    cmd: &str,
) -> AdminResponse {
    let words: Vec<&str> = cmd.split_whitespace().collect();
    match words.as_slice() {
        ["fault", node, rest @ ..] => match switch_for(switches, node) {
            Ok((node, switch)) => match rest {
                ["loss", rate] | ["loss", rate, _] => {
                    let Ok(rate) = rate.parse::<f64>() else {
                        return AdminResponse::err(format!("bad loss rate {rate:?}"));
                    };
                    let seed = rest
                        .get(2)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(0xC405_0000 + u64::from(node.0));
                    switch.arm(FaultPlan::lossy(seed, rate));
                    AdminResponse::ok(format!("armed {rate} loss on {node}"))
                }
                ["poison"] | ["poison", _] => {
                    let seed = rest
                        .get(1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(0xBAD_0000 + u64::from(node.0));
                    switch.arm(FaultPlan::poisoned(seed));
                    AdminResponse::ok(format!("armed poison on {node}"))
                }
                _ => AdminResponse::err("usage: fault <node> loss <rate> [seed] | poison [seed]"),
            },
            Err(e) => AdminResponse::err(e),
        },
        ["partition", node] => match switch_for(switches, node) {
            Ok((node, switch)) => {
                switch.set_partitioned(true);
                AdminResponse::ok(format!("partitioned {node}"))
            }
            Err(e) => AdminResponse::err(e),
        },
        ["heal", node] => match switch_for(switches, node) {
            Ok((node, switch)) => {
                switch.disarm();
                switch.set_partitioned(false);
                AdminResponse::ok(format!("healed {node}"))
            }
            Err(e) => AdminResponse::err(e),
        },
        ["metrics"] => AdminResponse::ok(shell.console().controller().metrics_json()),
        ["traces"] => AdminResponse::ok(shell.console().controller().metrics().spans().to_json()),
        ["series"] => {
            AdminResponse::ok(shell.console().controller().metrics().series().map_or_else(
                || "{\"scrape_seq\":0,\"uptime_micros\":0,\"samples\":0,\"series\":{}}".to_string(),
                |recorder| recorder.to_json(),
            ))
        }
        ["generation"] => AdminResponse::ok(
            shell
                .console()
                .controller()
                .publisher()
                .generation()
                .to_string(),
        ),
        ["shutdown"] => {
            let _ = stop.send("admin shutdown");
            AdminResponse::ok("shutting down")
        }
        _ => match shell.execute(cmd) {
            ShellOutcome::Output(out) => AdminResponse::ok(out),
            ShellOutcome::Failure(out) => AdminResponse::err(out),
            ShellOutcome::Quit => {
                let _ = stop.send("admin quit");
                AdminResponse::ok("shutting down")
            }
        },
    }
}

/// Self-contained high-concurrency data-plane check (`cpms-proxy
/// --smoke`): spins an in-process origin + proxy, then asserts the three
/// behaviours the event-driven data plane promises — (1) hundreds of
/// churning keep-alive connections all served correctly on a fixed
/// worker count, (2) connections over the global cap shed with an
/// immediate 503 at accept, (3) a tenant over its per-prefix cap shed
/// with a 503 while other tenants keep flowing.
fn smoke() {
    use cpms_httpd::client::HttpClient;
    use cpms_httpd::loadgen::{self, LoadConfig};
    use cpms_httpd::{OriginServer, SiteContent};
    use cpms_model::{ContentId, ContentKind, UrlPath};
    use cpms_urltable::{TablePublisher, UrlEntry, UrlTable};
    use std::io::Read as _;
    use std::net::TcpStream;
    use std::time::{Duration, Instant};

    let paths: Vec<String> = (0..16)
        .map(|i| format!("/obj/{i}.html"))
        .chain(std::iter::once("/t0/page.html".to_string()))
        .collect();
    let mut site = SiteContent::new();
    for path in &paths {
        site.add_static(path, format!("body of {path}").into_bytes());
    }
    let origin = OriginServer::start(NodeId(0), site).expect("smoke origin");
    let table = {
        let mut t = UrlTable::new();
        for (i, path) in paths.iter().enumerate() {
            let url: UrlPath = path.parse().expect("literal path");
            t.insert(
                url,
                UrlEntry::new(ContentId(i as u32), ContentKind::StaticHtml, 64)
                    .with_locations([NodeId(0)]),
            )
            .expect("insert smoke path");
        }
        t
    };

    // --- stage 1: 400 churning keep-alive connections over 2 workers.
    let registry = Arc::new(MetricsRegistry::new());
    let mut proxy = ContentAwareProxy::start_with_config(
        TablePublisher::new(table.clone()),
        vec![origin.addr()],
        Arc::clone(&registry),
        ProxyConfig {
            workers: 2,
            prefork: 4,
            max_conns: 2048,
            tenant_caps: vec![TenantCap {
                prefix: "t0".to_string(),
                max_conns: 4,
            }],
            ..ProxyConfig::default()
        },
    )
    .expect("smoke proxy");
    let urls: Vec<UrlPath> = (0..16)
        .map(|i| format!("/obj/{i}.html").parse().expect("literal path"))
        .collect();
    let report = loadgen::run(
        proxy.addr(),
        &urls,
        &LoadConfig {
            connections: 400,
            requests_per_conn: 4,
            pace: Some(Duration::from_millis(500)),
            churn_every: 2,
        },
    )
    .expect("smoke loadgen");
    assert_eq!(report.completed, 1600, "every request answered: {report:?}");
    assert_eq!(report.errors, 0, "no connection failures: {report:?}");
    assert_eq!(report.non_200, 0, "all responses 200: {report:?}");
    assert!(report.reconnects >= 400, "churn exercised the accept path");
    let snapshot = registry.snapshot();
    assert_eq!(
        snapshot.gauge("reactor_workers"),
        Some(2),
        "fixed worker count"
    );
    assert_eq!(
        snapshot.counter("proxy_conn_rejected_total"),
        Some(0),
        "nothing shed below the cap"
    );
    eprintln!(
        "smoke: 400 churning connections, 1600 requests relayed, p99={}us on 2 workers",
        report.percentile_ns(0.99) / 1_000
    );

    // --- stage 2: overload sheds fast 503s at accept.
    let overload_registry = Arc::new(MetricsRegistry::new());
    let mut small = ContentAwareProxy::start_with_config(
        TablePublisher::new(table),
        vec![origin.addr()],
        Arc::clone(&overload_registry),
        ProxyConfig {
            workers: 1,
            prefork: 2,
            max_conns: 32,
            ..ProxyConfig::default()
        },
    )
    .expect("smoke overload proxy");
    let idle: Vec<TcpStream> = (0..32)
        .map(|_| TcpStream::connect(small.addr()).expect("idle conn"))
        .collect();
    let deadline = Instant::now() + Duration::from_secs(5);
    while small.active_connections() < 32 {
        assert!(Instant::now() < deadline, "idle conns never all adopted");
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut shed = TcpStream::connect(small.addr()).expect("over-cap conn");
    shed.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    let mut refusal = Vec::new();
    shed.read_to_end(&mut refusal).expect("read 503");
    let refusal = String::from_utf8_lossy(&refusal);
    assert!(
        refusal.starts_with("HTTP/1.1 503"),
        "over-cap connection gets an immediate 503, got: {refusal:?}"
    );
    assert!(
        overload_registry
            .snapshot()
            .counter("proxy_conn_rejected_total")
            .unwrap_or(0)
            >= 1,
        "shed connection counted"
    );
    drop(idle);
    eprintln!("smoke: connection 33 of a 32-cap proxy shed with an immediate 503");

    // --- stage 3: per-tenant cap sheds the 5th /t0 connection only.
    let mut held: Vec<HttpClient> = Vec::new();
    for _ in 0..4 {
        let mut client = HttpClient::connect(proxy.addr()).expect("tenant conn");
        let resp = client.get("/t0/page.html").expect("tenant request");
        assert_eq!(resp.status, 200, "under-cap tenant requests flow");
        held.push(client);
    }
    let mut fifth = HttpClient::connect(proxy.addr()).expect("tenant conn 5");
    let resp = fifth.get("/t0/page.html").expect("over-cap response");
    assert_eq!(resp.status, 503, "tenant over its cap is shed");
    let mut other = HttpClient::connect(proxy.addr()).expect("other-tenant conn");
    let resp = other.get("/obj/0.html").expect("other-tenant request");
    assert_eq!(resp.status, 200, "other tenants unaffected");
    assert_eq!(
        registry
            .snapshot()
            .counter("proxy_conn_tenant_rejected_total"),
        Some(1),
        "tenant shed counted once"
    );
    drop(held);
    eprintln!("smoke: tenant cap held at 4 concurrent connections, 5th shed with 503");

    small.shutdown();
    proxy.shutdown();
    println!("smoke ok: relay under churn, overload shedding, tenant caps");
}

/// Resolves a `<node>` argument (`2` or `n2`) to its fault switch.
fn switch_for<'a>(
    switches: &'a [Arc<FaultSwitch>],
    raw: &str,
) -> Result<(NodeId, &'a Arc<FaultSwitch>), String> {
    let digits = raw.strip_prefix('n').unwrap_or(raw);
    let id: u16 = digits
        .parse()
        .map_err(|_| format!("bad node {raw:?} (use e.g. `2` or `n2`)"))?;
    match switches.get(usize::from(id)) {
        Some(switch) => Ok((NodeId(id), switch)),
        None => Err(format!("no node {raw} in this topology")),
    }
}
