//! The per-node broker as a standalone TCP daemon — the paper's §3.1
//! "standalone … daemon process on each backend server", networked.
//!
//! Usage:
//!   cpms-broker <ADDR> \[NODE\] \[DISK_MB\] \[--store DIR\] \[--http\]
//!               \[--record-interval MS\]
//!     Binds a broker for node NODE (default 0) with a DISK_MB disk
//!     (default 256) on ADDR (e.g. 127.0.0.1:7070; port 0 picks an
//!     ephemeral port). Prints the bound address on stdout and serves
//!     until stdin closes (or a `shutdown` line arrives) — so an
//!     orchestrator that spawned it with a piped stdin reclaims the
//!     process just by dropping the pipe. A controller elsewhere
//!     reaches it with `Broker::connect(node, addr)`.
//!
//!     With `--store DIR` the broker keeps object bytes in a durable
//!     on-disk content store rooted at DIR: shipped replicas survive a
//!     restart, and on startup any objects already committed under DIR
//!     are adopted back into the broker's ledger. Without it, content
//!     lives in memory and dies with the process.
//!
//!     With `--http` the broker also runs a co-located origin HTTP
//!     server backed by the same content store — the "back-end web
//!     server" of the paper's node, serving whatever replicas the
//!     management plane ships here. Its address is printed as a second
//!     stdout line `http <ADDR>`.
//!
//!     `--record-interval MS` starts the process's flight recorder: a
//!     sampler snapshots the metrics registry every MS milliseconds
//!     into a bounded in-memory time series, exported by the co-located
//!     origin at `/_cpms/series.json`. Default 100; `0` disables.
//!
//!   cpms-broker --smoke
//!     Self-test for CI: binds an ephemeral loopback daemon, exercises
//!     agent RPCs over real TCP — including through a fault-injecting
//!     transport at 20% frame loss and a poisoned (truncating)
//!     transport — and exits 0 if the wire layer held up.

use cpms_mgmt::store::{NodeStore, StoredFile};
use cpms_mgmt::{AgentError, AgentOutput, Broker};
use cpms_model::{ContentId, NodeId, UrlPath};
use cpms_obs::MetricsRegistry;
use cpms_wire::{FaultPlan, FaultyTransport, TcpTransport, Transport, WireError};
use std::net::SocketAddr;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--smoke") => smoke(),
        Some(addr) => daemon(addr, &args[1..]),
        None => {
            eprintln!(
                "usage: cpms-broker <ADDR> [NODE] [DISK_MB] [--store DIR] [--http] [--record-interval MS] | cpms-broker --smoke"
            );
            std::process::exit(2);
        }
    }
}

fn daemon(addr: &str, rest: &[String]) {
    let addr: SocketAddr = addr.parse().expect("ADDR must be host:port");
    let mut store_dir: Option<String> = None;
    let mut serve_http = false;
    let mut record_interval_ms: u64 = 100;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if arg == "--store" {
            store_dir = Some(it.next().expect("--store needs a directory").clone());
        } else if arg == "--http" {
            serve_http = true;
        } else if arg == "--record-interval" {
            record_interval_ms = it
                .next()
                .expect("--record-interval needs milliseconds")
                .parse()
                .expect("--record-interval must be a number of milliseconds");
        } else {
            positional.push(arg);
        }
    }
    let node: u16 = positional
        .first()
        .map(|s| s.parse().expect("NODE must be a number"))
        .unwrap_or(0);
    let disk_mb: u64 = positional
        .get(1)
        .map(|s| s.parse().expect("DISK_MB must be a number"))
        .unwrap_or(256);
    let meta = NodeStore::new(NodeId(node), disk_mb << 20);
    let state = match &store_dir {
        Some(dir) => {
            let content = cpms_store::ContentStore::open(NodeId(node), dir.as_str(), disk_mb << 20)
                .expect("open on-disk content store");
            cpms_mgmt::BrokerState::with_content(meta, Arc::new(content))
        }
        None => cpms_mgmt::BrokerState::from_meta(meta),
    };
    // Grab the content store before the broker takes ownership of the
    // state: the co-located origin serves the same bytes the management
    // plane ships here.
    let content = Arc::clone(state.content());
    // One registry (and one span collector) for the whole process: broker
    // RPC spans and co-located origin spans land on the same trace
    // surface, exported at the origin's `/_cpms/trace.json`.
    let registry = Arc::new(MetricsRegistry::new());
    registry.spans().set_process(&format!("broker-n{node}"));
    // The flight recorder samples this registry in the background; it
    // is dropped (stopping its thread) on the shutdown path below.
    let mut sampler = (record_interval_ms > 0).then(|| {
        cpms_obs::Sampler::start(
            &registry,
            std::time::Duration::from_millis(record_interval_ms),
        )
    });
    let mut handle = Broker::bind_observed(addr, state, Arc::clone(registry.spans()))
        .expect("bind broker listener");
    // stdout line 1 carries exactly the bound address so scripts can
    // capture it.
    println!("{}", handle.addr().expect("tcp daemon has an address"));
    let mut origin = if serve_http {
        let origin = cpms_httpd::OriginServer::start_with_registry(
            NodeId(node),
            cpms_httpd::SiteContent::new().with_backing(content),
            Arc::clone(&registry),
        )
        .expect("start co-located origin server");
        // stdout line 2 announces the origin's address.
        println!("http {}", origin.addr());
        Some(origin)
    } else {
        None
    };
    use std::io::Write as _;
    std::io::stdout().flush().expect("flush ready lines");
    eprintln!(
        "cpms-broker: node n{node}, {disk_mb} MB disk, {} content, serving on {}{}",
        match &store_dir {
            Some(dir) => format!("durable ({dir})"),
            None => "in-memory".to_string(),
        },
        handle.addr().expect("tcp daemon has an address"),
        match &origin {
            Some(o) => format!(", http on {}", o.addr()),
            None => String::new(),
        }
    );
    // Serve until the operator (or the orchestrator holding our stdin
    // pipe) tells us to stop: an explicit `shutdown` line or EOF.
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match std::io::BufRead::read_line(&mut stdin.lock(), &mut line) {
            Ok(0) => break,
            Ok(_) if line.trim() == "shutdown" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    if let Some(s) = sampler.as_mut() {
        s.stop();
    }
    if let Some(o) = origin.as_mut() {
        o.shutdown();
    }
    handle.shutdown();
    eprintln!("cpms-broker: node n{node} shut down cleanly");
}

fn path(s: &str) -> UrlPath {
    s.parse().expect("literal path")
}

fn store_file(handle: &cpms_mgmt::BrokerHandle, p: &str, id: u32) {
    handle
        .dispatch(cpms_mgmt::agent::StoreFile {
            path: path(p),
            file: StoredFile {
                content: ContentId(id),
                size: 64,
                version: 0,
            },
            overwrite: false,
        })
        .expect("store over TCP");
}

fn smoke() {
    // 1. A real TCP daemon on loopback; plain RPCs must round-trip.
    let mut host = Broker::bind(
        "127.0.0.1:0".parse().expect("literal addr"),
        NodeStore::new(NodeId(0), 1 << 20),
    )
    .expect("bind ephemeral broker");
    let addr = host.addr().expect("tcp daemon has an address");
    store_file(&host, "/smoke/a.html", 1);
    store_file(&host, "/smoke/b.html", 2);
    match host
        .dispatch(cpms_mgmt::agent::StatusProbe)
        .expect("status over TCP")
    {
        AgentOutput::Status { files, .. } => assert_eq!(files, 2, "both stores landed"),
        other => panic!("unexpected status reply {other:?}"),
    }
    eprintln!("smoke: plain TCP RPCs ok ({addr})");

    // 2. A second client whose frames cross a lossy wire: retry/backoff
    //    must ride through 20% injected frame loss with zero failures.
    let lossy: Arc<dyn Transport> = Arc::new(FaultyTransport::new(
        Arc::new(TcpTransport::new(addr)),
        FaultPlan::lossy(0xC0FF_EE00, 0.20),
    ));
    let flaky = cpms_wire::Client::new(lossy).with_retry(cpms_wire::RetryPolicy {
        max_attempts: 8,
        ..cpms_wire::RetryPolicy::default()
    });
    let mut successes = 0u32;
    for _ in 0..50 {
        // StatusProbe is idempotent, so at-least-once retry is safe.
        let reply: cpms_mgmt::AgentReply = flaky
            .call(&cpms_mgmt::AgentRequest::Status(
                cpms_mgmt::agent::StatusProbe,
            ))
            .expect("retry must absorb 20% loss");
        let out = Result::from(reply).expect("probe itself cannot fail");
        assert!(matches!(out, AgentOutput::Status { files: 2, .. }));
        successes += 1;
    }
    let stats = flaky.stats();
    assert_eq!(successes, 50);
    assert!(stats.retries > 0, "loss plan must have forced retries");
    eprintln!(
        "smoke: 50/50 RPCs through 20% loss ({} retries, {} timeouts)",
        stats.retries, stats.timeouts
    );

    // 3. A poisoned wire truncates every frame: the client must see a
    //    typed error (never a hang or panic), and the daemon must survive.
    let poisoned: Arc<dyn Transport> = Arc::new(FaultyTransport::new(
        Arc::new(TcpTransport::new(addr)),
        FaultPlan::poisoned(0xDEAD_BEEF),
    ));
    let doomed = cpms_wire::Client::new(poisoned).with_retry(cpms_wire::RetryPolicy::no_retry());
    let err = doomed
        .call::<_, cpms_mgmt::AgentReply>(&cpms_mgmt::AgentRequest::List(
            cpms_mgmt::agent::ListFiles,
        ))
        .expect_err("truncated frames cannot succeed");
    assert!(
        matches!(
            err.root(),
            WireError::Truncated { .. } | WireError::Closed | WireError::Io { .. }
        ),
        "poisoned frame must surface a typed wire error, got {err:?}"
    );
    // The daemon shrugged it off: a clean client still works.
    let remote = Broker::connect(NodeId(0), addr);
    match remote.dispatch(cpms_mgmt::agent::ListFiles) {
        Ok(AgentOutput::Listing(l)) => assert_eq!(l.len(), 2),
        other => panic!("daemon should have survived poison, got {other:?}"),
    }
    eprintln!(
        "smoke: poisoned frame surfaced typed error ({})",
        err.root()
    );

    // 4. Shutdown returns the final store state over the same wire.
    let store = host.shutdown().expect("final state");
    assert_eq!(store.len(), 2);
    let err = remote
        .dispatch(cpms_mgmt::agent::StatusProbe)
        .expect_err("daemon is gone");
    assert!(matches!(err, AgentError::BrokerUnavailable(NodeId(0))));
    eprintln!("smoke: shutdown clean; networked broker smoke PASSED");
}
