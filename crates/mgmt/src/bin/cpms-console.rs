//! The administrator's remote console as a CLI (the paper's §3 remote
//! console, minus the Java applet).
//!
//! Usage:
//!   cpms-console \[--watch\] \[NODES\] \[DISK_MB\]
//!
//! Starts NODES broker threads (default 4) with DISK_MB disks (default
//! 256) and reads commands from stdin — interactively or from a script:
//!
//!   echo "publish /a.html html 1024 0,1
//!         ls
//!         audit" | cargo run -p cpms-mgmt --bin cpms-console
//!
//! With `--watch` the console instead takes a one-shot observability
//! pass: it installs a flight recorder + SLO watchdog on the cluster's
//! registry, samples briefly, renders the merged `top` and `health`
//! views, and exits — nonzero when `health` reports a breach or an
//! unreachable node. The same views are available interactively as the
//! `top` and `health` shell commands.

use cpms_mgmt::console::RemoteConsole;
use cpms_mgmt::shell::{Shell, ShellOutcome};
use cpms_mgmt::{Cluster, Controller};
use cpms_obs::{Sampler, SloRule, SloWatchdog};
use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Duration;

/// `--watch` sampling interval; the pass waits a few rounds so rates
/// and SLO windows have at least two points to difference.
const WATCH_INTERVAL: Duration = Duration::from_millis(50);

/// SLO the one-shot watch pass evaluates: the management plane should
/// not be producing op errors.
const WATCH_SLO: &str = "mgmt_op_errors_total rate <= 0 over 5s";

fn main() {
    let mut watch = false;
    let mut positional: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--watch" {
            watch = true;
        } else {
            positional.push(arg);
        }
    }
    let mut args = positional.into_iter();
    let nodes: usize = args
        .next()
        .map(|s| s.parse().expect("NODES must be a number"))
        .unwrap_or(4);
    let disk_mb: u64 = args
        .next()
        .map(|s| s.parse().expect("DISK_MB must be a number"))
        .unwrap_or(256);

    eprintln!("cpms-console: {nodes} broker(s), {disk_mb} MB disks. `help` for commands.");
    let console = RemoteConsole::new(Controller::new(Cluster::start(nodes, disk_mb << 20)));
    let mut shell = Shell::new(console);
    if watch {
        watch_once(shell);
        return;
    }

    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let interactive = false; // keep prompts off stdout so scripts stay clean
    let mut failures = 0u32;
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        match shell.execute(&line) {
            ShellOutcome::Output(out) => {
                if !out.is_empty() {
                    let _ = writeln!(stdout, "{out}");
                }
            }
            ShellOutcome::Failure(out) => {
                failures += 1;
                if !out.is_empty() {
                    let _ = writeln!(stdout, "{out}");
                }
            }
            ShellOutcome::Quit => break,
        }
        if interactive {
            let _ = write!(stdout, "> ");
            let _ = stdout.flush();
        }
    }
    shell.shutdown();
    if failures > 0 {
        // Health commands found drift or down nodes: scripts and CI
        // must see that as a failed run, not a clean exit.
        eprintln!("cpms-console: {failures} health check(s) failed");
        std::process::exit(1);
    }
}

/// One-shot `--watch` pass: recorder + watchdog on, a few sampling
/// rounds, then the merged `top` and `health` views on stdout.
fn watch_once(mut shell: Shell) {
    let registry = Arc::clone(shell.console().controller().metrics());
    SloWatchdog::install(
        &registry,
        vec![SloRule::parse(WATCH_SLO).expect("literal SLO rule parses")],
    );
    let mut sampler = Sampler::start(&registry, WATCH_INTERVAL);
    std::thread::sleep(WATCH_INTERVAL * 4);
    let mut stdout = std::io::stdout();
    let mut sick = false;
    for command in ["top", "health"] {
        match shell.execute(command) {
            ShellOutcome::Output(out) => {
                let _ = writeln!(stdout, "{out}");
            }
            ShellOutcome::Failure(out) => {
                sick = true;
                let _ = writeln!(stdout, "{out}");
            }
            ShellOutcome::Quit => unreachable!("top/health never quit"),
        }
    }
    sampler.stop();
    shell.shutdown();
    if sick {
        eprintln!("cpms-console: watch pass found the cluster unhealthy");
        std::process::exit(1);
    }
    eprintln!("cpms-console: watch pass clean");
}
