//! The administrator's remote console as a CLI (the paper's §3 remote
//! console, minus the Java applet).
//!
//! Usage:
//!   cpms-console \[NODES\] \[DISK_MB\]
//!
//! Starts NODES broker threads (default 4) with DISK_MB disks (default
//! 256) and reads commands from stdin — interactively or from a script:
//!
//!   echo "publish /a.html html 1024 0,1
//!         ls
//!         audit" | cargo run -p cpms-mgmt --bin cpms-console

use cpms_mgmt::console::RemoteConsole;
use cpms_mgmt::shell::{Shell, ShellOutcome};
use cpms_mgmt::{Cluster, Controller};
use std::io::{BufRead, Write};

fn main() {
    let mut args = std::env::args().skip(1);
    let nodes: usize = args
        .next()
        .map(|s| s.parse().expect("NODES must be a number"))
        .unwrap_or(4);
    let disk_mb: u64 = args
        .next()
        .map(|s| s.parse().expect("DISK_MB must be a number"))
        .unwrap_or(256);

    eprintln!("cpms-console: {nodes} broker(s), {disk_mb} MB disks. `help` for commands.");
    let console = RemoteConsole::new(Controller::new(Cluster::start(nodes, disk_mb << 20)));
    let mut shell = Shell::new(console);

    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let interactive = false; // keep prompts off stdout so scripts stay clean
    let mut failures = 0u32;
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        match shell.execute(&line) {
            ShellOutcome::Output(out) => {
                if !out.is_empty() {
                    let _ = writeln!(stdout, "{out}");
                }
            }
            ShellOutcome::Failure(out) => {
                failures += 1;
                if !out.is_empty() {
                    let _ = writeln!(stdout, "{out}");
                }
            }
            ShellOutcome::Quit => break,
        }
        if interactive {
            let _ = write!(stdout, "> ");
            let _ = stdout.flush();
        }
    }
    shell.shutdown();
    if failures > 0 {
        // Health commands found drift or down nodes: scripts and CI
        // must see that as a failed run, not a clean exit.
        eprintln!("cpms-console: {failures} health check(s) failed");
        std::process::exit(1);
    }
}
