//! Content-shipping smoke: the store + ship pipeline end to end over
//! real TCP, through a lossy wire, with anti-entropy repair.
//!
//! Usage:
//!   cpms-ship --smoke
//!     Binds three broker daemons on loopback whose client transports
//!     cross a fault-injecting wire at 20% frame loss, publishes a
//!     multi-chunk corpus through the controller's shipping pipeline,
//!     then injects three kinds of drift (a deleted replica, an orphan
//!     object, a stale copy) and proves the anti-entropy auditor
//!     repairs all of it. Exits 0 only if every byte arrived intact
//!     (zero checksum rejections) and the final audit is clean.

use cpms_mgmt::store::NodeStore;
use cpms_mgmt::{AntiEntropyAuditor, BrokerState, Cluster, Controller};
use cpms_model::{ContentId, ContentKind, NodeId, Priority, UrlPath};
use cpms_store::{fnv64, synthetic_body, ObjectMeta, ShipPort, ShipReply, ShipRequest, Shipper};
use cpms_wire::{FaultPlan, FaultyTransport, Transport};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--smoke") => smoke(),
        _ => {
            eprintln!("usage: cpms-ship --smoke");
            std::process::exit(2);
        }
    }
}

fn path(s: &str) -> UrlPath {
    s.parse().expect("literal path")
}

const LOSS: f64 = 0.20;

fn smoke() {
    // 1. Three TCP daemons; every controller-side frame crosses a lossy
    //    wire. Loss is injected client-side so the daemons themselves
    //    stay honest.
    let handles: Vec<_> = (0..3u16)
        .map(|n| {
            let state = BrokerState::from_meta(NodeStore::new(NodeId(n), 1 << 20));
            bind_lossy_broker(n, state)
        })
        .collect();
    let mut controller = Controller::new(Cluster::from_handles(handles));
    eprintln!(
        "smoke: 3 TCP brokers up behind {}% frame loss",
        LOSS * 100.0
    );

    // 2. Publish a corpus through the shipping pipeline: multi-chunk
    //    bodies (4 KiB chunks), multiple replicas, all through the loss.
    let corpus: &[(&str, u64, &[u16])] = &[
        ("/site/index.html", 2_048, &[0, 1]),
        ("/site/logo.gif", 10_000, &[0, 1, 2]),
        ("/site/video/intro.mpg", 50_000, &[2]),
        ("/site/docs/paper.pdf", 17_000, &[1, 2]),
    ];
    for (i, (p, size, nodes)) in corpus.iter().enumerate() {
        let nodes: Vec<NodeId> = nodes.iter().map(|&n| NodeId(n)).collect();
        controller
            .publish(
                &path(p),
                ContentId(i as u32),
                ContentKind::StaticHtml,
                *size,
                Priority::Normal,
                &nodes,
            )
            .expect("publish through lossy wire");
    }
    controller
        .replicate(&path("/site/video/intro.mpg"), NodeId(0))
        .expect("replicate through lossy wire");
    eprintln!("smoke: corpus published (4 objects, 9 replicas)");

    // 3. Every committed byte must have survived the loss intact: the
    //    per-chunk checksums reject corruption, and plain loss only
    //    costs retries, never integrity.
    let mut rejected = 0_u64;
    for n in 0..3u16 {
        let handle = controller.cluster().broker(NodeId(n)).expect("node exists");
        match handle.ship(&ShipRequest::Stat).expect("stat over TCP") {
            ShipReply::Stats(s) => rejected += s.rejected_chunks,
            other => panic!("unexpected stat reply {other:?}"),
        }
    }
    assert_eq!(
        rejected, 0,
        "lossy (not corrupting) wire must reject nothing"
    );
    let auditor = AntiEntropyAuditor::new();
    let report = auditor.audit(&controller);
    assert!(
        report.is_clean(),
        "fresh corpus must audit clean: {report:?}"
    );
    eprintln!("smoke: audit clean after publish, 0 rejected chunks");

    // 4. Inject drift behind the URL table's back.
    //    a) n1 loses its copy of /site/index.html (missing object).
    let victim = path("/site/index.html");
    match controller
        .cluster()
        .broker(NodeId(1))
        .expect("n1 exists")
        .ship(&ShipRequest::Delete {
            path: victim.clone(),
        })
        .expect("delete over TCP")
    {
        ShipReply::Deleted(_) => {}
        other => panic!("unexpected delete reply {other:?}"),
    }
    //    b) n0 grows an object the table never routed to it (orphan).
    let shipper = Shipper::new();
    let orphan = path("/rogue/leftover.html");
    let orphan_body = synthetic_body(ContentId(99), 600);
    shipper
        .push(
            controller.cluster().broker(NodeId(0)).expect("n0 exists"),
            &orphan,
            ContentId(99),
            0,
            &orphan_body,
            false,
        )
        .expect("orphan ship");
    //    c) n2 ends up with different bytes than the table's checksum
    //       (a stale replica).
    let stale = path("/site/docs/paper.pdf");
    let wrong = synthetic_body(ContentId(77), 17_000);
    shipper
        .push_meta(
            controller.cluster().broker(NodeId(2)).expect("n2 exists"),
            &stale,
            ObjectMeta {
                content: ContentId(3),
                size: wrong.len() as u64,
                checksum: fnv64(&wrong),
                chunk_size: cpms_store::DEFAULT_CHUNK_SIZE,
                version: 0,
            },
            &wrong,
            true,
        )
        .expect("stale overwrite ship");
    let report = auditor.audit(&controller);
    assert_eq!(report.drift_count(), 3, "three injected faults: {report:?}");
    eprintln!("smoke: injected drift detected — {}", report.summary());

    // 5. Repair must converge: re-ship the missing copy from a healthy
    //    replica, delete the orphan, overwrite the stale bytes.
    let repaired = auditor.repair(&mut controller);
    assert_eq!(repaired.repaired, 3, "all drift repaired: {repaired:?}");
    let mut clean = false;
    for _ in 0..3 {
        if auditor.audit(&controller).is_clean() {
            clean = true;
            break;
        }
    }
    assert!(clean, "post-repair audit must converge to clean");
    eprintln!("smoke: anti-entropy repaired 3/3, audit converged clean");

    controller.shutdown();
    eprintln!("smoke: content shipping over lossy TCP PASSED");
}

/// Binds one TCP broker whose *client* transport is wrapped in a lossy
/// fault plan (distinct seed per node).
fn bind_lossy_broker(n: u16, state: BrokerState) -> cpms_mgmt::BrokerHandle {
    cpms_mgmt::Broker::bind_wrapped(
        "127.0.0.1:0".parse().expect("literal addr"),
        state,
        |transport: Arc<dyn Transport>| {
            Arc::new(FaultyTransport::new(
                transport,
                FaultPlan::lossy(0x5E1F_0000 + u64::from(n), LOSS),
            )) as Arc<dyn Transport>
        },
    )
    .expect("bind lossy broker")
}
