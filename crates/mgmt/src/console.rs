//! The remote console: the administrator-facing face of the management
//! system.
//!
//! > "We first extended the remote console to produce a single, coherent
//! > view of the Web document tree, comprised of portions that actually
//! > reside on several different server nodes. The remote console provides
//! > a file manager interface containing methods for inserting, deleting,
//! > and renaming files or directories."
//!
//! The paper's console is a Java-applet GUI; here it is the same API
//! surface as a library type, suitable for a CLI or any front end.

use crate::controller::{Controller, MgmtError};
use cpms_model::{ContentId, ContentKind, NodeId, Priority, UrlPath};
use serde::{Deserialize, Serialize};

/// One row of the administrator's coherent tree view.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeEntry {
    /// The object's path in the logical document tree.
    pub path: UrlPath,
    /// Its content identity.
    pub content: ContentId,
    /// Its kind.
    pub kind: ContentKind,
    /// Its size in bytes.
    pub size: u64,
    /// Its priority.
    pub priority: Priority,
    /// Every node holding a copy — the physical layout the view hides.
    pub locations: Vec<NodeId>,
    /// Accumulated request hits (from the distributor).
    pub hits: u64,
}

/// The file-manager interface over a [`Controller`].
#[derive(Debug)]
pub struct RemoteConsole {
    controller: Controller,
}

impl RemoteConsole {
    /// Wraps a controller.
    pub fn new(controller: Controller) -> Self {
        RemoteConsole { controller }
    }

    /// Access to the underlying controller (for auto-replication wiring).
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Mutable access to the underlying controller.
    pub fn controller_mut(&mut self) -> &mut Controller {
        &mut self.controller
    }

    /// The single, coherent view of the whole document tree, sorted by
    /// path. "…makes the administrator oblivious of the presence of
    /// content segregation on multiple nodes."
    pub fn tree_view(&self) -> Vec<TreeEntry> {
        let mut rows: Vec<TreeEntry> = self
            .controller
            .table()
            .iter()
            .map(|(path, e)| TreeEntry {
                path,
                content: e.content(),
                kind: e.kind(),
                size: e.size_bytes(),
                priority: e.priority(),
                locations: e.locations().to_vec(),
                hits: e.hits(),
            })
            .collect();
        rows.sort_by(|a, b| a.path.cmp(&b.path));
        rows
    }

    /// The view restricted to one directory subtree.
    pub fn list_dir(&self, prefix: &UrlPath) -> Vec<TreeEntry> {
        self.tree_view()
            .into_iter()
            .filter(|r| r.path.starts_with(prefix))
            .collect()
    }

    /// Inserts a new file, assigning it to the given nodes.
    ///
    /// # Errors
    ///
    /// See [`Controller::publish`].
    pub fn publish(
        &mut self,
        path: &UrlPath,
        content: ContentId,
        kind: ContentKind,
        size: u64,
        nodes: &[NodeId],
    ) -> Result<(), MgmtError> {
        self.controller
            .publish(path, content, kind, size, Priority::Normal, nodes)
    }

    /// Inserts a new file with an explicit priority (critical content can
    /// then be placed or replicated preferentially).
    ///
    /// # Errors
    ///
    /// See [`Controller::publish`].
    pub fn publish_with_priority(
        &mut self,
        path: &UrlPath,
        content: ContentId,
        kind: ContentKind,
        size: u64,
        priority: Priority,
        nodes: &[NodeId],
    ) -> Result<(), MgmtError> {
        self.controller
            .publish(path, content, kind, size, priority, nodes)
    }

    /// Deletes a file everywhere.
    ///
    /// # Errors
    ///
    /// See [`Controller::delete`].
    pub fn delete(&mut self, path: &UrlPath) -> Result<(), MgmtError> {
        self.controller.delete(path)
    }

    /// Renames a file or directory subtree.
    ///
    /// # Errors
    ///
    /// See [`Controller::rename`].
    pub fn rename(&mut self, from: &UrlPath, to: &UrlPath) -> Result<(), MgmtError> {
        self.controller.rename(from, to)
    }

    /// Assigns an additional replica ("the administrator also can assign
    /// some specific content to multiple server nodes for fault tolerance
    /// or high availability").
    ///
    /// # Errors
    ///
    /// See [`Controller::replicate`].
    pub fn replicate(&mut self, path: &UrlPath, node: NodeId) -> Result<(), MgmtError> {
        self.controller.replicate(path, node)
    }

    /// Removes the copy on one node.
    ///
    /// # Errors
    ///
    /// See [`Controller::offload`].
    pub fn offload(&mut self, path: &UrlPath, node: NodeId) -> Result<(), MgmtError> {
        self.controller.offload(path, node)
    }

    /// Shuts the cluster down, consuming the console.
    pub fn shutdown(mut self) {
        self.controller.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::Cluster;

    fn p(s: &str) -> UrlPath {
        s.parse().unwrap()
    }

    fn console(nodes: usize) -> RemoteConsole {
        RemoteConsole::new(Controller::new(Cluster::start(nodes, 1 << 20)))
    }

    #[test]
    fn tree_view_is_sorted_and_complete() {
        let mut c = console(2);
        c.publish(
            &p("/b.html"),
            ContentId(2),
            ContentKind::StaticHtml,
            10,
            &[NodeId(1)],
        )
        .unwrap();
        c.publish(
            &p("/a.html"),
            ContentId(1),
            ContentKind::StaticHtml,
            10,
            &[NodeId(0)],
        )
        .unwrap();
        let view = c.tree_view();
        assert_eq!(view.len(), 2);
        assert_eq!(view[0].path, p("/a.html"));
        assert_eq!(view[1].path, p("/b.html"));
        c.shutdown();
    }

    #[test]
    fn list_dir_filters_subtree() {
        let mut c = console(1);
        for (i, path) in ["/img/a.gif", "/img/b.gif", "/doc/c.html"]
            .iter()
            .enumerate()
        {
            c.publish(
                &p(path),
                ContentId(i as u32),
                ContentKind::Image,
                5,
                &[NodeId(0)],
            )
            .unwrap();
        }
        assert_eq!(c.list_dir(&p("/img")).len(), 2);
        assert_eq!(c.list_dir(&p("/doc")).len(), 1);
        assert_eq!(c.list_dir(&UrlPath::root()).len(), 3);
        c.shutdown();
    }

    #[test]
    fn file_manager_operations() {
        let mut c = console(3);
        c.publish_with_priority(
            &p("/shop/cart.asp"),
            ContentId(1),
            ContentKind::Asp,
            50,
            Priority::Critical,
            &[NodeId(0)],
        )
        .unwrap();
        c.replicate(&p("/shop/cart.asp"), NodeId(2)).unwrap();
        c.rename(&p("/shop"), &p("/store")).unwrap();
        let view = c.tree_view();
        assert_eq!(view.len(), 1);
        assert_eq!(view[0].path, p("/store/cart.asp"));
        assert_eq!(view[0].priority, Priority::Critical);
        assert_eq!(view[0].locations, vec![NodeId(0), NodeId(2)]);
        c.offload(&p("/store/cart.asp"), NodeId(0)).unwrap();
        c.delete(&p("/store/cart.asp")).unwrap();
        assert!(c.tree_view().is_empty());
        c.shutdown();
    }
}
