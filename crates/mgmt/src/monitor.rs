//! Broker health monitoring.
//!
//! §3.1: the broker daemon exists "to perform the administrative functions
//! and monitor the status (e.g., load situation, failure) of the managed
//! node". [`ClusterMonitor`] is the controller-side half: it polls every
//! broker with a [`crate::agent::StatusProbe`] and declares a node down
//! after a threshold of consecutive failed polls — the signal the
//! distributor uses to stop routing there and the auto-replicator uses to
//! exclude replication targets.

use crate::agent::{AgentOutput, StatusProbe};
use crate::controller::Cluster;
use cpms_model::NodeId;

/// Health verdict for one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeHealth {
    /// The broker answered its probe.
    Healthy {
        /// Files stored on the node.
        files: usize,
        /// Bytes in use.
        used_bytes: u64,
        /// Bytes free.
        free_bytes: u64,
    },
    /// Probes are failing but the threshold has not been crossed yet.
    Suspect {
        /// Consecutive failed probes so far.
        misses: u32,
    },
    /// The miss threshold was crossed: treat the node as failed.
    Down,
}

impl NodeHealth {
    /// Whether the node should receive traffic and replicas.
    pub fn is_available(&self) -> bool {
        matches!(
            self,
            NodeHealth::Healthy { .. } | NodeHealth::Suspect { .. }
        )
    }
}

/// Polls brokers and tracks consecutive failures per node.
#[derive(Debug)]
pub struct ClusterMonitor {
    misses: Vec<u32>,
    threshold: u32,
}

impl ClusterMonitor {
    /// Creates a monitor for `nodes` brokers declaring a node down after
    /// `threshold` consecutive failed probes.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is 0.
    pub fn new(nodes: usize, threshold: u32) -> Self {
        assert!(threshold > 0, "threshold must be at least 1");
        ClusterMonitor {
            misses: vec![0; nodes],
            threshold,
        }
    }

    /// Probes every broker once, updating failure counters, and returns
    /// each node's verdict.
    pub fn poll(&mut self, cluster: &Cluster) -> Vec<(NodeId, NodeHealth)> {
        (0..self.misses.len())
            .map(|i| {
                let node = NodeId(i as u16);
                let result = cluster
                    .broker(node)
                    .map(|b| b.dispatch(Box::new(StatusProbe)));
                let health = match result {
                    Some(Ok(AgentOutput::Status {
                        files,
                        used_bytes,
                        free_bytes,
                    })) => {
                        self.misses[i] = 0;
                        NodeHealth::Healthy {
                            files,
                            used_bytes,
                            free_bytes,
                        }
                    }
                    _ => {
                        self.misses[i] = self.misses[i].saturating_add(1);
                        if self.misses[i] >= self.threshold {
                            NodeHealth::Down
                        } else {
                            NodeHealth::Suspect {
                                misses: self.misses[i],
                            }
                        }
                    }
                };
                (node, health)
            })
            .collect()
    }

    /// Convenience: polls through a controller's cluster.
    pub fn poll_controller(
        &mut self,
        controller: &crate::controller::Controller,
    ) -> Vec<(NodeId, NodeHealth)> {
        self.poll(controller.cluster())
    }

    /// Nodes currently past the miss threshold.
    pub fn down_nodes(&self) -> Vec<NodeId> {
        self.misses
            .iter()
            .enumerate()
            .filter(|(_, &m)| m >= self.threshold)
            .map(|(i, _)| NodeId(i as u16))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::Cluster;

    #[test]
    fn healthy_cluster_reports_status() {
        let mut cluster = Cluster::start(3, 1 << 20);
        let mut monitor = ClusterMonitor::new(3, 2);
        let verdicts = monitor.poll(&cluster);
        assert_eq!(verdicts.len(), 3);
        for (_, health) in &verdicts {
            assert!(matches!(health, NodeHealth::Healthy { files: 0, .. }));
            assert!(health.is_available());
        }
        assert!(monitor.down_nodes().is_empty());
        cluster.shutdown();
    }

    #[test]
    fn failure_detected_after_threshold() {
        let mut cluster = Cluster::start(2, 1 << 20);
        let mut monitor = ClusterMonitor::new(2, 2);
        // Kill node 1's broker behind the monitor's back.
        cluster.kill_node(NodeId(1));

        let verdicts = monitor.poll(&cluster);
        assert!(matches!(verdicts[0].1, NodeHealth::Healthy { .. }));
        assert_eq!(verdicts[1].1, NodeHealth::Suspect { misses: 1 });
        assert!(verdicts[1].1.is_available(), "grace period before Down");

        let verdicts = monitor.poll(&cluster);
        assert_eq!(verdicts[1].1, NodeHealth::Down);
        assert!(!verdicts[1].1.is_available());
        assert_eq!(monitor.down_nodes(), vec![NodeId(1)]);
        cluster.shutdown();
    }

    #[test]
    fn recovery_is_not_modeled_but_counters_reset_on_success() {
        // A node that answers again after transient misses goes back to
        // healthy (counters reset).
        let mut cluster = Cluster::start(1, 1 << 20);
        let mut monitor = ClusterMonitor::new(1, 3);
        // two synthetic misses by polling a too-large monitor index?
        // Instead: healthy poll resets nothing to reset; just assert the
        // reset path via a healthy poll after constructing state manually.
        monitor.misses[0] = 2;
        let verdicts = monitor.poll(&cluster);
        assert!(matches!(verdicts[0].1, NodeHealth::Healthy { .. }));
        assert!(monitor.down_nodes().is_empty());
        cluster.shutdown();
    }
}
