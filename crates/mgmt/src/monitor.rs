//! Broker health monitoring.
//!
//! §3.1: the broker daemon exists "to perform the administrative functions
//! and monitor the status (e.g., load situation, failure) of the managed
//! node". [`ClusterMonitor`] is the controller-side half: it polls every
//! broker with a [`crate::agent::StatusProbe`] and declares a node down
//! after a threshold of consecutive failed polls — the signal the
//! distributor uses to stop routing there and the auto-replicator uses to
//! exclude replication targets.
//!
//! Every health *transition* (healthy → suspect, suspect → down,
//! down → recovered) is also an observable event: with a metrics registry
//! attached, transitions land in the shared event log and counters, so
//! the stats surface shows not just the current verdicts but the history
//! that produced them.

use crate::agent::{AgentOutput, StatusProbe};
use crate::controller::Cluster;
use cpms_model::NodeId;
use cpms_obs::MetricsRegistry;
use std::sync::Arc;

/// Health verdict for one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeHealth {
    /// The broker answered its probe.
    Healthy {
        /// Files stored on the node.
        files: usize,
        /// Bytes in use.
        used_bytes: u64,
        /// Bytes free.
        free_bytes: u64,
    },
    /// Probes are failing but the threshold has not been crossed yet.
    Suspect {
        /// Consecutive failed probes so far.
        misses: u32,
    },
    /// The miss threshold was crossed: treat the node as failed.
    Down,
    /// The broker answered again after having been declared down. The
    /// node is available, but the verdict is distinct from `Healthy` for
    /// exactly one poll so operators (and the auto-replicator) can see
    /// the comeback rather than silently absorbing it.
    Recovered {
        /// Files stored on the node.
        files: usize,
        /// Bytes in use.
        used_bytes: u64,
        /// Bytes free.
        free_bytes: u64,
    },
}

impl NodeHealth {
    /// Whether the node should receive traffic and replicas.
    pub fn is_available(&self) -> bool {
        !matches!(self, NodeHealth::Down)
    }
}

/// Polls brokers and tracks consecutive failures per node.
#[derive(Debug)]
pub struct ClusterMonitor {
    misses: Vec<u32>,
    down: Vec<bool>,
    threshold: u32,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl ClusterMonitor {
    /// Creates a monitor for `nodes` brokers declaring a node down after
    /// `threshold` consecutive failed probes.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is 0.
    pub fn new(nodes: usize, threshold: u32) -> Self {
        assert!(threshold > 0, "threshold must be at least 1");
        ClusterMonitor {
            misses: vec![0; nodes],
            down: vec![false; nodes],
            threshold,
            metrics: None,
        }
    }

    /// Attaches a metrics registry: every subsequent health transition is
    /// recorded as an event (`health` stage) and counted
    /// (`mgmt_node_down_total`, `mgmt_node_recoveries_total`,
    /// `mgmt_health_transitions_total`).
    pub fn attach_metrics(&mut self, registry: &Arc<MetricsRegistry>) {
        self.metrics = Some(Arc::clone(registry));
    }

    fn observe_transition(&self, node: NodeId, what: &str, counter: Option<&str>) {
        let Some(registry) = &self.metrics else {
            return;
        };
        registry.counter("mgmt_health_transitions_total").inc();
        if let Some(name) = counter {
            registry.counter(name).inc();
        }
        registry
            .events()
            .record("health", None, format!("node {} {what}", node.0));
    }

    /// Probes every broker once, updating failure counters, and returns
    /// each node's verdict.
    pub fn poll(&mut self, cluster: &Cluster) -> Vec<(NodeId, NodeHealth)> {
        (0..self.misses.len())
            .map(|i| {
                let node = NodeId(i as u16);
                let result = cluster.broker(node).map(|b| b.dispatch(StatusProbe));
                let prev_misses = self.misses[i];
                let health = match result {
                    Some(Ok(AgentOutput::Status {
                        files,
                        used_bytes,
                        free_bytes,
                    })) => {
                        self.misses[i] = 0;
                        if self.down[i] {
                            self.down[i] = false;
                            self.observe_transition(
                                node,
                                "recovered from down",
                                Some("mgmt_node_recoveries_total"),
                            );
                            NodeHealth::Recovered {
                                files,
                                used_bytes,
                                free_bytes,
                            }
                        } else {
                            if prev_misses > 0 {
                                self.observe_transition(node, "suspect cleared", None);
                            }
                            NodeHealth::Healthy {
                                files,
                                used_bytes,
                                free_bytes,
                            }
                        }
                    }
                    _ => {
                        self.misses[i] = prev_misses.saturating_add(1);
                        if self.misses[i] >= self.threshold {
                            if !self.down[i] {
                                self.down[i] = true;
                                self.observe_transition(
                                    node,
                                    "declared down",
                                    Some("mgmt_node_down_total"),
                                );
                            }
                            NodeHealth::Down
                        } else {
                            if prev_misses == 0 {
                                self.observe_transition(node, "suspect (missed probe)", None);
                            }
                            NodeHealth::Suspect {
                                misses: self.misses[i],
                            }
                        }
                    }
                };
                (node, health)
            })
            .collect()
    }

    /// Convenience: polls through a controller's cluster.
    pub fn poll_controller(
        &mut self,
        controller: &crate::controller::Controller,
    ) -> Vec<(NodeId, NodeHealth)> {
        self.poll(controller.cluster())
    }

    /// Nodes currently past the miss threshold.
    pub fn down_nodes(&self) -> Vec<NodeId> {
        self.misses
            .iter()
            .enumerate()
            .filter(|(_, &m)| m >= self.threshold)
            .map(|(i, _)| NodeId(i as u16))
            .collect()
    }

    /// Per-node transport health: the monitor's miss counters joined with
    /// each broker client's wire statistics (RTT of the last RPC, retries,
    /// timeouts, reconnects). Backs the console `nodes` command.
    pub fn transport_health(&self, cluster: &Cluster) -> Vec<NodeTransportHealth> {
        (0..self.misses.len())
            .map(|i| {
                let node = NodeId(i as u16);
                let (kind, stats) = cluster
                    .broker(node)
                    .map(|b| (b.transport_kind(), b.transport_stats()))
                    .unwrap_or(("none", cpms_wire::ClientStats::default()));
                NodeTransportHealth {
                    node,
                    transport: kind,
                    down: i < self.down.len() && self.down[i],
                    consecutive_misses: self.misses[i],
                    calls: stats.calls,
                    last_rtt_ns: stats.last_rtt_ns,
                    retries: stats.retries,
                    timeouts: stats.timeouts,
                    reconnects: stats.reconnects,
                }
            })
            .collect()
    }
}

/// One node's control-plane transport health: monitor verdict state plus
/// the broker client's wire counters (see
/// [`ClusterMonitor::transport_health`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeTransportHealth {
    /// The node.
    pub node: NodeId,
    /// Transport kind serving this broker (`inproc`, `tcp`, `faulty`).
    pub transport: &'static str,
    /// Whether the monitor currently considers the node down.
    pub down: bool,
    /// Consecutive failed probes so far.
    pub consecutive_misses: u32,
    /// Total RPCs issued to this broker.
    pub calls: u64,
    /// Round-trip time of the most recent successful RPC, in nanoseconds
    /// (0 if none yet).
    pub last_rtt_ns: u64,
    /// RPC attempts beyond the first (retries after transient failures).
    pub retries: u64,
    /// RPC attempts that hit their deadline.
    pub timeouts: u64,
    /// TCP reconnects (always 0 for in-process transports).
    pub reconnects: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::Cluster;

    #[test]
    fn healthy_cluster_reports_status() {
        let mut cluster = Cluster::start(3, 1 << 20);
        let mut monitor = ClusterMonitor::new(3, 2);
        let verdicts = monitor.poll(&cluster);
        assert_eq!(verdicts.len(), 3);
        for (_, health) in &verdicts {
            assert!(matches!(health, NodeHealth::Healthy { files: 0, .. }));
            assert!(health.is_available());
        }
        assert!(monitor.down_nodes().is_empty());
        cluster.shutdown();
    }

    #[test]
    fn failure_detected_after_threshold() {
        let mut cluster = Cluster::start(2, 1 << 20);
        let mut monitor = ClusterMonitor::new(2, 2);
        // Kill node 1's broker behind the monitor's back.
        cluster.kill_node(NodeId(1));

        let verdicts = monitor.poll(&cluster);
        assert!(matches!(verdicts[0].1, NodeHealth::Healthy { .. }));
        assert_eq!(verdicts[1].1, NodeHealth::Suspect { misses: 1 });
        assert!(verdicts[1].1.is_available(), "grace period before Down");

        let verdicts = monitor.poll(&cluster);
        assert_eq!(verdicts[1].1, NodeHealth::Down);
        assert!(!verdicts[1].1.is_available());
        assert_eq!(monitor.down_nodes(), vec![NodeId(1)]);
        cluster.shutdown();
    }

    #[test]
    fn suspect_node_returns_plainly_to_healthy() {
        // Misses below the threshold clear without the Recovered verdict —
        // the node was never declared down, so there is nothing to recover
        // from.
        let mut cluster = Cluster::start(1, 1 << 20);
        let mut monitor = ClusterMonitor::new(1, 3);
        monitor.misses[0] = 2;
        let verdicts = monitor.poll(&cluster);
        assert!(matches!(verdicts[0].1, NodeHealth::Healthy { .. }));
        assert!(monitor.down_nodes().is_empty());
        cluster.shutdown();
    }

    #[test]
    fn down_node_comes_back_as_recovered() {
        let mut cluster = Cluster::start(1, 1 << 20);
        let mut monitor = ClusterMonitor::new(1, 1);
        let registry = Arc::new(MetricsRegistry::new());
        monitor.attach_metrics(&registry);

        // Simulate the broker having been declared down, then answering
        // again: the monitor state says down, the cluster is healthy.
        monitor.misses[0] = 1;
        monitor.down[0] = true;
        let verdicts = monitor.poll(&cluster);
        assert!(
            matches!(verdicts[0].1, NodeHealth::Recovered { .. }),
            "got {:?}",
            verdicts[0].1
        );
        assert!(verdicts[0].1.is_available());

        // The next poll is plain healthy again — Recovered is one-shot.
        let verdicts = monitor.poll(&cluster);
        assert!(matches!(verdicts[0].1, NodeHealth::Healthy { .. }));

        let snap = registry.snapshot();
        assert_eq!(snap.counter("mgmt_node_recoveries_total"), Some(1));
        assert!(snap
            .events
            .iter()
            .any(|e| e.stage == "health" && e.detail.contains("recovered")));
        cluster.shutdown();
    }

    #[test]
    fn real_down_and_recovery_emit_transitions() {
        // End to end through broker death: kill, observe down, restart is
        // not possible for a killed broker, so assert the down transition
        // counters instead.
        let mut cluster = Cluster::start(2, 1 << 20);
        let mut monitor = ClusterMonitor::new(2, 2);
        let registry = Arc::new(MetricsRegistry::new());
        monitor.attach_metrics(&registry);
        cluster.kill_node(NodeId(1));

        monitor.poll(&cluster); // suspect
        monitor.poll(&cluster); // down
        monitor.poll(&cluster); // still down: no repeat transition

        let snap = registry.snapshot();
        assert_eq!(snap.counter("mgmt_node_down_total"), Some(1));
        assert_eq!(snap.counter("mgmt_health_transitions_total"), Some(2));
        assert!(snap
            .events
            .iter()
            .any(|e| e.detail.contains("declared down")));
        cluster.shutdown();
    }
}
