//! Brokers: the per-node management daemons.
//!
//! > "The broker is a standalone Java application, which executes as a
//! > daemon process on each backend server in order to perform the
//! > administrative functions and monitor the status … of the managed
//! > node."
//!
//! Each [`Broker`] runs on its own thread, owns its node's [`NodeStore`],
//! and executes [`Agent`]s received over a crossbeam channel, replying on
//! a per-request channel. The [`BrokerHandle`] is the controller's end.

use crate::agent::{Agent, AgentError, AgentOutput};
use crate::store::NodeStore;
use cpms_model::NodeId;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::thread::JoinHandle;

enum Message {
    Dispatch {
        agent: Box<dyn Agent>,
        reply: Sender<Result<AgentOutput, AgentError>>,
    },
    Shutdown,
}

/// The controller-side handle to one node's broker.
pub struct BrokerHandle {
    node: NodeId,
    sender: Sender<Message>,
    thread: Option<JoinHandle<NodeStore>>,
}

impl std::fmt::Debug for BrokerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrokerHandle")
            .field("node", &self.node)
            .field("alive", &self.is_alive())
            .finish()
    }
}

impl BrokerHandle {
    /// The node this broker manages.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Whether the broker thread is still running.
    pub fn is_alive(&self) -> bool {
        self.thread.as_ref().is_some_and(|t| !t.is_finished())
    }

    /// Ships an agent to the broker and waits for its result.
    ///
    /// # Errors
    ///
    /// [`AgentError::BrokerUnavailable`] if the broker is down, plus
    /// whatever the agent itself reports.
    pub fn dispatch(&self, agent: Box<dyn Agent>) -> Result<AgentOutput, AgentError> {
        let (reply_tx, reply_rx) = bounded(1);
        self.sender
            .send(Message::Dispatch {
                agent,
                reply: reply_tx,
            })
            .map_err(|_| AgentError::BrokerUnavailable(self.node))?;
        reply_rx
            .recv()
            .map_err(|_| AgentError::BrokerUnavailable(self.node))?
    }

    /// Stops the broker and returns its final store state (for inspection
    /// or migration). Idempotent: returns `None` on repeated calls or if
    /// the broker already died.
    pub fn shutdown(&mut self) -> Option<NodeStore> {
        let thread = self.thread.take()?;
        let _ = self.sender.send(Message::Shutdown);
        thread.join().ok()
    }

    /// Simulates a broker crash: the thread exits without draining its
    /// queue (for failure-injection tests). The store state is dropped.
    pub fn kill(&mut self) {
        if let Some(thread) = self.thread.take() {
            let _ = self.sender.send(Message::Shutdown);
            let _ = thread.join();
        }
    }
}

impl Drop for BrokerHandle {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

/// The broker daemon. Construct with [`Broker::spawn`].
#[derive(Debug)]
pub struct Broker;

impl Broker {
    /// Starts a broker thread for `node` managing `store`, returning the
    /// controller-side handle.
    pub fn spawn(store: NodeStore) -> BrokerHandle {
        let node = store.node();
        let (tx, rx): (Sender<Message>, Receiver<Message>) = unbounded();
        let thread = std::thread::Builder::new()
            .name(format!("broker-{node}"))
            .spawn(move || Broker::run(store, rx))
            .expect("spawn broker thread");
        BrokerHandle {
            node,
            sender: tx,
            thread: Some(thread),
        }
    }

    fn run(mut store: NodeStore, rx: Receiver<Message>) -> NodeStore {
        while let Ok(msg) = rx.recv() {
            match msg {
                Message::Dispatch { agent, reply } => {
                    let result = agent.execute(&mut store);
                    // The controller may have given up; ignore send errors.
                    let _ = reply.send(result);
                }
                Message::Shutdown => break,
            }
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{DeleteFile, ListFiles, StatusProbe, StoreFile};
    use crate::store::StoredFile;
    use cpms_model::{ContentId, UrlPath};

    fn p(s: &str) -> UrlPath {
        s.parse().unwrap()
    }

    fn file(id: u32) -> StoredFile {
        StoredFile {
            content: ContentId(id),
            size: 10,
            version: 0,
        }
    }

    #[test]
    fn dispatch_roundtrip() {
        let mut h = Broker::spawn(NodeStore::new(NodeId(3), 1000));
        assert_eq!(h.node(), NodeId(3));
        assert!(h.is_alive());
        h.dispatch(Box::new(StoreFile {
            path: p("/x"),
            file: file(1),
            overwrite: false,
        }))
        .unwrap();
        match h.dispatch(Box::new(StatusProbe)).unwrap() {
            AgentOutput::Status { files, .. } => assert_eq!(files, 1),
            other => panic!("{other:?}"),
        }
        let store = h.shutdown().expect("final state");
        assert!(store.contains(&p("/x")));
    }

    #[test]
    fn errors_propagate() {
        let mut h = Broker::spawn(NodeStore::new(NodeId(0), 1000));
        let err = h
            .dispatch(Box::new(DeleteFile { path: p("/nope") }))
            .unwrap_err();
        assert!(matches!(err, AgentError::Store(_)));
        h.shutdown();
    }

    #[test]
    fn dispatch_after_shutdown_fails() {
        let mut h = Broker::spawn(NodeStore::new(NodeId(0), 1000));
        h.shutdown();
        assert!(!h.is_alive());
        let err = h.dispatch(Box::new(ListFiles)).unwrap_err();
        assert!(matches!(err, AgentError::BrokerUnavailable(NodeId(0))));
        assert!(h.shutdown().is_none(), "second shutdown is a no-op");
    }

    #[test]
    fn concurrent_dispatches_serialize() {
        let h = Broker::spawn(NodeStore::new(NodeId(0), 100_000));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..25 {
                        h.dispatch(Box::new(StoreFile {
                            path: p(&format!("/t{t}/f{i}")),
                            file: file(i),
                            overwrite: false,
                        }))
                        .unwrap();
                    }
                });
            }
        });
        match h.dispatch(Box::new(StatusProbe)).unwrap() {
            AgentOutput::Status { files, .. } => assert_eq!(files, 100),
            other => panic!("{other:?}"),
        }
    }
}
