//! Brokers: the per-node management daemons.
//!
//! > "The broker is a standalone Java application, which executes as a
//! > daemon process on each backend server in order to perform the
//! > administrative functions and monitor the status … of the managed
//! > node."
//!
//! A broker is a [`cpms_wire::Service`]: it owns its node's
//! [`NodeStore`] and executes serialized [`AgentRequest`]s received over
//! a wire transport, replying with [`AgentReply`]s. The same service
//! runs in two deployments:
//!
//! - **in-process** ([`Broker::spawn`]) — a [`cpms_wire::InProcServer`]
//!   executor thread reached over channels, preserving the original
//!   single-process control plane;
//! - **TCP daemon** ([`Broker::bind`] / the `cpms-broker` binary) — a
//!   [`cpms_wire::TcpServer`] bound to a real socket, reachable from
//!   other processes and hosts ([`Broker::connect`]).
//!
//! Either way, the controller's end is a [`BrokerHandle`]: a retrying,
//! deadline-bounded [`cpms_wire::Client`] plus (for locally hosted
//! brokers) the server handle itself, so tests and the single-process
//! deployment can stop a broker and recover its final store state.

use crate::agent::{AgentError, AgentOutput, AgentReply, AgentRequest, ShipAgent};
use crate::store::{BrokerState, NodeStore};
use cpms_model::NodeId;
use cpms_obs::{MetricsRegistry, SpanCollector, TraceContext, TracedSpan};
use cpms_store::{ShipPort, ShipReply, ShipRequest};
use cpms_wire::{
    Client, ClientStats, InProcServer, RetryPolicy, TcpServer, TcpTransport, Transport, WireError,
};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Default per-RPC deadline for broker calls.
pub const BROKER_DEADLINE: Duration = Duration::from_secs(2);

/// The broker's wire service: one node's store behind the agent
/// protocol. Requests are [`AgentRequest`] JSON payloads; responses are
/// [`AgentReply`] JSON payloads.
#[derive(Debug)]
pub struct BrokerService {
    state: BrokerState,
    spans: Option<Arc<SpanCollector>>,
}

impl BrokerService {
    /// Wraps a node store as a wire service, backing it with a fresh
    /// in-memory content repository (existing ledger files are
    /// materialized so both views start consistent).
    #[must_use]
    pub fn new(store: NodeStore) -> Self {
        BrokerService {
            state: BrokerState::from_meta(store),
            spans: None,
        }
    }

    /// Wraps explicit broker state — the seam for a disk-backed or
    /// pre-populated content repository.
    #[must_use]
    pub fn with_state(state: BrokerState) -> Self {
        BrokerService { state, spans: None }
    }

    /// Records a `broker.<agent>` span into `spans` for every request
    /// executed under an inbound trace context (requests arriving
    /// untraced add nothing — a broker never roots traces of its own).
    #[must_use]
    pub fn with_collector(mut self, spans: Arc<SpanCollector>) -> Self {
        self.spans = Some(spans);
        self
    }

    /// The node this broker manages.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.state.node()
    }

    /// The broker's full state (ledger + content repository).
    #[must_use]
    pub fn state(&self) -> &BrokerState {
        &self.state
    }

    /// Unwraps the service back into its metadata store (after the
    /// server that owned it stopped).
    #[must_use]
    pub fn into_store(self) -> NodeStore {
        self.state.into_meta()
    }
}

impl cpms_wire::Service for BrokerService {
    fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        let reply: AgentReply = match std::str::from_utf8(request)
            .map_err(|e| format!("payload is not UTF-8: {e}"))
            .and_then(|text| serde_json::from_str::<AgentRequest>(text).map_err(|e| e.to_string()))
        {
            Ok(agent) => {
                // The executor activated the frame's trace context (if
                // any) before calling us, so this span parents to the
                // caller's `wire.attempt` hop.
                let mut span = match (&self.spans, TraceContext::current()) {
                    (Some(spans), Some(_)) => {
                        let mut span = TracedSpan::enter(spans, format!("broker.{}", agent.name()));
                        span.set_detail(match &agent {
                            AgentRequest::Ship(s) => {
                                format!("node={} {}", self.state.node(), s.request.verb())
                            }
                            _ => format!("node={}", self.state.node()),
                        });
                        Some(span)
                    }
                    _ => None,
                };
                let result = agent.execute(&mut self.state);
                if let (Some(span), Err(e)) = (span.as_mut(), &result) {
                    span.set_error(true);
                    span.set_detail(e.to_string());
                }
                result.into()
            }
            Err(detail) => AgentReply::Err(AgentError::Transport {
                node: self.state.node(),
                error: WireError::Codec { detail },
            }),
        };
        serde_json::to_string(&reply)
            .expect("agent replies always serialize")
            .into_bytes()
    }
}

/// How a locally hosted broker is served.
#[derive(Debug)]
enum BrokerServer {
    InProc(InProcServer<BrokerService>),
    Tcp(TcpServer<BrokerService>),
}

/// The controller-side handle to one node's broker: a retrying wire
/// client, plus the server itself when this process hosts it.
#[derive(Debug)]
pub struct BrokerHandle {
    node: NodeId,
    client: Client,
    server: Option<BrokerServer>,
    /// True for daemons this process does not host ([`Broker::connect`]):
    /// their liveness is the monitor's job, not the handle's.
    remote: bool,
}

impl BrokerHandle {
    /// The node this broker manages.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The wire client (transport stats, metrics attachment).
    pub fn client(&self) -> &Client {
        &self.client
    }

    /// Point-in-time transport counters for this broker's client.
    pub fn transport_stats(&self) -> ClientStats {
        self.client.stats()
    }

    /// The transport kind serving this broker (`"inproc"`, `"tcp"`,
    /// `"faulty"`).
    pub fn transport_kind(&self) -> &'static str {
        self.client.transport_kind()
    }

    /// Folds this broker's wire metrics into `registry`.
    pub fn attach_metrics(&self, registry: &Arc<MetricsRegistry>) {
        self.client.attach_metrics(registry);
    }

    /// The TCP address a locally hosted daemon is listening on (`None`
    /// for in-process brokers and remote handles).
    pub fn addr(&self) -> Option<SocketAddr> {
        match &self.server {
            Some(BrokerServer::Tcp(s)) => Some(s.addr()),
            _ => None,
        }
    }

    /// Whether the broker is still reachable. For locally hosted brokers
    /// this is the server thread's liveness; for remote daemons
    /// ([`Broker::connect`]) liveness is the monitor's job and this
    /// returns `true`.
    pub fn is_alive(&self) -> bool {
        match &self.server {
            Some(BrokerServer::InProc(s)) => s.is_running(),
            Some(BrokerServer::Tcp(s)) => s.is_running(),
            None => self.remote,
        }
    }

    /// Ships an agent to the broker over the wire and waits for its
    /// result.
    ///
    /// # Errors
    ///
    /// [`AgentError::BrokerUnavailable`] if the broker is gone,
    /// [`AgentError::Transport`] on other wire failures (timeout,
    /// poisoned frame, retries exhausted), plus whatever the agent
    /// itself reports.
    pub fn dispatch(&self, agent: impl Into<AgentRequest>) -> Result<AgentOutput, AgentError> {
        let request: AgentRequest = agent.into();
        let reply: AgentReply = self
            .client
            .call(&request)
            .map_err(|e| AgentError::from_wire(self.node, e))?;
        reply.into()
    }

    /// Stops a locally hosted broker and returns its final store state
    /// (for inspection or migration). Idempotent: returns `None` on
    /// repeated calls, if the broker already died, or if the broker is a
    /// remote daemon this process does not host.
    pub fn shutdown(&mut self) -> Option<NodeStore> {
        match self.server.take()? {
            BrokerServer::InProc(mut s) => s.stop().map(BrokerService::into_store),
            BrokerServer::Tcp(mut s) => s.stop().map(BrokerService::into_store),
        }
    }

    /// Simulates a broker crash: the server stops without handing its
    /// state back (failure-injection for monitoring tests). The store
    /// state is dropped.
    pub fn kill(&mut self) {
        let _ = self.shutdown();
    }
}

impl Drop for BrokerHandle {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

impl ShipPort for BrokerHandle {
    /// Content shipping rides the agent protocol: the request is
    /// tunneled as a [`ShipAgent`], so the same broker endpoint carries
    /// both management functions and replica bytes.
    fn ship(&self, request: &ShipRequest) -> Result<ShipReply, WireError> {
        match self.dispatch(ShipAgent {
            request: request.clone(),
        }) {
            Ok(AgentOutput::Ship(reply)) => Ok(reply),
            Ok(other) => Err(WireError::Codec {
                detail: format!("broker answered a ship request with {other:?}"),
            }),
            Err(AgentError::Store(e)) => Ok(ShipReply::Err(e.into())),
            Err(AgentError::BrokerUnavailable(node)) => Err(WireError::Unavailable {
                detail: format!("broker on {node} unavailable"),
            }),
            Err(AgentError::Transport { error, .. }) => Err(error),
        }
    }

    fn peer(&self) -> String {
        format!("broker on {} over {}", self.node, self.transport_kind())
    }
}

/// The broker daemon. Construct with [`Broker::spawn`] (in-process),
/// [`Broker::bind`] (TCP daemon in this process), or
/// [`Broker::connect`] (client to a daemon elsewhere).
#[derive(Debug)]
pub struct Broker;

impl Broker {
    fn default_client(transport: Arc<dyn Transport>, node: NodeId) -> Client {
        Client::new(transport)
            .with_deadline(BROKER_DEADLINE)
            .with_retry(RetryPolicy {
                // Distinct deterministic jitter stream per node.
                seed: 0xB20_0000 + u64::from(node.0),
                ..RetryPolicy::default()
            })
    }

    /// Starts an in-process broker for `store`'s node, returning the
    /// controller-side handle.
    pub fn spawn(store: NodeStore) -> BrokerHandle {
        Self::spawn_state(BrokerState::from_meta(store))
    }

    /// Starts an in-process broker from explicit state — the seam for a
    /// disk-backed or pre-populated content repository.
    pub fn spawn_state(state: BrokerState) -> BrokerHandle {
        let node = state.node();
        let (transport, server) =
            InProcServer::spawn_named(BrokerService::with_state(state), &format!("broker-{node}"));
        BrokerHandle {
            node,
            client: Self::default_client(Arc::new(transport), node),
            server: Some(BrokerServer::InProc(server)),
            remote: false,
        }
    }

    /// [`Broker::spawn_state`] with the broker recording `broker.*`
    /// trace spans into `spans` — the single-process deployment's way of
    /// folding broker-side hops into one collector.
    pub fn spawn_observed(state: BrokerState, spans: Arc<SpanCollector>) -> BrokerHandle {
        let node = state.node();
        let service = BrokerService::with_state(state).with_collector(spans);
        let (transport, server) = InProcServer::spawn_named(service, &format!("broker-{node}"));
        BrokerHandle {
            node,
            client: Self::default_client(Arc::new(transport), node),
            server: Some(BrokerServer::InProc(server)),
            remote: false,
        }
    }

    /// Starts an in-process broker whose client speaks through
    /// `wrap(transport)` — the seam fault-injection tests use to put a
    /// [`cpms_wire::FaultyTransport`] between controller and broker.
    pub fn spawn_wrapped(
        store: NodeStore,
        wrap: impl FnOnce(Arc<dyn Transport>) -> Arc<dyn Transport>,
    ) -> BrokerHandle {
        let node = store.node();
        let (transport, server) =
            InProcServer::spawn_named(BrokerService::new(store), &format!("broker-{node}"));
        BrokerHandle {
            node,
            client: Self::default_client(wrap(Arc::new(transport)), node),
            server: Some(BrokerServer::InProc(server)),
            remote: false,
        }
    }

    /// Binds a TCP broker daemon for `store`'s node on `addr` (port 0
    /// for ephemeral) and returns a handle connected to it over
    /// loopback/network TCP.
    ///
    /// # Errors
    ///
    /// The bind failure, if any.
    pub fn bind(addr: SocketAddr, store: NodeStore) -> std::io::Result<BrokerHandle> {
        Self::bind_wrapped(addr, BrokerState::from_meta(store), |t| t)
    }

    /// [`Broker::bind`] from explicit state, with the client's transport
    /// passed through `wrap` — the seam that lets tests and smoke drills
    /// put a [`cpms_wire::FaultyTransport`] on a real TCP connection.
    ///
    /// # Errors
    ///
    /// The bind failure, if any.
    pub fn bind_wrapped(
        addr: SocketAddr,
        state: BrokerState,
        wrap: impl FnOnce(Arc<dyn Transport>) -> Arc<dyn Transport>,
    ) -> std::io::Result<BrokerHandle> {
        let node = state.node();
        let server = TcpServer::bind(addr, BrokerService::with_state(state))?;
        let transport = TcpTransport::new(server.addr());
        Ok(BrokerHandle {
            node,
            client: Self::default_client(wrap(Arc::new(transport)), node),
            server: Some(BrokerServer::Tcp(server)),
            remote: false,
        })
    }

    /// [`Broker::bind`] with the daemon recording `broker.*` trace spans
    /// into `spans` — how the `cpms-broker` binary exports its half of
    /// every distributed trace.
    ///
    /// # Errors
    ///
    /// The bind failure, if any.
    pub fn bind_observed(
        addr: SocketAddr,
        state: BrokerState,
        spans: Arc<SpanCollector>,
    ) -> std::io::Result<BrokerHandle> {
        let node = state.node();
        let service = BrokerService::with_state(state).with_collector(spans);
        let server = TcpServer::bind(addr, service)?;
        let transport = TcpTransport::new(server.addr());
        Ok(BrokerHandle {
            node,
            client: Self::default_client(Arc::new(transport), node),
            server: Some(BrokerServer::Tcp(server)),
            remote: false,
        })
    }

    /// A handle to a broker daemon running elsewhere (another process or
    /// host, e.g. the `cpms-broker` binary). No server is owned:
    /// [`BrokerHandle::shutdown`] returns `None` and the daemon's
    /// lifecycle belongs to whoever started it.
    #[must_use]
    pub fn connect(node: NodeId, addr: SocketAddr) -> BrokerHandle {
        Self::connect_wrapped(node, addr, |t| t)
    }

    /// [`Broker::connect`] with the client's transport passed through
    /// `wrap` — the seam a chaos orchestrator uses to put an armable
    /// [`cpms_wire::FaultSwitch`] on the link to a remote daemon.
    #[must_use]
    pub fn connect_wrapped(
        node: NodeId,
        addr: SocketAddr,
        wrap: impl FnOnce(Arc<dyn Transport>) -> Arc<dyn Transport>,
    ) -> BrokerHandle {
        BrokerHandle {
            node,
            client: Self::default_client(wrap(Arc::new(TcpTransport::new(addr))), node),
            server: None,
            remote: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{DeleteFile, ListFiles, StatusProbe, StoreFile};
    use crate::store::StoredFile;
    use cpms_model::{ContentId, UrlPath};

    fn p(s: &str) -> UrlPath {
        s.parse().unwrap()
    }

    fn file(id: u32) -> StoredFile {
        StoredFile {
            content: ContentId(id),
            size: 10,
            version: 0,
        }
    }

    #[test]
    fn dispatch_roundtrip() {
        let mut h = Broker::spawn(NodeStore::new(NodeId(3), 1000));
        assert_eq!(h.node(), NodeId(3));
        assert!(h.is_alive());
        assert_eq!(h.transport_kind(), "inproc");
        h.dispatch(StoreFile {
            path: p("/x"),
            file: file(1),
            overwrite: false,
        })
        .unwrap();
        match h.dispatch(StatusProbe).unwrap() {
            AgentOutput::Status { files, .. } => assert_eq!(files, 1),
            other => panic!("{other:?}"),
        }
        let stats = h.transport_stats();
        assert_eq!(stats.calls, 2);
        assert!(stats.last_rtt_ns > 0);
        let store = h.shutdown().expect("final state");
        assert!(store.contains(&p("/x")));
    }

    #[test]
    fn errors_propagate() {
        let mut h = Broker::spawn(NodeStore::new(NodeId(0), 1000));
        let err = h.dispatch(DeleteFile { path: p("/nope") }).unwrap_err();
        assert!(matches!(err, AgentError::Store(_)));
        h.shutdown();
    }

    #[test]
    fn dispatch_after_shutdown_fails() {
        let mut h = Broker::spawn(NodeStore::new(NodeId(0), 1000));
        h.shutdown();
        assert!(!h.is_alive());
        let err = h.dispatch(ListFiles).unwrap_err();
        assert!(matches!(err, AgentError::BrokerUnavailable(NodeId(0))));
        assert!(h.shutdown().is_none(), "second shutdown is a no-op");
    }

    #[test]
    fn concurrent_dispatches_serialize() {
        let h = Broker::spawn(NodeStore::new(NodeId(0), 100_000));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..25 {
                        h.dispatch(StoreFile {
                            path: p(&format!("/t{t}/f{i}")),
                            file: file(i),
                            overwrite: false,
                        })
                        .unwrap();
                    }
                });
            }
        });
        match h.dispatch(StatusProbe).unwrap() {
            AgentOutput::Status { files, .. } => assert_eq!(files, 100),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tcp_daemon_roundtrip() {
        let mut h = Broker::bind(
            "127.0.0.1:0".parse().unwrap(),
            NodeStore::new(NodeId(7), 1000),
        )
        .unwrap();
        assert_eq!(h.transport_kind(), "tcp");
        assert!(h.is_alive());
        h.dispatch(StoreFile {
            path: p("/net"),
            file: file(2),
            overwrite: false,
        })
        .unwrap();
        match h.dispatch(ListFiles).unwrap() {
            AgentOutput::Listing(l) => {
                assert_eq!(l.len(), 1);
                assert_eq!(l[0].0, p("/net"));
            }
            other => panic!("{other:?}"),
        }
        let store = h.shutdown().expect("final state over TCP too");
        assert!(store.contains(&p("/net")));
        assert!(!h.is_alive());
    }

    #[test]
    fn connect_handle_reaches_separately_hosted_daemon() {
        // Host the daemon through one handle, reach it through a second,
        // client-only handle — the two-process topology in one test.
        let mut host = Broker::bind(
            "127.0.0.1:0".parse().unwrap(),
            NodeStore::new(NodeId(4), 1000),
        )
        .unwrap();
        let addr = host.addr().expect("tcp daemon has an address");
        let mut remote = Broker::connect(NodeId(4), addr);
        remote
            .dispatch(StoreFile {
                path: p("/r"),
                file: file(3),
                overwrite: false,
            })
            .unwrap();
        assert!(remote.shutdown().is_none(), "connect owns no server");
        let store = host.shutdown().expect("host owns the daemon");
        assert!(store.contains(&p("/r")), "remote write landed");
    }

    #[test]
    fn garbage_payload_surfaces_codec_error_not_a_hang() {
        let h = Broker::spawn(NodeStore::new(NodeId(1), 1000));
        // Speak raw bytes past the typed dispatch layer.
        let reply = h.client().call_raw(b"not an agent").unwrap();
        let reply: AgentReply = serde_json::from_str(std::str::from_utf8(&reply).unwrap()).unwrap();
        match Result::from(reply) {
            Err(AgentError::Transport {
                node,
                error: WireError::Codec { .. },
            }) => assert_eq!(node, NodeId(1)),
            other => panic!("{other:?}"),
        }
    }
}
