#![allow(clippy::map_entry)] // model-vs-system checks read then insert deliberately

//! Property tests: the management system's single system image is always
//! consistent with what the brokers actually store, under arbitrary
//! operation sequences.

use cpms_mgmt::console::RemoteConsole;
use cpms_mgmt::{Cluster, Controller};
use cpms_model::{ContentId, ContentKind, NodeId, UrlPath};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Publish { slot: u8, nodes: Vec<u8>, size: u16 },
    Delete { slot: u8 },
    Replicate { slot: u8, node: u8 },
    Offload { slot: u8, node: u8 },
    Rename { slot: u8, to_slot: u8 },
}

const NODES: usize = 4;
const SLOTS: u8 = 12;

fn slot_path(slot: u8) -> UrlPath {
    format!("/dir{}/file{}.html", slot % 3, slot)
        .parse()
        .unwrap()
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            0..SLOTS,
            prop::collection::vec(0..NODES as u8, 1..3),
            1u16..5_000
        )
            .prop_map(|(slot, nodes, size)| Op::Publish { slot, nodes, size }),
        (0..SLOTS).prop_map(|slot| Op::Delete { slot }),
        (0..SLOTS, 0..NODES as u8).prop_map(|(slot, node)| Op::Replicate { slot, node }),
        (0..SLOTS, 0..NODES as u8).prop_map(|(slot, node)| Op::Offload { slot, node }),
        (0..SLOTS, 0..SLOTS).prop_map(|(slot, to_slot)| Op::Rename { slot, to_slot }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn single_system_image_stays_consistent(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let mut console = RemoteConsole::new(Controller::new(Cluster::start(NODES, 1 << 20)));
        // model: slot -> (content id, replica set)
        let mut model: HashMap<u8, (u32, Vec<u8>)> = HashMap::new();
        let mut next_content = 0u32;

        for op in ops {
            match op {
                Op::Publish { slot, nodes, size } => {
                    let path = slot_path(slot);
                    let mut uniq = nodes.clone();
                    uniq.sort_unstable();
                    uniq.dedup();
                    let node_ids: Vec<NodeId> = uniq.iter().map(|&n| NodeId(n as u16)).collect();
                    let r = console.publish(
                        &path,
                        ContentId(next_content),
                        ContentKind::StaticHtml,
                        size as u64,
                        &node_ids,
                    );
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(slot) {
                        prop_assert!(r.is_ok(), "publish failed: {:?}", r.err());
                        e.insert((next_content, uniq));
                        next_content += 1;
                    } else {
                        prop_assert!(r.is_err(), "duplicate publish must fail");
                    }
                }
                Op::Delete { slot } => {
                    let r = console.delete(&slot_path(slot));
                    prop_assert_eq!(r.is_ok(), model.remove(&slot).is_some());
                }
                Op::Replicate { slot, node } => {
                    let r = console.replicate(&slot_path(slot), NodeId(node as u16));
                    match model.get_mut(&slot) {
                        Some((_, replicas)) if !replicas.contains(&node) => {
                            prop_assert!(r.is_ok());
                            replicas.push(node);
                        }
                        _ => prop_assert!(r.is_err()),
                    }
                }
                Op::Offload { slot, node } => {
                    let r = console.offload(&slot_path(slot), NodeId(node as u16));
                    match model.get_mut(&slot) {
                        Some((_, replicas))
                            if replicas.contains(&node) && replicas.len() > 1 =>
                        {
                            prop_assert!(r.is_ok());
                            replicas.retain(|&n| n != node);
                        }
                        _ => prop_assert!(r.is_err()),
                    }
                }
                Op::Rename { slot, to_slot } => {
                    let r = console.rename(&slot_path(slot), &slot_path(to_slot));
                    let ok = slot != to_slot
                        && model.contains_key(&slot)
                        && !model.contains_key(&to_slot);
                    prop_assert_eq!(r.is_ok(), ok, "rename {} -> {}", slot, to_slot);
                    if ok {
                        let v = model.remove(&slot).expect("checked");
                        model.insert(to_slot, v);
                    }
                }
            }
            // Invariant: brokers and table agree after every operation.
            let problems = console.controller().verify_consistency();
            prop_assert!(problems.is_empty(), "inconsistent: {problems:?}");
        }

        // Final: the console view matches the model exactly.
        let view = console.tree_view();
        prop_assert_eq!(view.len(), model.len());
        for row in view {
            let slot = model
                .iter()
                .find(|(_, (id, _))| ContentId(*id) == row.content)
                .map(|(slot, _)| *slot)
                .expect("every view row is in the model");
            prop_assert_eq!(slot_path(slot), row.path.clone());
            let mut got: Vec<u8> = row.locations.iter().map(|n| n.0 as u8).collect();
            got.sort_unstable();
            let mut want = model[&slot].1.clone();
            want.sort_unstable();
            prop_assert_eq!(got, want, "replica sets agree for {}", row.path);
        }
        console.shutdown();
    }
}
