//! Property tests for the HTTP wire layer: responses round-trip for
//! arbitrary bodies, requests for arbitrary valid paths, and the parser
//! never panics on garbage.

use cpms_httpd::http::{read_request, read_response, write_request, write_response, ParseError};
use cpms_model::UrlPath;
use proptest::prelude::*;
use std::io::BufReader;

fn path_strategy() -> impl Strategy<Value = UrlPath> {
    prop::collection::vec("[a-zA-Z0-9_.-]{1,12}", 1..6).prop_map(|segs| {
        let mut p = UrlPath::root();
        for s in segs {
            // generated segments can be "." or ".."; replace those
            let s = if s == "." || s == ".." {
                "dot".to_string()
            } else {
                s
            };
            p = p.join(&s).expect("valid segment");
        }
        p
    })
}

proptest! {
    /// write_response → read_response recovers status and body exactly,
    /// for arbitrary binary bodies.
    #[test]
    fn response_roundtrip(
        status in prop_oneof![Just(200u16), Just(404), Just(502), Just(503)],
        body in prop::collection::vec(any::<u8>(), 0..16_384),
        keep_alive in any::<bool>(),
    ) {
        let mut wire = Vec::new();
        write_response(&mut wire, status, &body, keep_alive).expect("write");
        let resp = read_response(&mut BufReader::new(&wire[..])).expect("read");
        prop_assert_eq!(resp.status, status);
        prop_assert_eq!(resp.body, body);
    }

    /// write_request → read_request recovers the normalized path.
    #[test]
    fn request_roundtrip(path in path_strategy()) {
        let mut wire = Vec::new();
        write_request(&mut wire, &path).expect("write");
        let req = read_request(&mut BufReader::new(&wire[..])).expect("read");
        prop_assert_eq!(req.path, path);
        prop_assert!(req.keep_alive);
        prop_assert!(!req.http10);
    }

    /// Pipelined request sequences parse one-by-one in order.
    #[test]
    fn pipelined_requests(paths in prop::collection::vec(path_strategy(), 1..8)) {
        let mut wire = Vec::new();
        for p in &paths {
            write_request(&mut wire, p).expect("write");
        }
        let mut reader = BufReader::new(&wire[..]);
        for p in &paths {
            let req = read_request(&mut reader).expect("read");
            prop_assert_eq!(&req.path, p);
        }
        prop_assert!(matches!(
            read_request(&mut reader),
            Err(ParseError::ConnectionClosed)
        ));
    }

    /// The request parser never panics on arbitrary bytes — it returns an
    /// error or (rarely) parses something.
    #[test]
    fn parser_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = read_request(&mut BufReader::new(&bytes[..]));
        let _ = read_response(&mut BufReader::new(&bytes[..]));
    }

    /// Responses claiming absurd content lengths fail cleanly rather than
    /// hanging or panicking.
    #[test]
    fn truncated_bodies_error(claimed in 1usize..100_000, actual in 0usize..64) {
        prop_assume!(actual < claimed);
        let head = format!(
            "HTTP/1.1 200 OK\r\nContent-Length: {claimed}\r\n\r\n"
        );
        let mut wire = head.into_bytes();
        wire.extend(std::iter::repeat_n(b'x', actual));
        let result = read_response(&mut BufReader::new(&wire[..]));
        prop_assert!(result.is_err(), "truncated body must error");
    }
}
