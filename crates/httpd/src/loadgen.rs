//! Reactor-driven multi-connection HTTP load generator.
//!
//! The request-latency bench and the proxy's high-concurrency smoke both
//! need to *hold open* thousands of keep-alive connections without
//! spending a thread on each — exactly the problem the proxy's data plane
//! solves, so the client side reuses the same machinery: one thread, one
//! [`Poller`](cpms_reactor::Poller), and a slab of non-blocking
//! connection state machines.
//!
//! Two driving modes:
//!
//! - **closed loop** (`pace: None`): each connection fires its next
//!   request the moment the previous response completes — classic
//!   benchmark hammering, concurrency = in-flight requests.
//! - **open loop** (`pace: Some(gap)`): each connection spaces request
//!   *starts* at least `gap` apart, staggered across connections, so
//!   10 000 connections can sit mostly idle while still producing a
//!   steady aggregate request rate. This is how real fleets of browsers
//!   look to a front end: connection count ≫ instantaneous load.
//!
//! `churn_every` closes and re-dials a connection after that many
//! requests, exercising the proxy's accept path under steady load.

use crate::http::{parse_response_head, request_head};
use cpms_model::UrlPath;
use cpms_reactor::{new_poller, Interest, Slab, SlabKey, TimerId, TimerWheel, Token};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

/// Read scratch size; responses in this workspace are far smaller.
const SCRATCH: usize = 16 * 1024;
/// Upper bound on one poll wait, so the loop revisits timers regularly.
const POLL_CAP: Duration = Duration::from_millis(500);
/// Dial this many connections, then yield briefly: keeps the connect
/// storm from overflowing the listener's accept backlog at 10k scale.
const CONNECT_BATCH: usize = 64;

/// What to run: how many connections, how hard, for how long.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent keep-alive connections to hold open.
    pub connections: usize,
    /// Requests each connection issues over its lifetime.
    pub requests_per_conn: u64,
    /// Minimum gap between request starts on one connection; `None`
    /// means closed-loop (send the next request immediately).
    pub pace: Option<Duration>,
    /// Close and re-dial a connection after this many requests
    /// (0 = keep every connection for its whole life).
    pub churn_every: u64,
}

/// What happened: counters plus every per-request latency sample.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// Requests that received a complete response.
    pub completed: u64,
    /// Requests lost to connection failures (not retried).
    pub errors: u64,
    /// Completed responses whose status was not 200.
    pub non_200: u64,
    /// Re-dials: scheduled churn plus error recovery.
    pub reconnects: u64,
    /// Send-to-last-body-byte latency of each completed request, ns.
    pub latencies_ns: Vec<u64>,
}

impl LoadReport {
    /// The `p`-th percentile (0.0..=1.0) of the latency samples, in
    /// nanoseconds; 0 when no samples were collected.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_ns.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }
}

/// One keep-alive connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Unsent request bytes (a request head; requests have no body).
    out: Vec<u8>,
    out_pos: usize,
    /// Bytes read and not yet consumed by response parsing.
    inbuf: Vec<u8>,
    /// A request is in flight (sent or sending, response incomplete).
    awaiting: bool,
    /// `Some(n)`: response head parsed, `n` body bytes still to read.
    remaining: Option<usize>,
    /// Requests started on this logical connection (survives re-dials).
    issued: u64,
    since_churn: u64,
    started: Instant,
    last_send: Instant,
    timer: Option<TimerId>,
    interest: Interest,
}

impl Conn {
    fn desired_interest(&self) -> Interest {
        Interest {
            // Always read: a server-side close must wake us even while
            // the connection is idle between paced requests.
            read: true,
            write: self.out_pos < self.out.len(),
        }
    }
}

/// Everything the event loop threads through its helpers.
struct Driver<'a> {
    addr: SocketAddr,
    paths: &'a [UrlPath],
    config: &'a LoadConfig,
    poller: Box<dyn cpms_reactor::Poller>,
    timers: TimerWheel,
    timer_conns: HashMap<TimerId, SlabKey>,
    conns: Slab<Conn>,
    scratch: Vec<u8>,
    report: LoadReport,
    /// Global request sequence, cycles the path list.
    seq: u64,
}

/// Drives `config.connections` keep-alive connections against `addr`,
/// cycling requests through `paths`, and returns the aggregate report.
/// Runs entirely on the calling thread.
///
/// # Errors
///
/// Connection-establishment or poller failures during setup; individual
/// connection failures mid-run are counted in the report instead.
///
/// # Panics
///
/// If `paths` is empty or `config.connections` is zero.
pub fn run(addr: SocketAddr, paths: &[UrlPath], config: &LoadConfig) -> io::Result<LoadReport> {
    assert!(!paths.is_empty(), "loadgen needs at least one path");
    assert!(
        config.connections > 0,
        "loadgen needs at least one connection"
    );
    let mut driver = Driver {
        addr,
        paths,
        config,
        poller: new_poller()?,
        // 1ms tick: pace timers quantize to the tick, so a coarse tick
        // would re-bunch the staggered send times into per-tick bursts.
        timers: TimerWheel::new(Duration::from_millis(1), 1024),
        timer_conns: HashMap::new(),
        conns: Slab::new(),
        scratch: vec![0u8; SCRATCH],
        report: LoadReport::default(),
        seq: 0,
    };

    // Dial everyone first; paced connections get their first-send timers
    // only once every dial is done. Scheduling during the dial loop would
    // leave the early offsets overdue by the time the event loop starts
    // (dialing 10k sockets takes a while), and they would all fire as one
    // synchronized burst instead of a flat aggregate rate.
    let paced = config.pace.filter(|p| !p.is_zero());
    let mut dialed: Vec<SlabKey> = Vec::with_capacity(config.connections);
    for idx in 0..config.connections {
        let stream = dial(addr)?;
        let key = driver.conns.insert(Conn {
            stream,
            out: Vec::new(),
            out_pos: 0,
            inbuf: Vec::new(),
            awaiting: false,
            remaining: None,
            issued: 0,
            since_churn: 0,
            started: Instant::now(),
            last_send: Instant::now(),
            timer: None,
            interest: Interest::READ,
        });
        let conn = driver.conns.get_mut(key).expect("fresh key");
        driver
            .poller
            .register(conn.stream.as_raw_fd(), Token(key), Interest::READ)?;
        if paced.is_some() {
            dialed.push(key);
        } else {
            driver.start_request(key);
        }
        if (idx + 1) % CONNECT_BATCH == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    if let Some(pace) = paced {
        // Stagger first sends across one pace window from a common base,
        // so each period sees every connection exactly once, evenly.
        let base = Instant::now();
        for (idx, &key) in dialed.iter().enumerate() {
            let offset = (pace * idx as u32) / config.connections as u32;
            let id = driver.timers.schedule_at(base + offset);
            driver.conns.get_mut(key).expect("dialed key").timer = Some(id);
            driver.timer_conns.insert(id, key);
        }
    }

    let mut events = Vec::new();
    let mut fired: Vec<TimerId> = Vec::new();
    while !driver.conns.is_empty() {
        let now = Instant::now();
        let timeout = driver
            .timers
            .next_timeout(now)
            .map_or(POLL_CAP, |t| t.min(POLL_CAP));
        driver.poller.wait(&mut events, Some(timeout))?;
        for ev in &events {
            driver.on_event(ev.token.0, ev.readable || ev.is_error, ev.writable);
        }
        fired.clear();
        driver.timers.expire_into(Instant::now(), &mut fired);
        for &id in &fired {
            if let Some(key) = driver.timer_conns.remove(&id) {
                if let Some(conn) = driver.conns.get_mut(key) {
                    conn.timer = None;
                    driver.start_request(key);
                }
            }
        }
    }
    Ok(driver.report)
}

fn dial(addr: SocketAddr) -> io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_nonblocking(true)?;
    Ok(stream)
}

impl Driver<'_> {
    /// Queues the next request head on a connection and pushes what the
    /// socket will take right away.
    fn start_request(&mut self, key: SlabKey) {
        let path = &self.paths[(self.seq % self.paths.len() as u64) as usize];
        let head = request_head(path, None);
        self.seq += 1;
        let Some(conn) = self.conns.get_mut(key) else {
            return;
        };
        conn.out.clear();
        conn.out_pos = 0;
        conn.out.extend_from_slice(head.as_bytes());
        conn.issued += 1;
        conn.since_churn += 1;
        conn.awaiting = true;
        conn.remaining = None;
        conn.started = Instant::now();
        conn.last_send = conn.started;
        if !self.flush_out(key) {
            self.recover(key, true);
            return;
        }
        self.sync_interest(key);
    }

    /// Writes pending request bytes; false means the connection died.
    fn flush_out(&mut self, key: SlabKey) -> bool {
        let Some(conn) = self.conns.get_mut(key) else {
            return true;
        };
        while conn.out_pos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => return false,
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        true
    }

    fn on_event(&mut self, key: SlabKey, readable: bool, writable: bool) {
        if self.conns.get(key).is_none() {
            return; // stale token from a slot recycled this batch
        }
        if writable && !self.flush_out(key) {
            self.recover(key, true);
            return;
        }
        if readable && !self.read_and_parse(key) {
            return; // recover() already ran inside
        }
        self.sync_interest(key);
    }

    /// Reads everything available and advances response parsing; false
    /// means the connection was torn down (recovered or finished).
    fn read_and_parse(&mut self, key: SlabKey) -> bool {
        loop {
            let Some(conn) = self.conns.get_mut(key) else {
                return false;
            };
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    // Server closed. Mid-response that is an error; on an
                    // idle keep-alive connection it is routine (the peer
                    // shed it) and costs only a re-dial.
                    let was_awaiting = conn.awaiting;
                    self.recover(key, was_awaiting);
                    return false;
                }
                Ok(n) => {
                    let chunk = &self.scratch[..n];
                    conn.inbuf.extend_from_slice(chunk);
                    if !self.consume_responses(key) {
                        return false;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.recover(key, true);
                    return false;
                }
            }
        }
    }

    /// Advances head parsing and body consumption over `inbuf`; false
    /// means the connection was torn down.
    fn consume_responses(&mut self, key: SlabKey) -> bool {
        loop {
            let Some(conn) = self.conns.get_mut(key) else {
                return false;
            };
            if !conn.awaiting {
                // Bytes with no request outstanding: protocol desync.
                if conn.inbuf.is_empty() {
                    return true;
                }
                self.recover(key, false);
                return false;
            }
            if conn.remaining.is_none() {
                match parse_response_head(&conn.inbuf) {
                    Ok(None) => return true, // head still incomplete
                    Ok(Some(head)) => {
                        if head.status != 200 {
                            self.report.non_200 += 1;
                        }
                        conn.inbuf.drain(..head.head_len);
                        conn.remaining = Some(head.content_length);
                    }
                    Err(_) => {
                        self.recover(key, true);
                        return false;
                    }
                }
            }
            let Some(conn) = self.conns.get_mut(key) else {
                return false;
            };
            if let Some(remaining) = conn.remaining {
                let take = remaining.min(conn.inbuf.len());
                conn.inbuf.drain(..take);
                let left = remaining - take;
                conn.remaining = Some(left);
                if left > 0 {
                    return true; // need more body bytes
                }
                if !self.complete_request(key) {
                    return false;
                }
            }
        }
    }

    /// One response fully received: record it and line up what's next.
    /// False when the connection was closed (finished or churned).
    fn complete_request(&mut self, key: SlabKey) -> bool {
        let Some(conn) = self.conns.get_mut(key) else {
            return false;
        };
        self.report.completed += 1;
        self.report
            .latencies_ns
            .push(conn.started.elapsed().as_nanos() as u64);
        conn.awaiting = false;
        conn.remaining = None;
        if conn.issued >= self.config.requests_per_conn {
            self.finish(key);
            return false;
        }
        if self.config.churn_every > 0 {
            let due = self
                .conns
                .get(key)
                .is_some_and(|c| c.since_churn >= self.config.churn_every);
            if due {
                if !self.redial(key) {
                    return false;
                }
                if let Some(conn) = self.conns.get_mut(key) {
                    conn.since_churn = 0;
                }
            }
        }
        self.schedule_next(key);
        self.conns.get(key).is_some()
    }

    /// Starts the next request now (closed loop) or arms a pace timer.
    fn schedule_next(&mut self, key: SlabKey) {
        let Some(pace) = self.config.pace.filter(|p| !p.is_zero()) else {
            self.start_request(key);
            return;
        };
        let Some(conn) = self.conns.get_mut(key) else {
            return;
        };
        let now = Instant::now();
        let due = conn.last_send + pace;
        if due <= now {
            self.start_request(key);
        } else {
            let id = self.timers.schedule_at(due);
            conn.timer = Some(id);
            self.timer_conns.insert(id, key);
        }
    }

    /// Replaces a connection's socket with a fresh one (same slab slot,
    /// same progress counters). False: the re-dial itself failed and the
    /// connection was abandoned.
    ///
    /// The re-dial is **non-blocking**: this runs mid-measurement, and a
    /// blocking connect that loses its SYN would stall the whole event
    /// loop for a retransmit timeout, polluting every other connection's
    /// latency samples. The handshake completes in the background; the
    /// next request's bytes sit queued until the socket turns writable,
    /// and a failed handshake surfaces as an error event on the fd.
    fn redial(&mut self, key: SlabKey) -> bool {
        let Some(conn) = self.conns.get_mut(key) else {
            return false;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        let fresh = cpms_reactor::connect_nonblocking(self.addr).inspect(|stream| {
            let _ = stream.set_nodelay(true);
        });
        match fresh {
            Ok(stream) => {
                conn.stream = stream;
                conn.out.clear();
                conn.out_pos = 0;
                conn.inbuf.clear();
                conn.interest = Interest::READ;
                self.report.reconnects += 1;
                let fd = conn.stream.as_raw_fd();
                if self
                    .poller
                    .register(fd, Token(key), Interest::READ)
                    .is_err()
                {
                    self.abandon(key);
                    return false;
                }
                true
            }
            Err(_) => {
                self.abandon(key);
                false
            }
        }
    }

    /// Handles a connection failure: the in-flight request (if any)
    /// becomes an error, the socket is replaced, and the connection
    /// resumes its remaining schedule.
    fn recover(&mut self, key: SlabKey, in_flight_failed: bool) {
        let Some(conn) = self.conns.get_mut(key) else {
            return;
        };
        if conn.awaiting && in_flight_failed {
            self.report.errors += 1;
        }
        let was_awaiting = conn.awaiting;
        conn.awaiting = false;
        conn.remaining = None;
        if let Some(id) = conn.timer.take() {
            self.timers.cancel(id);
            self.timer_conns.remove(&id);
            // The pace timer was pending: re-dial and re-arm it below.
        }
        let done = conn.issued >= self.config.requests_per_conn;
        if done && was_awaiting {
            // Last request lost; nothing left to send on this connection.
            self.finish(key);
            return;
        }
        if !self.redial(key) {
            return;
        }
        self.schedule_next(key);
    }

    /// Clean completion: deregister, drop, and forget the connection.
    fn finish(&mut self, key: SlabKey) {
        if let Some(conn) = self.conns.remove(key) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
        }
    }

    /// Abandons a connection whose re-dial failed, charging its unsent
    /// requests as errors so `completed + errors` stays accountable.
    fn abandon(&mut self, key: SlabKey) {
        if let Some(conn) = self.conns.remove(key) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.report.errors += self.config.requests_per_conn.saturating_sub(conn.issued);
        }
    }

    fn sync_interest(&mut self, key: SlabKey) {
        let Some(conn) = self.conns.get_mut(key) else {
            return;
        };
        let want = conn.desired_interest();
        if want != conn.interest {
            conn.interest = want;
            let fd = conn.stream.as_raw_fd();
            if self.poller.reregister(fd, Token(key), want).is_err() {
                self.recover(key, true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::origin::{OriginServer, SiteContent};
    use crate::ContentAwareProxy;
    use cpms_model::{ContentId, ContentKind, NodeId};
    use cpms_urltable::{UrlEntry, UrlTable};

    fn start_stack() -> (OriginServer, ContentAwareProxy) {
        let mut site = SiteContent::new();
        site.add_static("/lg", b"loadgen-body".to_vec());
        let origin = OriginServer::start(NodeId(0), site).unwrap();
        let mut table = UrlTable::new();
        table
            .insert(
                "/lg".parse().unwrap(),
                UrlEntry::new(ContentId(0), ContentKind::StaticHtml, 16)
                    .with_locations([NodeId(0)]),
            )
            .unwrap();
        let proxy = ContentAwareProxy::start(table, vec![origin.addr()], 4).unwrap();
        (origin, proxy)
    }

    #[test]
    fn closed_loop_completes_every_request() {
        let (_origin, proxy) = start_stack();
        let paths: Vec<UrlPath> = vec!["/lg".parse().unwrap()];
        let report = run(
            proxy.addr(),
            &paths,
            &LoadConfig {
                connections: 16,
                requests_per_conn: 8,
                pace: None,
                churn_every: 0,
            },
        )
        .unwrap();
        assert_eq!(report.completed, 128);
        assert_eq!(report.errors, 0);
        assert_eq!(report.non_200, 0);
        assert_eq!(report.reconnects, 0);
        assert_eq!(report.latencies_ns.len(), 128);
        assert!(report.percentile_ns(0.99) >= report.percentile_ns(0.50));
        let mut proxy = proxy;
        proxy.shutdown();
    }

    #[test]
    fn paced_open_loop_with_churn_reconnects() {
        let (_origin, proxy) = start_stack();
        let paths: Vec<UrlPath> = vec!["/lg".parse().unwrap()];
        let report = run(
            proxy.addr(),
            &paths,
            &LoadConfig {
                connections: 8,
                requests_per_conn: 6,
                pace: Some(Duration::from_millis(10)),
                churn_every: 3,
            },
        )
        .unwrap();
        assert_eq!(report.completed, 48);
        assert_eq!(report.errors, 0);
        // 6 requests with churn_every=3: one mid-life re-dial per conn
        // (the second is superseded by normal completion).
        assert!(report.reconnects >= 8, "churn re-dials: {report:?}");
        let mut proxy = proxy;
        proxy.shutdown();
    }
}
