//! The proxy's event-driven data plane: one worker thread, many
//! connections.
//!
//! Each worker owns a reactor poller, a timer wheel, a slab of connection
//! state machines, a private [`LiveRouter`] (pinned snapshot + lookup
//! cache), a shard of the pre-forked backend pool, and reusable scratch
//! buffers. Connections are handed over from the acceptor thread through a
//! bounded queue; from then on every byte of the connection's life is
//! served by this worker without blocking:
//!
//! - **Request heads** accumulate in a per-connection read buffer and are
//!   scanned incrementally ([`crate::http::head_complete`]); a timer-wheel
//!   deadline bounds how long a client may trickle a head (slowloris
//!   defence), replacing the old blocking `SO_RCVTIMEO` dance.
//! - **Relays** are non-blocking state machines over a pooled backend
//!   connection: enqueue the request head, parse the response head
//!   incrementally, then stream the body through a reusable scratch buffer
//!   into the client's write ring.
//! - **Client writes** drain the ring with vectored I/O; a high-water mark
//!   on the ring pauses backend reads (backpressure) until the client
//!   catches up, so one slow client cannot balloon the proxy's memory.
//! - **Keep-alive** clients multiplex any number of requests over their
//!   connection, each bound to a pool connection only for the exchange —
//!   pipelined requests parse straight out of the read buffer without
//!   another poller round-trip.
//!
//! Tokens pack the slab key with a side bit (client vs backend fd), and
//! slab keys carry generations, so a stale readiness event for a recycled
//! slot misses harmlessly instead of touching the wrong connection.

use crate::http::{
    head_complete, parse_request_head, parse_response_head, request_head, response_head,
    ParseError, Request,
};
use crate::pool::SocketPool;
use crate::proxy::{
    HandoffQueue, ProxyStats, TenantSlot, METRICS_JSON_PATH, METRICS_PATH, SERIES_JSON_PATH,
    TRACE_JSON_PATH,
};
use cpms_dispatch::LiveRouter;
use cpms_model::UrlPath;
use cpms_obs::{
    Counter, Gauge, HistogramRecorder, MetricsRegistry, OwnedSpan, RequestId, SpanCollector,
};
use cpms_reactor::{
    new_poller, Event, Interest, Poller, Slab, SlabKey, TimerId, TimerWheel, Token, WakeReceiver,
};
use cpms_urltable::SnapshotHandle;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io::{self, IoSlice, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a client may take to deliver a request head once its first
/// byte has arrived. Generous enough for slow clients that trickle the
/// request line and headers in separate packets; bounded so a stalled
/// (or malicious slowloris) client holds nothing but one slab slot.
pub(crate) const REQUEST_READ_TIMEOUT: Duration = Duration::from_secs(2);

/// How long one backend exchange (request write + response head + body
/// stream) may take before the proxy gives up on the relay.
const RELAY_TIMEOUT: Duration = Duration::from_secs(10);

/// Requests slower end-to-end than this leave a post-mortem event even
/// when they succeed.
const SLOW_REQUEST: Duration = Duration::from_millis(250);

/// Upper bound on a request or response head.
const HEAD_CAP: usize = 16 * 1024;

/// Reusable per-worker read buffer size (also the relay's streaming
/// chunk size).
const SCRATCH: usize = 16 * 1024;

/// Client write-ring high-water mark: above this, backend reads pause.
const WBUF_HIGH: usize = 64 * 1024;

/// Client write-ring low-water mark: below this, paused backends resume.
const WBUF_LOW: usize = 16 * 1024;

/// Cap on the poller wait so a worker re-checks the stop flag even if no
/// event or timer arrives (wakers make shutdown prompt; this is a belt).
const POLL_CAP: Duration = Duration::from_millis(500);

/// Timer-wheel granularity. Deadlines here are seconds-scale, so a
/// coarse tick keeps the wheel sweep trivial.
const TIMER_TICK: Duration = Duration::from_millis(25);
const TIMER_SLOTS: usize = 256;

/// Poller token for the worker's waker pipe.
const WAKER_TOKEN: u64 = u64::MAX;

fn client_token(key: SlabKey) -> Token {
    Token(key << 1)
}

fn backend_token(key: SlabKey) -> Token {
    Token((key << 1) | 1)
}

/// Everything a worker thread needs, moved into it at spawn.
pub(crate) struct WorkerBoot {
    pub idx: usize,
    pub workers: usize,
    pub handle: SnapshotHandle,
    pub pools: Arc<Vec<SocketPool>>,
    pub in_flight: Arc<Vec<AtomicU32>>,
    pub stats: Arc<ProxyStats>,
    pub ledgers: Arc<Vec<Mutex<HashMap<UrlPath, u64>>>>,
    pub registry: Arc<MetricsRegistry>,
    pub stop: Arc<AtomicBool>,
    pub queue: Arc<HandoffQueue>,
    pub wake_rx: WakeReceiver,
    pub active: Arc<AtomicI64>,
    pub tenants: Arc<Vec<TenantSlot>>,
}

/// Per-worker metric handles: histogram recorders bound to this worker's
/// shard (recording is a few relaxed atomics, no lock) plus the shared
/// counters. Resolved once at worker start, off the request path.
struct WorkerMetrics {
    parse_ns: HistogramRecorder,
    relay_ns: HistogramRecorder,
    request_ns: HistogramRecorder,
    conn_lifetime_ns: HistogramRecorder,
    connections: Arc<Counter>,
    requests: Arc<Counter>,
    relayed: Arc<Counter>,
    unroutable: Arc<Counter>,
    backend_errors: Arc<Counter>,
    pool_failures: Arc<Counter>,
    malformed: Arc<Counter>,
    conn_active: Arc<Gauge>,
    conn_closed: Arc<Counter>,
    conn_tenant_rejected: Arc<Counter>,
    reactor_polls: Arc<Counter>,
    reactor_events: Arc<Counter>,
    reactor_wakeups: Arc<Counter>,
    reactor_timers_fired: Arc<Counter>,
    /// The registry's span collector, resolved once so opening a span
    /// on the request path costs no registry lookup.
    spans: Arc<SpanCollector>,
}

impl WorkerMetrics {
    fn new(registry: &MetricsRegistry, idx: usize, workers: usize) -> Self {
        let recorder = |name| registry.histogram_with_shards(name, workers).recorder(idx);
        WorkerMetrics {
            spans: Arc::clone(registry.spans()),
            parse_ns: recorder("proxy_parse_ns"),
            relay_ns: recorder("proxy_relay_ns"),
            request_ns: recorder("proxy_request_ns"),
            conn_lifetime_ns: recorder("proxy_conn_lifetime_ns"),
            connections: registry.counter("proxy_connections_total"),
            requests: registry.counter("proxy_requests_total"),
            relayed: registry.counter("proxy_relayed_total"),
            unroutable: registry.counter("proxy_unroutable_total"),
            backend_errors: registry.counter("proxy_backend_errors_total"),
            pool_failures: registry.counter("proxy_pool_failures_total"),
            malformed: registry.counter("proxy_malformed_total"),
            conn_active: registry.gauge("proxy_conn_active"),
            conn_closed: registry.counter("proxy_conn_closed_total"),
            conn_tenant_rejected: registry.counter("proxy_conn_tenant_rejected_total"),
            reactor_polls: registry.counter("reactor_polls_total"),
            reactor_events: registry.counter("reactor_events_total"),
            reactor_wakeups: registry.counter("reactor_wakeups_total"),
            reactor_timers_fired: registry.counter("reactor_timers_fired_total"),
        }
    }
}

/// Which deadline a connection's (single) pending timer represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TimerPurpose {
    /// The request head must complete before this fires.
    HeadDeadline,
    /// The backend exchange must complete before this fires.
    RelayDeadline,
}

/// What the event handler wants done with the connection afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    Keep,
    Close,
}

/// Phase of one backend exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RelayPhase {
    /// Writing the request head to the backend.
    Send,
    /// Accumulating the response head.
    Head,
    /// Streaming `remaining` body bytes through to the client.
    Body,
}

/// One in-flight backend exchange, owned by the client connection it
/// serves.
struct Relay {
    stream: TcpStream,
    node: usize,
    /// Request-head bytes not yet written to the backend.
    out: VecDeque<u8>,
    /// Response-head accumulation.
    inbuf: Vec<u8>,
    phase: RelayPhase,
    /// Body bytes still to stream once the head is parsed.
    remaining: usize,
    started: Instant,
    /// Interest currently registered for the backend fd.
    interest: Interest,
    /// Backend reads paused by the client write-ring high-water mark.
    paused: bool,
    /// True once the client response head has been enqueued — after
    /// that, a backend failure can only truncate, not turn into a 502.
    head_sent: bool,
    span: Option<OwnedSpan>,
}

/// One client connection's full state.
struct Conn {
    key: SlabKey,
    stream: TcpStream,
    /// Bytes read from the client, scanned for request heads.
    rbuf: Vec<u8>,
    /// Bytes to write to the client (head + body of queued responses).
    wbuf: VecDeque<u8>,
    /// Interest currently registered for the client fd.
    interest: Interest,
    /// Close once `wbuf` drains.
    close_after_flush: bool,
    /// The client's write side reached EOF.
    client_eof: bool,
    timer: Option<(TimerId, TimerPurpose)>,
    /// Set while a request head is being accumulated or served.
    request_started: Option<Instant>,
    request_id: Option<RequestId>,
    /// The current request's keep-alive disposition.
    keep_alive: bool,
    /// The current request's path (for slow-request post-mortems).
    path: Option<UrlPath>,
    span: Option<OwnedSpan>,
    /// Index into the tenant table this connection counted into.
    tenant: Option<usize>,
    opened: Instant,
    relay: Option<Relay>,
}

impl Conn {
    fn new(stream: TcpStream, opened: Instant) -> Conn {
        Conn {
            key: 0,
            stream,
            rbuf: Vec::new(),
            wbuf: VecDeque::new(),
            interest: Interest::READ,
            close_after_flush: false,
            client_eof: false,
            timer: None,
            request_started: None,
            request_id: None,
            keep_alive: true,
            path: None,
            span: None,
            tenant: None,
            opened,
            relay: None,
        }
    }

    /// The client interest this connection's state calls for.
    fn desired_interest(&self) -> Interest {
        // Read while waiting for (more of) a request. While a relay is in
        // flight or the connection is draining to close, reads stop — with
        // level-triggered polling an unread pipelined request would spin
        // the loop. The poller re-fires readiness when interest returns.
        let read = self.relay.is_none()
            && !self.close_after_flush
            && !self.client_eof
            && self.rbuf.len() < HEAD_CAP;
        Interest {
            read,
            write: !self.wbuf.is_empty(),
        }
    }
}

/// The worker's non-connection state: poller, timers, router, metrics,
/// and every shared handle. Kept apart from the connection slab so event
/// handlers can hold `&mut Conn` and `&mut Cx` simultaneously.
struct Cx {
    idx: usize,
    handle: SnapshotHandle,
    pools: Arc<Vec<SocketPool>>,
    in_flight: Arc<Vec<AtomicU32>>,
    stats: Arc<ProxyStats>,
    ledgers: Arc<Vec<Mutex<HashMap<UrlPath, u64>>>>,
    registry: Arc<MetricsRegistry>,
    active: Arc<AtomicI64>,
    tenants: Arc<Vec<TenantSlot>>,
    router: LiveRouter,
    m: WorkerMetrics,
    poller: Box<dyn Poller>,
    timers: TimerWheel,
    timer_conns: HashMap<TimerId, SlabKey>,
    scratch: Vec<u8>,
}

/// The worker thread body.
pub(crate) fn worker_loop(boot: WorkerBoot) {
    let mut router = LiveRouter::new(&boot.handle, 1024);
    router.attach_metrics(&boot.registry, boot.idx);
    let m = WorkerMetrics::new(&boot.registry, boot.idx, boot.workers);
    let Ok(mut poller) = new_poller() else {
        return;
    };
    if poller
        .register(boot.wake_rx.fd(), Token(WAKER_TOKEN), Interest::READ)
        .is_err()
    {
        return;
    }
    let mut cx = Cx {
        idx: boot.idx,
        handle: boot.handle,
        pools: boot.pools,
        in_flight: boot.in_flight,
        stats: boot.stats,
        ledgers: boot.ledgers,
        registry: boot.registry,
        active: boot.active,
        tenants: boot.tenants,
        router,
        m,
        poller,
        timers: TimerWheel::new(TIMER_TICK, TIMER_SLOTS),
        timer_conns: HashMap::new(),
        scratch: vec![0u8; SCRATCH],
    };
    let mut conns: Slab<Conn> = Slab::new();
    let mut events: Vec<Event> = Vec::with_capacity(256);
    let mut fired: Vec<TimerId> = Vec::new();

    loop {
        let timeout = cx
            .timers
            .next_timeout(Instant::now())
            .map_or(POLL_CAP, |t| t.min(POLL_CAP));
        if cx.poller.wait(&mut events, Some(timeout)).is_err() {
            // A broken poller means the worker cannot continue; tear down.
            break;
        }
        cx.m.reactor_polls.inc();
        if boot.stop.load(Ordering::Acquire) {
            break;
        }
        cx.m.reactor_events.add(events.len() as u64);
        for &ev in &events {
            if ev.token.0 == WAKER_TOKEN {
                boot.wake_rx.drain();
                cx.m.reactor_wakeups.inc();
                continue;
            }
            dispatch(&mut cx, &mut conns, ev);
        }
        drain_handoff(&mut cx, &mut conns, &boot.queue);
        fired.clear();
        cx.timers.expire_into(Instant::now(), &mut fired);
        for &id in &fired {
            fire_timer(&mut cx, &mut conns, id);
        }
    }

    // Teardown: close every connection (and any not yet adopted) so the
    // global active count drops to zero.
    for key in conns.keys() {
        if let Some(conn) = conns.remove(key) {
            teardown(&mut cx, conn);
        }
    }
    while let Some(stream) = boot.queue.pop() {
        drop(stream);
        cx.active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Adopts connections the acceptor queued for this worker.
fn drain_handoff(cx: &mut Cx, conns: &mut Slab<Conn>, queue: &HandoffQueue) {
    while let Some(stream) = queue.pop() {
        if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
            cx.active.fetch_sub(1, Ordering::Relaxed);
            continue;
        }
        cx.stats
            .worker(cx.idx)
            .connections
            .fetch_add(1, Ordering::Relaxed);
        cx.m.connections.inc();
        cx.m.conn_active.add(1);
        let fd = stream.as_raw_fd();
        let key = conns.insert(Conn::new(stream, Instant::now()));
        if let Some(conn) = conns.get_mut(key) {
            conn.key = key;
        }
        if cx
            .poller
            .register(fd, client_token(key), Interest::READ)
            .is_err()
        {
            if let Some(conn) = conns.remove(key) {
                teardown(cx, conn);
            }
        }
    }
}

/// Routes one readiness event to the right connection and side.
fn dispatch(cx: &mut Cx, conns: &mut Slab<Conn>, ev: Event) {
    let key = ev.token.0 >> 1;
    let backend_side = ev.token.0 & 1 == 1;
    let Some(conn) = conns.get_mut(key) else {
        return; // stale token for a recycled slot
    };
    let verdict = if backend_side {
        on_backend_event(cx, conn, ev)
    } else {
        on_client_event(cx, conn, ev)
    };
    if verdict == Verdict::Close {
        if let Some(conn) = conns.remove(key) {
            teardown(cx, conn);
        }
    }
}

/// Handles a fired deadline.
fn fire_timer(cx: &mut Cx, conns: &mut Slab<Conn>, id: TimerId) {
    let Some(key) = cx.timer_conns.remove(&id) else {
        return;
    };
    let Some(conn) = conns.get_mut(key) else {
        return;
    };
    let Some((pending, purpose)) = conn.timer else {
        return;
    };
    if pending != id {
        return; // stale: the deadline was replaced
    }
    conn.timer = None;
    cx.m.reactor_timers_fired.inc();
    let verdict = match purpose {
        TimerPurpose::HeadDeadline => {
            // Client stalled mid-request-head: parse state is
            // unrecoverable, drop the connection (same contract as the
            // old blocking read timeout).
            cx.registry.events().record(
                "parse",
                conn.request_id,
                "client stalled mid-request-head".to_string(),
            );
            if let Some(span) = conn.span.as_mut() {
                span.set_error(true);
            }
            Verdict::Close
        }
        TimerPurpose::RelayDeadline => fail_relay(cx, conn, "backend relay timed out"),
    };
    if verdict == Verdict::Close {
        if let Some(conn) = conns.remove(key) {
            teardown(cx, conn);
        }
    }
}

/// Full close: cancel timers, unwind relay accounting, release fds, and
/// record connection-level metrics.
fn teardown(cx: &mut Cx, mut conn: Conn) {
    if let Some((id, _)) = conn.timer.take() {
        cx.timers.cancel(id);
        cx.timer_conns.remove(&id);
    }
    if let Some(mut relay) = conn.relay.take() {
        cx.in_flight[relay.node].fetch_sub(1, Ordering::Relaxed);
        if let Some(mut span) = relay.span.take() {
            span.set_error(true);
        }
        let _ = cx.poller.deregister(relay.stream.as_raw_fd());
        cx.pools[cx.idx].discard(relay.node, relay.stream);
        if let Some(span) = conn.span.as_mut() {
            span.set_error(true);
        }
    }
    if let Some(tenant) = conn.tenant.take() {
        cx.tenants[tenant].active.fetch_sub(1, Ordering::Relaxed);
    }
    let _ = cx.poller.deregister(conn.stream.as_raw_fd());
    cx.active.fetch_sub(1, Ordering::Relaxed);
    cx.m.conn_active.sub(1);
    cx.m.conn_closed.inc();
    cx.m.conn_lifetime_ns
        .record(u64::try_from(conn.opened.elapsed().as_nanos()).unwrap_or(u64::MAX));
}

/// (Re)arms the connection's single deadline timer.
fn set_conn_timer(cx: &mut Cx, conn: &mut Conn, purpose: TimerPurpose, after: Duration) {
    if let Some((old, _)) = conn.timer.take() {
        cx.timers.cancel(old);
        cx.timer_conns.remove(&old);
    }
    let id = cx.timers.schedule_after(Instant::now(), after);
    cx.timer_conns.insert(id, conn.key);
    conn.timer = Some((id, purpose));
}

fn clear_conn_timer(cx: &mut Cx, conn: &mut Conn) {
    if let Some((id, _)) = conn.timer.take() {
        cx.timers.cancel(id);
        cx.timer_conns.remove(&id);
    }
}

/// Re-registers the client fd if the connection's state changed what it
/// wants to hear about.
fn sync_client_interest(cx: &mut Cx, conn: &mut Conn) {
    let want = conn.desired_interest();
    if want != conn.interest {
        conn.interest = want;
        let _ = cx
            .poller
            .reregister(conn.stream.as_raw_fd(), client_token(conn.key), want);
    }
}

/// One readiness event on the client fd.
fn on_client_event(cx: &mut Cx, conn: &mut Conn, ev: Event) -> Verdict {
    if !conn.interest.read && !conn.interest.write {
        // A zero-interest registration (client parked while its relay
        // runs) can only be woken by an error or a full hangup — either
        // way the client is gone, and with level-triggered polling the
        // condition would re-fire every wait.
        return Verdict::Close;
    }
    if ev.writable && !conn.wbuf.is_empty() && flush_client(cx, conn) == Verdict::Close {
        return Verdict::Close;
    }
    if ev.readable && read_client(cx, conn) == Verdict::Close {
        return Verdict::Close;
    }
    settle(cx, conn)
}

/// Post-event epilogue: serve whatever is buffered, close once a
/// closing connection has drained, and re-sync poller interest.
fn settle(cx: &mut Cx, conn: &mut Conn) -> Verdict {
    if advance_requests(cx, conn) == Verdict::Close {
        return Verdict::Close;
    }
    if conn.close_after_flush && conn.wbuf.is_empty() {
        return Verdict::Close;
    }
    sync_client_interest(cx, conn);
    Verdict::Keep
}

/// Drains readable client bytes into `rbuf` (bounded), noting EOF.
fn read_client(cx: &mut Cx, conn: &mut Conn) -> Verdict {
    loop {
        if conn.rbuf.len() >= HEAD_CAP {
            // A head this large is handled (as malformed) by the parser;
            // during a relay it simply means the pipeline buffer is full
            // and the client can wait in the kernel's socket buffer.
            return Verdict::Keep;
        }
        match io::Read::read(&mut &conn.stream, &mut cx.scratch) {
            Ok(0) => {
                conn.client_eof = true;
                return Verdict::Keep;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&cx.scratch[..n]);
                if n < cx.scratch.len() {
                    return Verdict::Keep;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Verdict::Keep,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Verdict::Close,
        }
    }
}

/// Writes as much of the client ring as the socket accepts, with
/// vectored I/O across the ring's two segments; resumes a paused backend
/// once the ring drains below the low-water mark.
fn flush_client(cx: &mut Cx, conn: &mut Conn) -> Verdict {
    while !conn.wbuf.is_empty() {
        let (a, b) = conn.wbuf.as_slices();
        let bufs = [IoSlice::new(a), IoSlice::new(b)];
        let nbufs = if b.is_empty() { 1 } else { 2 };
        match (&conn.stream).write_vectored(&bufs[..nbufs]) {
            Ok(0) => return Verdict::Close,
            Ok(n) => {
                conn.wbuf.drain(..n);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Verdict::Close,
        }
    }
    if conn.wbuf.len() < WBUF_LOW {
        if let Some(relay) = conn.relay.as_mut() {
            if relay.paused {
                relay.paused = false;
                let want = Interest::READ;
                if relay.interest != want {
                    relay.interest = want;
                    let _ = cx.poller.reregister(
                        relay.stream.as_raw_fd(),
                        backend_token(conn.key),
                        want,
                    );
                }
            }
        }
    }
    Verdict::Keep
}

/// Appends a response to the client ring and flushes opportunistically.
fn enqueue_response(
    cx: &mut Cx,
    conn: &mut Conn,
    status: u16,
    body: &[u8],
    keep_alive: bool,
) -> Verdict {
    let head = response_head(status, body.len(), keep_alive);
    conn.wbuf.reserve(head.len() + body.len());
    conn.wbuf.extend(head.as_bytes());
    conn.wbuf.extend(body);
    if !keep_alive {
        conn.close_after_flush = true;
    }
    flush_client(cx, conn)
}

/// Serves every complete request already buffered (keep-alive clients
/// may pipeline several). Stops when a relay starts, the buffer runs
/// dry, or the connection is closing.
fn advance_requests(cx: &mut Cx, conn: &mut Conn) -> Verdict {
    loop {
        if conn.relay.is_some() || conn.close_after_flush {
            return Verdict::Keep;
        }
        if conn.rbuf.is_empty() && conn.request_started.is_none() {
            if conn.client_eof {
                // Clean EOF between requests.
                return if conn.wbuf.is_empty() {
                    Verdict::Close
                } else {
                    conn.close_after_flush = true;
                    Verdict::Keep
                };
            }
            return Verdict::Keep;
        }
        if conn.request_started.is_none() {
            // First byte of a fresh request: its clock, id, and head
            // deadline start here.
            conn.request_started = Some(Instant::now());
            conn.request_id = Some(cx.registry.next_request_id());
            cx.m.requests.inc();
            set_conn_timer(cx, conn, TimerPurpose::HeadDeadline, REQUEST_READ_TIMEOUT);
        }
        let Some(end) = head_complete(&conn.rbuf) else {
            if conn.rbuf.len() > HEAD_CAP {
                return respond_malformed(cx, conn, "head too large");
            }
            if conn.client_eof {
                // EOF mid-head: same 400 the blocking parser's
                // "eof in headers" produced.
                return respond_malformed(cx, conn, "eof in headers");
            }
            return Verdict::Keep; // more bytes needed
        };
        clear_conn_timer(cx, conn);
        let parsed = parse_request_head(&conn.rbuf[..end]);
        conn.rbuf.drain(..end);
        if let Some(started) = conn.request_started {
            cx.m.parse_ns
                .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        let request = match parsed {
            Ok(r) => r,
            Err(ParseError::Malformed(why)) => {
                return respond_malformed(cx, conn, why);
            }
            Err(_) => return Verdict::Close,
        };
        if handle_request(cx, conn, request) == Verdict::Close {
            return Verdict::Close;
        }
    }
}

/// 400s the client and closes, recording the parse failure.
fn respond_malformed(cx: &mut Cx, conn: &mut Conn, why: &str) -> Verdict {
    cx.m.malformed.inc();
    cx.registry.events().record(
        "parse",
        conn.request_id,
        format!("malformed request: {why}"),
    );
    finish_request(conn);
    enqueue_response(cx, conn, 400, b"bad request", false)
}

/// Clears per-request state once its response is fully enqueued.
fn finish_request(conn: &mut Conn) {
    conn.request_started = None;
    conn.request_id = None;
    conn.path = None;
    conn.span = None; // drop records the span
}

/// Records `proxy_request_ns` for a routed (non-admin) request and leaves
/// a post-mortem event when it was slow.
fn record_request_done(cx: &mut Cx, conn: &mut Conn) {
    let Some(started) = conn.request_started else {
        return;
    };
    let elapsed = started.elapsed();
    cx.m.request_ns
        .record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    if elapsed >= SLOW_REQUEST {
        let path = conn.path.as_ref().map_or("?", |p| p.as_str());
        cx.registry.events().record(
            "request",
            conn.request_id,
            format!("slow request {path} took {elapsed:?}"),
        );
    }
}

/// One parsed request: admin surface, tenant admission, routing, and
/// relay start.
fn handle_request(cx: &mut Cx, conn: &mut Conn, request: Request) -> Verdict {
    let keep_alive = request.keep_alive;
    conn.keep_alive = keep_alive;

    // --- admin surface: the stats endpoints are served by the proxy
    // itself, not routed to a backend, and stay out of request_ns and
    // the trace stream — scrapes are not traffic.
    let admin_body = match request.path.as_str() {
        METRICS_PATH => Some(render_metrics(cx, false)),
        METRICS_JSON_PATH => Some(render_metrics(cx, true)),
        TRACE_JSON_PATH => Some(cx.registry.spans().to_json()),
        SERIES_JSON_PATH => Some(cx.registry.series().map_or_else(
            || "{\"scrape_seq\":0,\"uptime_micros\":0,\"samples\":0,\"series\":{}}".to_string(),
            |recorder| recorder.to_json(),
        )),
        _ => None,
    };
    if let Some(body) = admin_body {
        finish_request(conn);
        return enqueue_response(cx, conn, 200, body.as_bytes(), keep_alive);
    }

    // --- trace root: the proxy is the cluster's entry point, so every
    // relayed request opens (or, when the client carried an
    // `x-cpms-trace` header, continues) a distributed trace here.
    let spans = Arc::clone(&cx.m.spans);
    let mut span = match request.trace {
        Some(inbound) => OwnedSpan::child_of(spans, inbound, "proxy.request"),
        None => OwnedSpan::root_head_sampled(spans, "proxy.request"),
    };
    span.set_detail(request.path.as_str().to_string());
    conn.path = Some(request.path.clone());

    // --- tenant admission: the first routed request binds the
    // connection to its tenant (leading path segment); a tenant at its
    // connection cap sheds with a fast 503 and the connection closes —
    // the cap is on connections, not requests.
    if conn.tenant.is_none() {
        if let Some(idx) = tenant_of(&cx.tenants, &request.path) {
            let slot = &cx.tenants[idx];
            let admitted = slot
                .active
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                    (n < slot.cap).then_some(n + 1)
                })
                .is_ok();
            if admitted {
                conn.tenant = Some(idx);
            } else {
                cx.m.conn_tenant_rejected.inc();
                span.set_error(true);
                span.set_detail(format!("tenant {} over connection cap", slot.prefix));
                cx.registry.events().record(
                    "admission",
                    conn.request_id,
                    format!("tenant {} over connection cap", slot.prefix),
                );
                conn.span = Some(span);
                record_request_done(cx, conn);
                finish_request(conn);
                return enqueue_response(cx, conn, 503, b"tenant over capacity", false);
            }
        }
    }

    // --- routing decision: snapshot lookup + least in-flight replica.
    // Nodes without a configured backend address are vetoed.
    let in_flight = &cx.in_flight;
    let target = cx.router.route(&request.path, |n| {
        in_flight
            .get(n.index())
            .map_or(u64::MAX, |c| u64::from(c.load(Ordering::Relaxed)))
    });
    let Some((node, _entry)) = target else {
        cx.stats
            .worker(cx.idx)
            .unroutable
            .fetch_add(1, Ordering::Relaxed);
        cx.m.unroutable.inc();
        span.set_error(true);
        span.set_detail(format!("unroutable {}", request.path));
        cx.registry.events().record(
            "route",
            conn.request_id,
            format!("unroutable path {}", request.path),
        );
        conn.span = Some(span);
        let verdict = enqueue_response(cx, conn, 503, b"no location for path", keep_alive);
        record_request_done(cx, conn);
        finish_request(conn);
        return verdict;
    };
    *cx.ledgers[cx.idx]
        .lock()
        .entry(request.path.clone())
        .or_insert(0) += 1;

    // --- bind to a pre-forked connection and start the relay state
    // machine. The relay gets its own child span whose context rides the
    // backend request as an `x-cpms-trace` header, so the origin's span
    // parents to this hop.
    in_flight[node.index()].fetch_add(1, Ordering::Relaxed);
    let mut relay_span = span
        .context()
        .map(|ctx| OwnedSpan::child_of(Arc::clone(&cx.m.spans), ctx, "proxy.relay"));
    if let Some(rs) = relay_span.as_mut() {
        rs.set_detail(format!("node={}", node.0));
    }
    conn.span = Some(span);

    let backend = match cx.pools[cx.idx].checkout(node.index()) {
        Ok(stream) => stream,
        Err(e) => {
            in_flight[node.index()].fetch_sub(1, Ordering::Relaxed);
            cx.stats
                .worker(cx.idx)
                .pool_failures
                .fetch_add(1, Ordering::Relaxed);
            cx.m.pool_failures.inc();
            cx.registry.events().record(
                "pool",
                conn.request_id,
                format!("no connection to node {}: {e}", node.0),
            );
            if let Some(mut rs) = relay_span {
                rs.set_error(true);
            }
            if let Some(span) = conn.span.as_mut() {
                span.set_error(true);
            }
            let verdict = enqueue_response(cx, conn, 502, b"backend failure", keep_alive);
            record_request_done(cx, conn);
            finish_request(conn);
            return verdict;
        }
    };
    if backend.set_nonblocking(true).is_err() {
        in_flight[node.index()].fetch_sub(1, Ordering::Relaxed);
        cx.pools[cx.idx].discard(node.index(), backend);
        let verdict = enqueue_response(cx, conn, 502, b"backend failure", keep_alive);
        record_request_done(cx, conn);
        finish_request(conn);
        return verdict;
    }

    let relay_ctx = relay_span.as_ref().and_then(OwnedSpan::context);
    let head = request_head(&request.path, relay_ctx.as_ref());
    let mut relay = Relay {
        stream: backend,
        node: node.index(),
        out: head.into_bytes().into(),
        inbuf: Vec::new(),
        phase: RelayPhase::Send,
        remaining: 0,
        started: Instant::now(),
        interest: Interest::WRITE,
        paused: false,
        head_sent: false,
        span: relay_span,
    };
    // Optimistic first write: the request head almost always fits the
    // socket buffer, so most relays register straight into read interest
    // and cost a single registration.
    match write_pending(&relay.stream, &mut relay.out) {
        Ok(()) => {}
        Err(_) => {
            // The pooled connection is already dead; surface it as an
            // exchange failure like the blocking path did.
            in_flight[node.index()].fetch_sub(1, Ordering::Relaxed);
            cx.stats
                .worker(cx.idx)
                .backend_errors
                .fetch_add(1, Ordering::Relaxed);
            cx.m.backend_errors.inc();
            cx.registry.events().record(
                "relay",
                conn.request_id,
                format!(
                    "exchange with node {} failed: dead pooled connection",
                    node.0
                ),
            );
            if let Some(mut rs) = relay.span.take() {
                rs.set_error(true);
            }
            if let Some(span) = conn.span.as_mut() {
                span.set_error(true);
            }
            cx.pools[cx.idx].discard(node.index(), relay.stream);
            let verdict = enqueue_response(cx, conn, 502, b"backend failure", keep_alive);
            record_request_done(cx, conn);
            finish_request(conn);
            return verdict;
        }
    }
    if relay.out.is_empty() {
        relay.phase = RelayPhase::Head;
        relay.interest = Interest::READ;
    }
    let fd = relay.stream.as_raw_fd();
    let interest = relay.interest;
    conn.relay = Some(relay);
    if cx
        .poller
        .register(fd, backend_token(conn.key), interest)
        .is_err()
    {
        return fail_relay(cx, conn, "backend registration failed");
    }
    set_conn_timer(cx, conn, TimerPurpose::RelayDeadline, RELAY_TIMEOUT);
    Verdict::Keep
}

/// Finds the tenant slot for a path's leading segment.
fn tenant_of(tenants: &[TenantSlot], path: &UrlPath) -> Option<usize> {
    let first = path.as_str().trim_start_matches('/').split('/').next()?;
    tenants.iter().position(|t| t.prefix == first)
}

/// Writes as much of `out` to the backend as it accepts.
fn write_pending(mut stream: &TcpStream, out: &mut VecDeque<u8>) -> io::Result<()> {
    while !out.is_empty() {
        let (a, b) = out.as_slices();
        let bufs = [IoSlice::new(a), IoSlice::new(b)];
        let nbufs = if b.is_empty() { 1 } else { 2 };
        match stream.write_vectored(&bufs[..nbufs]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                out.drain(..n);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// One readiness event on the backend fd of an in-flight relay.
fn on_backend_event(cx: &mut Cx, conn: &mut Conn, ev: Event) -> Verdict {
    if conn.relay.is_none() {
        return Verdict::Keep; // stale event for a finished relay
    }

    // Send phase: push the rest of the request head.
    if ev.writable {
        let relay = conn.relay.as_mut().expect("checked above");
        if relay.phase == RelayPhase::Send {
            if write_pending(&relay.stream, &mut relay.out).is_err() {
                return fail_relay(cx, conn, "request write failed");
            }
            let relay = conn.relay.as_mut().expect("still relaying");
            if relay.out.is_empty() {
                relay.phase = RelayPhase::Head;
                relay.interest = Interest::READ;
                let _ = cx.poller.reregister(
                    relay.stream.as_raw_fd(),
                    backend_token(conn.key),
                    Interest::READ,
                );
            }
        }
    }

    if ev.readable {
        loop {
            let relay = conn.relay.as_mut().expect("checked above");
            match relay.phase {
                RelayPhase::Send => break, // response can't precede the request
                RelayPhase::Head => {
                    let n = match io::Read::read(&mut &relay.stream, &mut cx.scratch) {
                        Ok(0) => return fail_relay(cx, conn, "backend closed before response"),
                        Ok(n) => n,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => return fail_relay(cx, conn, "backend read failed"),
                    };
                    relay.inbuf.extend_from_slice(&cx.scratch[..n]);
                    match parse_response_head(&relay.inbuf) {
                        Ok(None) => {
                            if relay.inbuf.len() > HEAD_CAP {
                                return fail_relay(cx, conn, "backend response head too large");
                            }
                        }
                        Err(_) => return fail_relay(cx, conn, "malformed backend response"),
                        Ok(Some(rh)) => {
                            // Forward a fresh head carrying the client's
                            // keep-alive disposition, then whatever body
                            // bytes arrived with it.
                            let keep_alive = conn.keep_alive;
                            let head = response_head(rh.status, rh.content_length, keep_alive);
                            conn.wbuf.reserve(head.len() + rh.content_length);
                            conn.wbuf.extend(head.as_bytes());
                            let relay = conn.relay.as_mut().expect("still relaying");
                            relay.head_sent = true;
                            let body_in = relay.inbuf.len() - rh.head_len;
                            let take = body_in.min(rh.content_length);
                            let body: Vec<u8> = relay
                                .inbuf
                                .drain(..rh.head_len + take)
                                .skip(rh.head_len)
                                .collect();
                            relay.remaining = rh.content_length - take;
                            relay.phase = RelayPhase::Body;
                            conn.wbuf.extend(body);
                            if conn.relay.as_ref().expect("still relaying").remaining == 0 {
                                return succeed_relay(cx, conn);
                            }
                        }
                    }
                }
                RelayPhase::Body => {
                    let want = relay.remaining.min(cx.scratch.len());
                    let n = match io::Read::read(&mut &relay.stream, &mut cx.scratch[..want]) {
                        Ok(0) => return fail_relay(cx, conn, "backend closed mid-body"),
                        Ok(n) => n,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => return fail_relay(cx, conn, "backend read failed"),
                    };
                    relay.remaining -= n;
                    conn.wbuf.extend(&cx.scratch[..n]);
                    if conn.relay.as_ref().expect("still relaying").remaining == 0 {
                        return succeed_relay(cx, conn);
                    }
                }
            }
            // Backpressure: a client that cannot drain its ring pauses
            // the backend until the flush path brings the ring back
            // under the low-water mark.
            if conn.wbuf.len() > WBUF_HIGH {
                let relay = conn.relay.as_mut().expect("still relaying");
                if !relay.paused {
                    relay.paused = true;
                    relay.interest = Interest {
                        read: false,
                        write: false,
                    };
                    let _ = cx.poller.reregister(
                        relay.stream.as_raw_fd(),
                        backend_token(conn.key),
                        relay.interest,
                    );
                }
                break;
            }
        }
    }

    if flush_client(cx, conn) == Verdict::Close {
        return Verdict::Close;
    }
    if conn.close_after_flush && conn.wbuf.is_empty() {
        return Verdict::Close;
    }
    sync_client_interest(cx, conn);
    Verdict::Keep
}

/// Relay finished cleanly: return the pooled connection, close the spans,
/// record the request, and resume serving buffered requests.
fn succeed_relay(cx: &mut Cx, conn: &mut Conn) -> Verdict {
    let mut relay = conn.relay.take().expect("succeed without relay");
    clear_conn_timer(cx, conn);
    cx.in_flight[relay.node].fetch_sub(1, Ordering::Relaxed);
    cx.m.relay_ns
        .record(u64::try_from(relay.started.elapsed().as_nanos()).unwrap_or(u64::MAX));
    let _ = cx.poller.deregister(relay.stream.as_raw_fd());
    cx.pools[cx.idx].release(relay.node, relay.stream);
    relay.span.take(); // drop records the relay span, un-errored
    cx.stats
        .worker(cx.idx)
        .relayed
        .fetch_add(1, Ordering::Relaxed);
    cx.m.relayed.inc();
    record_request_done(cx, conn);
    finish_request(conn);
    if !conn.keep_alive {
        conn.close_after_flush = true;
    }
    if flush_client(cx, conn) == Verdict::Close {
        return Verdict::Close;
    }
    // Pipelined requests may already be buffered; serve them now.
    settle(cx, conn)
}

/// Relay failed: discard the pooled connection and either 502 (head not
/// yet sent) or truncate by closing (mid-body — the client already has a
/// 200 head, so a short body is the only honest signal left).
fn fail_relay(cx: &mut Cx, conn: &mut Conn, why: &str) -> Verdict {
    let Some(mut relay) = conn.relay.take() else {
        return Verdict::Keep;
    };
    clear_conn_timer(cx, conn);
    cx.in_flight[relay.node].fetch_sub(1, Ordering::Relaxed);
    cx.m.relay_ns
        .record(u64::try_from(relay.started.elapsed().as_nanos()).unwrap_or(u64::MAX));
    let _ = cx.poller.deregister(relay.stream.as_raw_fd());
    cx.pools[cx.idx].discard(relay.node, relay.stream);
    if let Some(mut span) = relay.span.take() {
        span.set_error(true);
    }
    if let Some(span) = conn.span.as_mut() {
        span.set_error(true);
    }
    cx.stats
        .worker(cx.idx)
        .backend_errors
        .fetch_add(1, Ordering::Relaxed);
    cx.m.backend_errors.inc();
    cx.registry.events().record(
        "relay",
        conn.request_id,
        format!("exchange with node {} failed: {why}", relay.node),
    );
    let verdict = if relay.head_sent {
        // Truncation: close out the partial body.
        conn.close_after_flush = true;
        flush_client(cx, conn)
    } else {
        let keep_alive = conn.keep_alive;
        enqueue_response(cx, conn, 502, b"backend failure", keep_alive)
    };
    record_request_done(cx, conn);
    finish_request(conn);
    if verdict == Verdict::Close {
        return Verdict::Close;
    }
    settle(cx, conn)
}

/// Samples the point-in-time gauges (table size and memory, snapshot
/// generation, pool occupancy, per-node in-flight) into the registry,
/// then renders the whole registry. Gauges are sampled at render time
/// because they are reads of existing state — putting them on the
/// request path would buy nothing.
fn render_metrics(cx: &Cx, json: bool) -> String {
    let registry = &cx.registry;
    let table = cx.handle.load();
    registry
        .gauge("urltable_entries")
        .set(i64::try_from(table.len()).unwrap_or(i64::MAX));
    registry
        .gauge("urltable_memory_bytes")
        .set(i64::try_from(table.memory_bytes()).unwrap_or(i64::MAX));
    registry
        .gauge("urltable_generation")
        .set(i64::try_from(cx.handle.generation()).unwrap_or(i64::MAX));
    let pools = &cx.pools;
    registry
        .gauge("proxy_pool_checkouts")
        .set(i64::try_from(pools.iter().map(SocketPool::checkouts).sum::<u64>()).unwrap_or(0));
    registry.gauge("proxy_pool_overflow_connects").set(
        i64::try_from(pools.iter().map(SocketPool::overflow_connects).sum::<u64>()).unwrap_or(0),
    );
    for (node, counter) in cx.in_flight.iter().enumerate() {
        let idle: usize = pools.iter().map(|p| p.idle_count(node)).sum();
        registry
            .gauge(&format!("proxy_node{node}_in_flight"))
            .set(i64::from(counter.load(Ordering::Relaxed)));
        registry
            .gauge(&format!("proxy_node{node}_pool_idle"))
            .set(i64::try_from(idle).unwrap_or(i64::MAX));
    }
    for tenant in cx.tenants.iter() {
        registry
            .gauge(&format!("proxy_tenant_{}_conns", tenant.prefix))
            .set(i64::from(tenant.active.load(Ordering::Relaxed)));
    }
    let snapshot = registry.snapshot();
    if json {
        snapshot.to_json()
    } else {
        snapshot.to_prometheus()
    }
}
