//! Minimal HTTP/1.1 wire handling shared by the origin, the proxy, and
//! the client: request-line + header parsing and response serialization.
//! Bodies use `Content-Length` exclusively (no chunked encoding), which is
//! all the 1999-era exchange needs.

use cpms_model::UrlPath;
use cpms_obs::TraceContext;
use std::io::{self, BufRead, Write};

/// The request header carrying a distributed-trace context on the
/// proxy→origin relay path (see [`TraceContext::to_header`]).
pub const TRACE_HEADER: &str = "x-cpms-trace";

/// A parsed HTTP request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method (`GET`, `HEAD`, …). Only `GET` is served.
    pub method: String,
    /// The request target, normalized.
    pub path: UrlPath,
    /// `true` for HTTP/1.0 (connection closes after the response unless
    /// `Connection: keep-alive` was sent — mirrored from the paper's
    /// distributor logic).
    pub http10: bool,
    /// Whether the connection should stay open after this exchange.
    pub keep_alive: bool,
    /// The distributed-trace context carried by an [`TRACE_HEADER`]
    /// header, if a valid one was present. A malformed value degrades
    /// to `None` — bad tracing must never fail a request.
    pub trace: Option<TraceContext>,
}

/// A parsed HTTP response head plus body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
}

/// Errors from reading a request.
#[derive(Debug)]
pub enum ParseError {
    /// The peer closed the connection before a full request arrived.
    ConnectionClosed,
    /// Malformed request line or headers.
    Malformed(&'static str),
    /// Underlying I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::ConnectionClosed => write!(f, "connection closed"),
            ParseError::Malformed(what) => write!(f, "malformed request: {what}"),
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

#[doc(hidden)]
impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Reads one request head from a buffered stream.
///
/// # Errors
///
/// [`ParseError::ConnectionClosed`] on clean EOF before any bytes,
/// [`ParseError::Malformed`] on bad syntax, [`ParseError::Io`] otherwise.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, ParseError> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(ParseError::ConnectionClosed);
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or(ParseError::Malformed("missing method"))?
        .to_string();
    let target = parts
        .next()
        .ok_or(ParseError::Malformed("missing target"))?;
    let version = parts
        .next()
        .ok_or(ParseError::Malformed("missing version"))?;
    let http10 = match version {
        "HTTP/1.0" => true,
        "HTTP/1.1" => false,
        _ => return Err(ParseError::Malformed("unsupported version")),
    };
    let path: UrlPath = target
        .parse()
        .map_err(|_| ParseError::Malformed("bad path"))?;

    // Headers: we care about Connection and the trace context.
    let mut keep_alive = !http10;
    let mut trace = None;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(ParseError::Malformed("eof in headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("connection") {
                let value = value.trim();
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            } else if name.eq_ignore_ascii_case(TRACE_HEADER) {
                trace = TraceContext::from_header(value);
            }
        }
    }
    Ok(Request {
        method,
        path,
        http10,
        keep_alive,
        trace,
    })
}

/// Serializes a request head (used by the client and the proxy's backend
/// side; always HTTP/1.1 keep-alive on the pre-forked connections).
///
/// # Errors
///
/// I/O errors from the writer.
pub fn write_request<W: Write>(writer: &mut W, path: &UrlPath) -> io::Result<()> {
    write_request_traced(writer, path, None)
}

/// [`write_request`] plus an optional [`TRACE_HEADER`] carrying the
/// given trace context to the backend.
///
/// # Errors
///
/// I/O errors from the writer.
pub fn write_request_traced<W: Write>(
    writer: &mut W,
    path: &UrlPath,
    trace: Option<&TraceContext>,
) -> io::Result<()> {
    writer.write_all(request_head(path, trace).as_bytes())?;
    writer.flush()
}

/// Serializes a backend request head (always HTTP/1.1 keep-alive on the
/// pre-forked connections), optionally carrying a [`TRACE_HEADER`].
///
/// The head is assembled as one string: `write!` straight into an
/// unbuffered socket issues one syscall (and, with nodelay, one TCP
/// segment) per format fragment, which the trace header would multiply —
/// and the proxy's non-blocking relay wants the whole head as bytes to
/// enqueue anyway.
#[must_use]
pub fn request_head(path: &UrlPath, trace: Option<&TraceContext>) -> String {
    match trace {
        Some(ctx) => format!(
            "GET {path} HTTP/1.1\r\nHost: cpms\r\nConnection: keep-alive\r\n{TRACE_HEADER}: {}\r\n\r\n",
            ctx.to_header()
        ),
        None => format!("GET {path} HTTP/1.1\r\nHost: cpms\r\nConnection: keep-alive\r\n\r\n"),
    }
}

/// Serializes a response head for the given status, body length, and
/// connection disposition (shared by [`write_response`] and the proxy's
/// non-blocking write path, which enqueues heads into a connection buffer
/// instead of writing to a stream).
#[must_use]
pub fn response_head(status: u16, body_len: usize, keep_alive: bool) -> String {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Error",
    };
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Length: {body_len}\r\nConnection: {}\r\n\r\n",
        if keep_alive { "keep-alive" } else { "close" },
    )
}

/// Writes a response with the given status and body.
///
/// # Errors
///
/// I/O errors from the writer.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    writer.write_all(response_head(status, body.len(), keep_alive).as_bytes())?;
    writer.write_all(body)?;
    writer.flush()
}

/// Scans an accumulation buffer for a complete HTTP head and returns the
/// index just past the blank-line terminator, or `None` while more bytes
/// are still needed. Accepts both `\r\n\r\n` and the bare-`\n` form the
/// line-based parsers already tolerate. This is the incremental entry
/// point for non-blocking reads: call it after every chunk and hand the
/// complete prefix to [`parse_request_head`] / [`parse_response_head`].
#[must_use]
pub fn head_complete(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] != b'\n' {
            i += 1;
            continue;
        }
        // A newline followed by an (optionally CR-prefixed) newline ends
        // the head.
        if buf.get(i + 1) == Some(&b'\n') {
            return Some(i + 2);
        }
        if buf.get(i + 1) == Some(&b'\r') && buf.get(i + 2) == Some(&b'\n') {
            return Some(i + 3);
        }
        i += 1;
    }
    None
}

/// Parses one complete request head from a slice (as delimited by
/// [`head_complete`]).
///
/// # Errors
///
/// [`ParseError`] variants as for [`read_request`].
pub fn parse_request_head(head: &[u8]) -> Result<Request, ParseError> {
    let mut slice = head;
    read_request(&mut slice)
}

/// A parsed response head for the streaming relay path: enough to forward
/// the head verbatim and then count body bytes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseHead {
    /// Status code.
    pub status: u16,
    /// Declared `Content-Length`.
    pub content_length: usize,
    /// Bytes the head occupies in the scanned buffer (index of the first
    /// body byte).
    pub head_len: usize,
}

/// Incrementally parses a response head from an accumulation buffer:
/// `Ok(None)` while incomplete, `Ok(Some(head))` once the terminator and
/// a valid status + `Content-Length` are in, an error on bad syntax.
///
/// # Errors
///
/// [`ParseError::Malformed`] on bad status line, version, or
/// `Content-Length`.
pub fn parse_response_head(buf: &[u8]) -> Result<Option<ResponseHead>, ParseError> {
    let Some(head_len) = head_complete(buf) else {
        return Ok(None);
    };
    let head = &buf[..head_len];
    let text = std::str::from_utf8(head).map_err(|_| ParseError::Malformed("non-ascii head"))?;
    let mut lines = text.split('\n');
    let status_line = lines.next().ok_or(ParseError::Malformed("empty head"))?;
    let mut parts = status_line.split_whitespace();
    let _version = parts
        .next()
        .ok_or(ParseError::Malformed("missing version"))?;
    let status: u16 = parts
        .next()
        .ok_or(ParseError::Malformed("missing status"))?
        .parse()
        .map_err(|_| ParseError::Malformed("bad status"))?;
    let mut content_length: Option<usize> = None;
    for line in lines {
        let line = line.trim_end_matches('\r');
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(
                    value
                        .trim()
                        .parse()
                        .map_err(|_| ParseError::Malformed("bad content-length"))?,
                );
            }
        }
    }
    let content_length = content_length.ok_or(ParseError::Malformed("missing content-length"))?;
    Ok(Some(ResponseHead {
        status,
        content_length,
        head_len,
    }))
}

/// Reads one response (head + `Content-Length` body) from a buffered
/// stream.
///
/// # Errors
///
/// [`ParseError`] variants as for [`read_request`].
pub fn read_response<R: BufRead>(reader: &mut R) -> Result<Response, ParseError> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(ParseError::ConnectionClosed);
    }
    let mut parts = line.split_whitespace();
    let _version = parts
        .next()
        .ok_or(ParseError::Malformed("missing version"))?;
    let status: u16 = parts
        .next()
        .ok_or(ParseError::Malformed("missing status"))?
        .parse()
        .map_err(|_| ParseError::Malformed("bad status"))?;

    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(ParseError::Malformed("eof in headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(
                    value
                        .trim()
                        .parse()
                        .map_err(|_| ParseError::Malformed("bad content-length"))?,
                );
            }
        }
    }
    let len = content_length.ok_or(ParseError::Malformed("missing content-length"))?;
    let mut body = vec![0u8; len];
    io::Read::read_exact(reader, &mut body)?;
    Ok(Response { status, body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parse_simple_get() {
        let raw = b"GET /a/b.html HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..])).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path.as_str(), "/a/b.html");
        assert!(!req.http10);
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parse_http10_close_semantics() {
        let raw = b"GET / HTTP/1.0\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..])).unwrap();
        assert!(req.http10);
        assert!(!req.keep_alive, "HTTP/1.0 defaults to close");

        let raw = b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..])).unwrap();
        assert!(req.keep_alive);

        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..])).unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn parse_strips_query() {
        let raw = b"GET /cgi-bin/q.cgi?x=1&y=2 HTTP/1.1\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..])).unwrap();
        assert_eq!(req.path.as_str(), "/cgi-bin/q.cgi");
    }

    #[test]
    fn rejects_garbage() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            &b"GET /x HTTP/2\r\n\r\n"[..],
            &b"GET relative HTTP/1.1\r\n\r\n"[..],
        ] {
            assert!(matches!(
                read_request(&mut BufReader::new(raw)),
                Err(ParseError::Malformed(_))
            ));
        }
        assert!(matches!(
            read_request(&mut BufReader::new(&b""[..])),
            Err(ParseError::ConnectionClosed)
        ));
    }

    #[test]
    fn response_roundtrip() {
        let mut wire = Vec::new();
        write_response(&mut wire, 200, b"hello world", true).unwrap();
        let resp = read_response(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"hello world");
    }

    #[test]
    fn request_roundtrip() {
        let mut wire = Vec::new();
        let path: UrlPath = "/x/y.gif".parse().unwrap();
        write_request(&mut wire, &path).unwrap();
        let req = read_request(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(req.path, path);
        assert!(req.keep_alive);
    }

    #[test]
    fn trace_header_round_trips_and_degrades() {
        let ctx = TraceContext::root(true).child();
        let mut wire = Vec::new();
        let path: UrlPath = "/traced.html".parse().unwrap();
        write_request_traced(&mut wire, &path, Some(&ctx)).unwrap();
        let req = read_request(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(req.trace, Some(ctx));
        assert!(req.keep_alive);

        // No header → no context.
        let mut wire = Vec::new();
        write_request(&mut wire, &path).unwrap();
        let req = read_request(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(req.trace, None);

        // A malformed value degrades to untraced, never an error.
        let raw = b"GET / HTTP/1.1\r\nx-cpms-trace: not-a-context\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..])).unwrap();
        assert_eq!(req.trace, None);
    }

    #[test]
    fn head_complete_finds_the_terminator_incrementally() {
        let raw = b"GET /a/b.html HTTP/1.1\r\nHost: x\r\n\r\ntrailing";
        // No prefix short of the terminator completes.
        for cut in 0..raw.len() - 9 {
            assert_eq!(head_complete(&raw[..cut]), None, "cut at {cut}");
        }
        let end = head_complete(raw).expect("complete");
        assert_eq!(&raw[..end], b"GET /a/b.html HTTP/1.1\r\nHost: x\r\n\r\n");
        let req = parse_request_head(&raw[..end]).unwrap();
        assert_eq!(req.path.as_str(), "/a/b.html");

        // Bare-LF heads terminate too, matching the line-based parser.
        assert_eq!(head_complete(b"GET / HTTP/1.1\n\n"), Some(16));
    }

    #[test]
    fn response_head_parses_incrementally() {
        let mut wire = Vec::new();
        write_response(&mut wire, 200, b"hello world", true).unwrap();
        for cut in 0..4 {
            assert_eq!(parse_response_head(&wire[..cut]).unwrap(), None);
        }
        let head = parse_response_head(&wire).unwrap().expect("complete");
        assert_eq!(head.status, 200);
        assert_eq!(head.content_length, 11);
        assert_eq!(&wire[head.head_len..], b"hello world");

        assert!(matches!(
            parse_response_head(b"HTTP/1.1 200 OK\r\n\r\n"),
            Err(ParseError::Malformed("missing content-length"))
        ));
        assert!(matches!(
            parse_response_head(b"garbage\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn pipelined_requests_parse_in_sequence() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(&raw[..]);
        assert_eq!(read_request(&mut reader).unwrap().path.as_str(), "/a");
        assert_eq!(read_request(&mut reader).unwrap().path.as_str(), "/b");
        assert!(matches!(
            read_request(&mut reader),
            Err(ParseError::ConnectionClosed)
        ));
    }
}
