//! The origin server: a threaded HTTP/1.1 back end standing in for the
//! paper's Apache/IIS nodes.
//!
//! Serves an in-memory [`SiteContent`]: static paths return stored bytes;
//! dynamic paths (`.cgi`/`.asp`) burn a configurable execution delay and
//! return a generated body, mimicking script execution cost. A site can
//! also be backed by the node's [`cpms_store::ContentStore`]: objects the
//! management plane ships and commits become servable immediately, with
//! no explicit `add_static` push.

use crate::http::{read_request, write_response, ParseError};
use cpms_model::{NodeId, UrlPath};
use cpms_obs::{MetricsRegistry, ScopedTrace, SpanCollector, TracedSpan};
use cpms_store::ContentStore;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What one node serves.
#[derive(Debug, Default)]
pub struct SiteContent {
    files: HashMap<UrlPath, Vec<u8>>,
    dynamic: HashMap<UrlPath, DynamicSpec>,
    backing: Option<Arc<ContentStore>>,
}

#[derive(Debug, Clone)]
struct DynamicSpec {
    exec: Duration,
    response_bytes: usize,
}

impl SiteContent {
    /// An empty site.
    pub fn new() -> Self {
        SiteContent::default()
    }

    /// Adds a static file.
    pub fn add_static(&mut self, path: &str, body: Vec<u8>) -> &mut Self {
        self.files
            .insert(path.parse().expect("valid path literal"), body);
        self
    }

    /// Adds a dynamic endpoint that sleeps `exec` then returns
    /// `response_bytes` of generated output.
    pub fn add_dynamic(&mut self, path: &str, exec: Duration, response_bytes: usize) -> &mut Self {
        self.dynamic.insert(
            path.parse().expect("valid path literal"),
            DynamicSpec {
                exec,
                response_bytes,
            },
        );
        self
    }

    /// Backs the site with a node's content store: any object committed
    /// there is servable, looked up after explicit files and dynamic
    /// endpoints. This is how shipped replicas go live — the management
    /// plane commits bytes into the store and the origin serves them.
    pub fn with_backing(mut self, store: Arc<ContentStore>) -> Self {
        self.backing = Some(store);
        self
    }

    /// Number of explicitly added objects (static + dynamic). Objects
    /// visible only through the backing store are not counted.
    pub fn len(&self) -> usize {
        self.files.len() + self.dynamic.len()
    }

    /// Whether the site has no explicitly added objects.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty() && self.dynamic.is_empty()
    }
}

/// A running origin server. Dropping it (or calling
/// [`OriginServer::shutdown`]) stops the accept loop.
pub struct OriginServer {
    node: NodeId,
    addr: SocketAddr,
    content: Arc<RwLock<SiteContent>>,
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
    registry: Arc<MetricsRegistry>,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for OriginServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OriginServer")
            .field("node", &self.node)
            .field("addr", &self.addr)
            .field("served", &self.served())
            .finish()
    }
}

impl OriginServer {
    /// Binds a listener on an ephemeral localhost port and starts serving
    /// `content`.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener.
    pub fn start(node: NodeId, content: SiteContent) -> io::Result<OriginServer> {
        Self::start_with_registry(node, content, Arc::new(MetricsRegistry::new()))
    }

    /// [`OriginServer::start`] recording into a caller-supplied registry:
    /// requests that arrive with an `x-cpms-trace` header (the proxy's
    /// relay path) record `origin.request` spans into the registry's
    /// [`SpanCollector`], so a daemon hosting both a broker and an origin
    /// exports one trace surface for the whole process.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener.
    pub fn start_with_registry(
        node: NodeId,
        content: SiteContent,
        registry: Arc<MetricsRegistry>,
    ) -> io::Result<OriginServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let content = Arc::new(RwLock::new(content));
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));

        // Pre-register the origin's identity and volume metrics so the
        // full-registry scrape sees them from the first request.
        registry.gauge("origin_node").set(i64::from(node.0));
        registry.counter("origin_served_total");

        let accept_thread = {
            let content = Arc::clone(&content);
            let stop = Arc::clone(&stop);
            let served = Arc::clone(&served);
            let registry = Arc::clone(&registry);
            std::thread::Builder::new()
                .name(format!("origin-{node}"))
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let content = Arc::clone(&content);
                        let served = Arc::clone(&served);
                        let registry = Arc::clone(&registry);
                        let _ = std::thread::Builder::new()
                            .name("origin-conn".to_string())
                            .spawn(move || {
                                let _ =
                                    serve_connection(stream, node, &content, &served, &registry);
                            });
                    }
                })?
        };

        Ok(OriginServer {
            node,
            addr,
            content,
            stop,
            served,
            registry,
            accept_thread: Some(accept_thread),
        })
    }

    /// The node identity this origin represents.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served so far (across all connections).
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// The registry this origin records trace spans into. Fresh unless
    /// the caller supplied one via [`OriginServer::start_with_registry`].
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Adds or replaces a static file while running (content management
    /// pushing an update to this node).
    pub fn add_static(&self, path: &str, body: Vec<u8>) {
        self.content.write().add_static(path, body);
    }

    /// Removes a file while running (a delete/offload agent's effect).
    /// Returns whether anything was removed.
    pub fn remove(&self, path: &UrlPath) -> bool {
        let mut c = self.content.write();
        c.files.remove(path).is_some() || c.dynamic.remove(path).is_some()
    }

    /// Stops accepting connections. In-flight exchanges finish on their
    /// own threads.
    pub fn shutdown(&mut self) {
        if let Some(thread) = self.accept_thread.take() {
            self.stop.store(true, Ordering::Release);
            // Unblock accept() with a dummy connection.
            let _ = TcpStream::connect(self.addr);
            let _ = thread.join();
        }
    }
}

impl Drop for OriginServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(
    stream: TcpStream,
    node: NodeId,
    content: &RwLock<SiteContent>,
    served: &AtomicU64,
    registry: &MetricsRegistry,
) -> io::Result<()> {
    let spans: &SpanCollector = registry.spans();
    let served_total = registry.counter("origin_served_total");
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(r) => r,
            Err(ParseError::ConnectionClosed) => return Ok(()),
            Err(ParseError::Io(e)) => return Err(e),
            Err(ParseError::Malformed(_)) => {
                write_response(&mut writer, 400, b"bad request", false)?;
                return Ok(());
            }
        };
        let keep_alive = request.keep_alive;
        // Admin surface so a lab orchestrator can scrape every process
        // in a topology the same way; not counted as served. The full
        // registry renders here (scrape_seq + uptime stamps included) —
        // a co-located broker's wire/store metrics share the document.
        let admin_body = match request.path.as_str() {
            crate::proxy::METRICS_JSON_PATH => Some(registry.snapshot().to_json()),
            crate::proxy::TRACE_JSON_PATH => Some(spans.to_json()),
            crate::proxy::SERIES_JSON_PATH => Some(registry.series().map_or_else(
                || "{\"scrape_seq\":0,\"uptime_micros\":0,\"samples\":0,\"series\":{}}".to_string(),
                |recorder| recorder.to_json(),
            )),
            _ => None,
        };
        if let Some(body) = admin_body {
            write_response(&mut writer, 200, body.as_bytes(), keep_alive)?;
            if keep_alive {
                continue;
            }
            return Ok(());
        }
        // An inbound `x-cpms-trace` header (the proxy's relay hop) makes
        // this exchange part of a distributed trace: the origin's span
        // parents to the relay's. Requests without a context stay
        // untraced — the origin never roots traces of its own.
        let _inherited = request.trace.map(ScopedTrace::activate);
        let mut trace_span = request.trace.map(|_| {
            let mut span = TracedSpan::enter(spans, "origin.request");
            span.set_detail(format!("node={} {}", node.0, request.path));
            span
        });
        // Look the object up under a read lock; release before any
        // execution delay.
        enum Found {
            Static(Vec<u8>),
            Dynamic(DynamicSpec),
            Missing,
        }
        let found = {
            let c = content.read();
            if let Some(body) = c.files.get(&request.path) {
                Found::Static(body.clone())
            } else if let Some(spec) = c.dynamic.get(&request.path) {
                Found::Dynamic(spec.clone())
            } else if let Some(body) = c
                .backing
                .as_ref()
                .and_then(|store| store.read(&request.path).ok())
            {
                // The store only answers for committed objects, so a
                // replica mid-ship can never be served half-written.
                Found::Static(body)
            } else {
                Found::Missing
            }
        };
        match found {
            Found::Static(body) => {
                served.fetch_add(1, Ordering::Relaxed);
                served_total.inc();
                write_response(&mut writer, 200, &body, keep_alive)?;
            }
            Found::Dynamic(spec) => {
                std::thread::sleep(spec.exec);
                let body = vec![b'd'; spec.response_bytes];
                served.fetch_add(1, Ordering::Relaxed);
                served_total.inc();
                write_response(&mut writer, 200, &body, keep_alive)?;
            }
            Found::Missing => {
                if let Some(span) = trace_span.as_mut() {
                    span.set_error(true);
                }
                write_response(&mut writer, 404, b"not found", keep_alive)?;
            }
        }
        drop(trace_span);
        if !keep_alive {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;

    fn site() -> SiteContent {
        let mut s = SiteContent::new();
        s.add_static("/index.html", b"home".to_vec());
        s.add_static("/img/logo.gif", vec![0xFF; 2048]);
        s.add_dynamic("/cgi-bin/q.cgi", Duration::from_millis(5), 64);
        s
    }

    #[test]
    fn serves_static_and_dynamic() {
        let origin = OriginServer::start(NodeId(0), site()).unwrap();
        let mut client = HttpClient::connect(origin.addr()).unwrap();
        let resp = client.get("/index.html").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"home");

        let resp = client.get("/img/logo.gif").unwrap();
        assert_eq!(resp.body.len(), 2048);

        let resp = client.get("/cgi-bin/q.cgi").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body.len(), 64);

        let resp = client.get("/missing").unwrap();
        assert_eq!(resp.status, 404);

        assert_eq!(origin.served(), 3, "404s are not counted as served");
    }

    #[test]
    fn keep_alive_reuses_connection() {
        let origin = OriginServer::start(NodeId(0), site()).unwrap();
        let mut client = HttpClient::connect(origin.addr()).unwrap();
        for _ in 0..10 {
            assert_eq!(client.get("/index.html").unwrap().status, 200);
        }
        assert_eq!(client.reconnects(), 0, "all ten on one connection");
    }

    #[test]
    fn live_content_updates() {
        let origin = OriginServer::start(NodeId(0), site()).unwrap();
        let mut client = HttpClient::connect(origin.addr()).unwrap();
        origin.add_static("/new.html", b"fresh".to_vec());
        assert_eq!(client.get("/new.html").unwrap().body, b"fresh");
        assert!(origin.remove(&"/new.html".parse().unwrap()));
        assert_eq!(client.get("/new.html").unwrap().status, 404);
        assert!(!origin.remove(&"/new.html".parse().unwrap()));
    }

    #[test]
    fn concurrent_clients() {
        let origin = OriginServer::start(NodeId(0), site()).unwrap();
        let addr = origin.addr();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).unwrap();
                    for _ in 0..20 {
                        assert_eq!(client.get("/index.html").unwrap().status, 200);
                    }
                });
            }
        });
        assert_eq!(origin.served(), 160);
    }

    #[test]
    fn backing_store_objects_are_served() {
        let store = Arc::new(ContentStore::in_memory(NodeId(0), 1 << 20));
        let path: UrlPath = "/shipped/report.html".parse().unwrap();
        store
            .put(&path, cpms_model::ContentId(7), 0, b"shipped bytes", false)
            .unwrap();
        let origin =
            OriginServer::start(NodeId(0), site().with_backing(Arc::clone(&store))).unwrap();
        let mut client = HttpClient::connect(origin.addr()).unwrap();

        // Explicit files still win; the store answers for the rest.
        assert_eq!(client.get("/index.html").unwrap().body, b"home");
        let resp = client.get("/shipped/report.html").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"shipped bytes");

        // A committed update is visible on the next request...
        store
            .put(&path, cpms_model::ContentId(7), 1, b"v2", true)
            .unwrap();
        assert_eq!(client.get("/shipped/report.html").unwrap().body, b"v2");

        // ...and a deleted object stops being served.
        store.delete(&path).unwrap();
        assert_eq!(client.get("/shipped/report.html").unwrap().status, 404);
    }

    #[test]
    fn metrics_endpoint_reports_served_count() {
        let origin = OriginServer::start(NodeId(5), site()).unwrap();
        let mut client = HttpClient::connect(origin.addr()).unwrap();
        client.get("/index.html").unwrap();
        let resp = client.get(crate::proxy::METRICS_JSON_PATH).unwrap();
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"origin_served_total\": 1"), "{text}");
        assert!(text.contains("\"origin_node\": 5"), "{text}");
        assert!(text.contains("\"scrape_seq\""), "{text}");
        assert!(text.contains("\"uptime_micros\""), "{text}");
        assert_eq!(origin.served(), 1, "metrics scrapes are not served pages");

        // The series surface answers even without a recorder installed…
        let empty = client.get(crate::proxy::SERIES_JSON_PATH).unwrap();
        assert_eq!(empty.status, 200);
        assert!(String::from_utf8(empty.body)
            .unwrap()
            .contains("\"series\":{}"));

        // …and reflects recorded history once a sampler runs.
        let mut sampler = cpms_obs::Sampler::start(origin.metrics(), Duration::from_millis(5));
        let recorder = origin.metrics().series().unwrap();
        for _ in 0..400 {
            if recorder.samples_taken() >= 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        sampler.stop();
        let series =
            String::from_utf8(client.get(crate::proxy::SERIES_JSON_PATH).unwrap().body).unwrap();
        assert!(series.contains("\"origin_served_total\":["), "{series}");
    }

    #[test]
    fn trace_header_makes_the_exchange_a_traced_span() {
        use crate::http::{read_response, write_request_traced};
        use cpms_obs::TraceContext;

        let origin = OriginServer::start(NodeId(3), site()).unwrap();
        let relay_ctx = TraceContext::root(true).child();
        let mut stream = TcpStream::connect(origin.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let path: UrlPath = "/index.html".parse().unwrap();
        write_request_traced(&mut stream, &path, Some(&relay_ctx)).unwrap();
        assert_eq!(read_response(&mut reader).unwrap().status, 200);

        // The span records when its guard drops, just after the response
        // bytes go out — poll briefly.
        let span = 'found: {
            for _ in 0..400 {
                let spans = origin.metrics().spans().snapshot();
                if let Some(s) = spans.iter().find(|s| s.name == "origin.request") {
                    break 'found s.clone();
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            panic!("origin.request span never recorded");
        };
        assert_eq!(span.trace, relay_ctx.trace);
        assert_eq!(span.parent, Some(relay_ctx.span));
        assert!(span.detail.contains("/index.html"), "{}", span.detail);

        // An untraced request adds nothing: origins never root traces.
        write_request_traced(&mut stream, &path, None).unwrap();
        assert_eq!(read_response(&mut reader).unwrap().status, 200);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(origin.metrics().spans().snapshot().len(), 1);

        // The span dump is served on the admin path.
        write_request_traced(&mut stream, &"/_cpms/trace.json".parse().unwrap(), None).unwrap();
        let dump = String::from_utf8(read_response(&mut reader).unwrap().body).unwrap();
        assert!(dump.contains(&relay_ctx.trace.to_string()), "{dump}");
    }

    #[test]
    fn shutdown_stops_accepting() {
        let mut origin = OriginServer::start(NodeId(0), site()).unwrap();
        let addr = origin.addr();
        origin.shutdown();
        // New connections may connect to the dead listener's backlog but
        // requests must fail.
        let result = HttpClient::connect(addr).and_then(|mut c| c.get("/index.html"));
        assert!(result.is_err());
    }
}
