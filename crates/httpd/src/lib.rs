//! # cpms-httpd
//!
//! A live TCP demonstration of the paper's data plane: a threaded
//! HTTP/1.1 **origin server** ([`OriginServer`]) standing in for the
//! Apache/IIS back ends, and a **content-aware reverse proxy**
//! ([`ContentAwareProxy`]) that does at socket level what the paper's
//! kernel module does at packet level — read the request, look the URL up
//! in the URL table, and splice the client connection to a **pre-forked
//! persistent backend connection** from a pool.
//!
//! A content-blind [`L4Proxy`] (connect-and-pipe, no HTTP parsing) is
//! included as the layer-4 baseline, and [`client`] provides a small
//! keep-alive HTTP client used by tests, examples, and benches.
//!
//! The proxies are **event-driven**: a fixed set of worker threads, each
//! running one readiness-driven loop (via `cpms-reactor`) of non-blocking
//! connection state machines, serves every concurrent client — thousands
//! of keep-alive connections do not add threads. The origin stays a
//! plain threaded server: it sits behind the proxy's small pre-forked
//! connection pool, so its thread count is bounded by pool size, not by
//! client concurrency.
//!
//! Everything runs on `std::net` + the workspace's own reactor: no async
//! runtime, no external dependencies beyond the workspace.
//!
//! # Example
//!
//! ```no_run
//! use cpms_httpd::{client::HttpClient, ContentAwareProxy, OriginServer, SiteContent};
//! use cpms_model::NodeId;
//! use cpms_urltable::{UrlEntry, UrlTable};
//! use cpms_model::{ContentId, ContentKind};
//!
//! // one origin node serving one page
//! let mut site = SiteContent::new();
//! site.add_static("/index.html", b"hello".to_vec());
//! let origin = OriginServer::start(NodeId(0), site)?;
//!
//! // a URL table routing that page to the origin
//! let mut table = UrlTable::new();
//! table.insert(
//!     "/index.html".parse().unwrap(),
//!     UrlEntry::new(ContentId(0), ContentKind::StaticHtml, 5)
//!         .with_locations([NodeId(0)]),
//! ).unwrap();
//!
//! let proxy = ContentAwareProxy::start(table, vec![origin.addr()], 4)?;
//! let mut client = HttpClient::connect(proxy.addr())?;
//! let resp = client.get("/index.html")?;
//! assert_eq!(resp.status, 200);
//! assert_eq!(resp.body, b"hello");
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod conn;
pub mod http;
pub mod l4proxy;
pub mod loadgen;
pub mod origin;
pub mod pool;
pub mod proxy;

pub use http::TRACE_HEADER;
pub use l4proxy::L4Proxy;
pub use origin::{OriginServer, SiteContent};
pub use proxy::{
    ContentAwareProxy, ProxyConfig, TenantCap, METRICS_JSON_PATH, METRICS_PATH, SERIES_JSON_PATH,
    TRACE_JSON_PATH,
};
