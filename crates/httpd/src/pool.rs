//! Pre-forked persistent backend connections over real sockets.
//!
//! The socket-level twin of [`cpms_dispatch::pool::ConnectionPool`]: at
//! startup the proxy opens `prefork` TCP connections to every backend and
//! keeps them alive (HTTP/1.1 keep-alive); each relayed request checks one
//! out and returns it afterwards. If a node's list is momentarily empty
//! the pool opens an extra connection rather than queueing, counting the
//! event (`overflow_connects`) so benches can report pool pressure.

use parking_lot::Mutex;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};

/// A pool of persistent connections to a set of backends.
#[derive(Debug)]
pub struct SocketPool {
    backends: Vec<SocketAddr>,
    idle: Vec<Mutex<Vec<TcpStream>>>,
    overflow_connects: AtomicU64,
    checkouts: AtomicU64,
}

impl SocketPool {
    /// Opens `prefork` connections to each backend.
    ///
    /// # Errors
    ///
    /// Connection failures during pre-forking.
    pub fn prefork(backends: Vec<SocketAddr>, prefork: u32) -> io::Result<Self> {
        let mut idle = Vec::with_capacity(backends.len());
        for &addr in &backends {
            let mut conns = Vec::with_capacity(prefork as usize);
            for _ in 0..prefork {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                conns.push(stream);
            }
            idle.push(Mutex::new(conns));
        }
        Ok(SocketPool {
            backends,
            idle,
            overflow_connects: AtomicU64::new(0),
            checkouts: AtomicU64::new(0),
        })
    }

    /// Number of backends.
    pub fn backend_count(&self) -> usize {
        self.backends.len()
    }

    /// The address of backend `idx`.
    pub fn backend_addr(&self, idx: usize) -> SocketAddr {
        self.backends[idx]
    }

    /// Total checkouts so far.
    pub fn checkouts(&self) -> u64 {
        self.checkouts.load(Ordering::Relaxed)
    }

    /// Times a checkout had to open a fresh connection because the
    /// pre-forked list was empty.
    pub fn overflow_connects(&self) -> u64 {
        self.overflow_connects.load(Ordering::Relaxed)
    }

    /// Idle connections currently pooled for backend `idx`.
    pub fn idle_count(&self, idx: usize) -> usize {
        self.idle[idx].lock().len()
    }

    /// Checks out a connection to backend `idx`, opening a new one if the
    /// pool is empty.
    ///
    /// # Errors
    ///
    /// Connection failures when growing.
    pub fn checkout(&self, idx: usize) -> io::Result<TcpStream> {
        self.checkouts.fetch_add(1, Ordering::Relaxed);
        if let Some(conn) = self.idle[idx].lock().pop() {
            return Ok(conn);
        }
        self.overflow_connects.fetch_add(1, Ordering::Relaxed);
        let stream = TcpStream::connect(self.backends[idx])?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    /// Returns a healthy connection to the pool ("releases the pre-forked
    /// connection back to available connection list").
    pub fn release(&self, idx: usize, conn: TcpStream) {
        self.idle[idx].lock().push(conn);
    }

    /// Discards a connection that saw an error (the next checkout will
    /// re-open).
    pub fn discard(&self, _idx: usize, conn: TcpStream) {
        drop(conn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::origin::{OriginServer, SiteContent};
    use cpms_model::NodeId;

    fn origin() -> OriginServer {
        let mut site = SiteContent::new();
        site.add_static("/x", b"pool".to_vec());
        OriginServer::start(NodeId(0), site).unwrap()
    }

    #[test]
    fn prefork_and_reuse() {
        let o = origin();
        let pool = SocketPool::prefork(vec![o.addr()], 3).unwrap();
        assert_eq!(pool.idle_count(0), 3);
        let c1 = pool.checkout(0).unwrap();
        let c2 = pool.checkout(0).unwrap();
        assert_eq!(pool.idle_count(0), 1);
        pool.release(0, c1);
        pool.release(0, c2);
        assert_eq!(pool.idle_count(0), 3);
        assert_eq!(pool.checkouts(), 2);
        assert_eq!(pool.overflow_connects(), 0);
    }

    #[test]
    fn grows_on_exhaustion() {
        let o = origin();
        let pool = SocketPool::prefork(vec![o.addr()], 1).unwrap();
        let a = pool.checkout(0).unwrap();
        let b = pool.checkout(0).unwrap(); // overflow
        assert_eq!(pool.overflow_connects(), 1);
        pool.release(0, a);
        pool.release(0, b);
        assert_eq!(pool.idle_count(0), 2, "overflow conns join the pool");
    }

    #[test]
    fn pooled_connections_actually_work() {
        let o = origin();
        let pool = SocketPool::prefork(vec![o.addr()], 2).unwrap();
        let conn = pool.checkout(0).unwrap();
        let mut reader = std::io::BufReader::new(conn.try_clone().unwrap());
        let mut writer = conn;
        crate::http::write_request(&mut writer, &"/x".parse().unwrap()).unwrap();
        let resp = crate::http::read_response(&mut reader).unwrap();
        assert_eq!(resp.body, b"pool");
        pool.release(0, writer);
    }
}
