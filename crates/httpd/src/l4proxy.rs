//! The content-blind layer-4 baseline over real sockets.
//!
//! A TCP connection router: when a client connects, pick a backend
//! *before any HTTP bytes arrive* (round robin over the configured
//! backends) and splice the two sockets byte-for-byte in both directions.
//! Because the decision precedes the request, the router cannot honor
//! partitioned placement — requests for content the chosen node lacks
//! simply 404 (§2.1: DNS and layer-4 approaches "are content-blind,
//! because they determine the target server before the client sends out
//! the HTTP request").

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running layer-4 proxy.
pub struct L4Proxy {
    addr: SocketAddr,
    connections: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for L4Proxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("L4Proxy")
            .field("addr", &self.addr)
            .field("connections", &self.connections())
            .finish()
    }
}

impl L4Proxy {
    /// Starts the proxy, distributing client connections round-robin over
    /// `backends`.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn start(backends: Vec<SocketAddr>) -> io::Result<L4Proxy> {
        assert!(!backends.is_empty(), "need at least one backend");
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let connections = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let next = Arc::new(AtomicUsize::new(0));

        let accept_thread = {
            let connections = Arc::clone(&connections);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("cpms-l4".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(client) = stream else { continue };
                        // Content-blind decision: made before reading a byte.
                        let idx = next.fetch_add(1, Ordering::Relaxed) % backends.len();
                        let backend_addr = backends[idx];
                        connections.fetch_add(1, Ordering::Relaxed);
                        let _ = std::thread::Builder::new()
                            .name("l4-conn".to_string())
                            .spawn(move || {
                                let _ = splice(client, backend_addr);
                            });
                    }
                })?
        };

        Ok(L4Proxy {
            addr,
            connections,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Client connections accepted.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Stops accepting new connections.
    pub fn shutdown(&mut self) {
        if let Some(thread) = self.accept_thread.take() {
            self.stop.store(true, Ordering::Release);
            let _ = TcpStream::connect(self.addr);
            let _ = thread.join();
        }
    }
}

impl Drop for L4Proxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bidirectional byte splice between the client and one backend.
fn splice(client: TcpStream, backend_addr: SocketAddr) -> io::Result<()> {
    let backend = TcpStream::connect(backend_addr)?;
    client.set_nodelay(true)?;
    backend.set_nodelay(true)?;

    let c2s = {
        let mut from = client.try_clone()?;
        let mut to = backend.try_clone()?;
        std::thread::Builder::new()
            .name("l4-c2s".to_string())
            .spawn(move || {
                let _ = copy_until_eof(&mut from, &mut to);
                let _ = to.shutdown(std::net::Shutdown::Write);
            })?
    };
    let mut from = backend;
    let mut to = client;
    let _ = copy_until_eof(&mut from, &mut to);
    let _ = to.shutdown(std::net::Shutdown::Write);
    let _ = c2s.join();
    Ok(())
}

fn copy_until_eof(from: &mut TcpStream, to: &mut TcpStream) -> io::Result<u64> {
    let mut buf = [0u8; 16 * 1024];
    let mut total = 0u64;
    loop {
        let n = from.read(&mut buf)?;
        if n == 0 {
            return Ok(total);
        }
        to.write_all(&buf[..n])?;
        total += n as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use crate::origin::{OriginServer, SiteContent};
    use cpms_model::NodeId;

    fn start_origin(node: u16, files: &[(&str, &[u8])]) -> OriginServer {
        let mut site = SiteContent::new();
        for (path, body) in files {
            site.add_static(path, body.to_vec());
        }
        OriginServer::start(NodeId(node), site).unwrap()
    }

    #[test]
    fn splices_full_replication_transparently() {
        // both nodes have everything: content-blind routing works
        let o0 = start_origin(0, &[("/a", b"A"), ("/b", b"B")]);
        let o1 = start_origin(1, &[("/a", b"A"), ("/b", b"B")]);
        let proxy = L4Proxy::start(vec![o0.addr(), o1.addr()]).unwrap();

        for _ in 0..4 {
            let mut client = HttpClient::connect(proxy.addr()).unwrap();
            assert_eq!(client.get("/a").unwrap().body, b"A");
            assert_eq!(client.get("/b").unwrap().body, b"B");
        }
        assert_eq!(proxy.connections(), 4);
        // round robin: both origins saw traffic
        assert!(o0.served() > 0);
        assert!(o1.served() > 0);
    }

    #[test]
    fn content_blind_routing_fails_partitioned_placement() {
        // node 0 has only /a, node 1 has only /b: half the requests 404
        let o0 = start_origin(0, &[("/a", b"A")]);
        let o1 = start_origin(1, &[("/b", b"B")]);
        let proxy = L4Proxy::start(vec![o0.addr(), o1.addr()]).unwrap();

        let mut failures = 0;
        for _ in 0..8 {
            let mut client = HttpClient::connect(proxy.addr()).unwrap();
            if client.get("/a").unwrap().status != 200 {
                failures += 1;
            }
        }
        assert!(
            failures > 0,
            "an L4 router must misroute some partitioned requests"
        );
    }

    #[test]
    fn keep_alive_pins_the_backend() {
        let o0 = start_origin(0, &[("/who", b"zero")]);
        let o1 = start_origin(1, &[("/who", b"one")]);
        let proxy = L4Proxy::start(vec![o0.addr(), o1.addr()]).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        let first = client.get("/who").unwrap().body;
        for _ in 0..5 {
            assert_eq!(
                client.get("/who").unwrap().body,
                first,
                "one spliced connection = one backend"
            );
        }
        assert_eq!(client.reconnects(), 0);
    }
}
