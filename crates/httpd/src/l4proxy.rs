//! The content-blind layer-4 baseline over real sockets.
//!
//! A TCP connection router: when a client connects, pick a backend
//! *before any HTTP bytes arrive* (round robin over the configured
//! backends) and splice the two sockets byte-for-byte in both directions.
//! Because the decision precedes the request, the router cannot honor
//! partitioned placement — requests for content the chosen node lacks
//! simply 404 (§2.1: DNS and layer-4 approaches "are content-blind,
//! because they determine the target server before the client sends out
//! the HTTP request").
//!
//! Like the content-aware proxy, the router is event-driven: a single
//! thread runs one `cpms-reactor` poll loop over the listener and every
//! spliced pair, with bounded per-direction buffers providing
//! backpressure (a slow receiver throttles the fast sender's reads). The
//! old implementation burned two threads per connection; this one serves
//! any number of splices from one.

use cpms_reactor::{new_poller, waker_pair, Event, Interest, Slab, SlabKey, TimerWheel, Token};
use std::collections::VecDeque;
use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const LISTENER_TOKEN: Token = Token(0);
const WAKER_TOKEN: Token = Token(1);
/// Pipe tokens start above the fixed ones: `BASE + (key << 1 | side)`.
const TOKEN_BASE: u64 = 2;

/// Per-direction splice buffer cap: a receiver this far behind pauses
/// the sender's reads instead of ballooning memory.
const BUF_CAP: usize = 64 * 1024;

/// Poll cap so the loop re-checks the stop flag without events.
const POLL_CAP: Duration = Duration::from_millis(500);

/// How long the listener rests after a failed accept before re-arming.
const ACCEPT_REARM: Duration = Duration::from_millis(100);

#[derive(Clone, Copy, PartialEq, Eq)]
enum Side {
    Client,
    Backend,
}

fn pipe_token(key: SlabKey, side: Side) -> Token {
    let bit = match side {
        Side::Client => 0,
        Side::Backend => 1,
    };
    Token(TOKEN_BASE + ((key << 1) | bit))
}

/// One spliced client↔backend pair.
struct Pipe {
    client: TcpStream,
    backend: TcpStream,
    /// Client → backend bytes in flight.
    c2b: VecDeque<u8>,
    /// Backend → client bytes in flight.
    b2c: VecDeque<u8>,
    client_eof: bool,
    backend_eof: bool,
    /// We forwarded the client's FIN to the backend.
    backend_fin_sent: bool,
    /// We forwarded the backend's FIN to the client.
    client_fin_sent: bool,
    client_interest: Interest,
    backend_interest: Interest,
}

impl Pipe {
    fn desired_client_interest(&self) -> Interest {
        Interest {
            read: !self.client_eof && self.c2b.len() < BUF_CAP,
            write: !self.b2c.is_empty(),
        }
    }

    fn desired_backend_interest(&self) -> Interest {
        Interest {
            read: !self.backend_eof && self.b2c.len() < BUF_CAP,
            write: !self.c2b.is_empty(),
        }
    }

    fn done(&self) -> bool {
        self.client_eof && self.backend_eof && self.c2b.is_empty() && self.b2c.is_empty()
    }
}

/// A running layer-4 proxy.
pub struct L4Proxy {
    addr: SocketAddr,
    connections: Arc<AtomicU64>,
    accept_errors: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    waker: Option<cpms_reactor::Waker>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for L4Proxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("L4Proxy")
            .field("addr", &self.addr)
            .field("connections", &self.connections())
            .field("accept_errors", &self.accept_errors())
            .finish()
    }
}

impl L4Proxy {
    /// Starts the proxy, distributing client connections round-robin over
    /// `backends`.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn start(backends: Vec<SocketAddr>) -> io::Result<L4Proxy> {
        assert!(!backends.is_empty(), "need at least one backend");
        // Deep backlog + non-blocking from birth, same rationale as the
        // content-aware proxy's listener.
        let listener =
            cpms_reactor::listen_with_backlog("127.0.0.1:0".parse().expect("literal addr"), 4096)?;
        let addr = listener.local_addr()?;
        let connections = Arc::new(AtomicU64::new(0));
        let accept_errors = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let (waker, wake_rx) = waker_pair()?;

        let thread = {
            let connections = Arc::clone(&connections);
            let accept_errors = Arc::clone(&accept_errors);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("cpms-l4".to_string())
                .spawn(move || {
                    splice_loop(SpliceLoop {
                        listener,
                        backends,
                        connections,
                        accept_errors,
                        stop,
                        wake_rx,
                    });
                })?
        };

        Ok(L4Proxy {
            addr,
            connections,
            accept_errors,
            stop,
            waker: Some(waker),
            thread: Some(thread),
        })
    }

    /// The proxy's listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Client connections accepted.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Accept calls that failed (the listener is parked briefly after
    /// each, then re-armed).
    pub fn accept_errors(&self) -> u64 {
        self.accept_errors.load(Ordering::Relaxed)
    }

    /// Stops the proxy and closes every spliced connection.
    pub fn shutdown(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.stop.store(true, Ordering::Release);
            if let Some(waker) = &self.waker {
                waker.wake();
            }
            let _ = thread.join();
        }
    }
}

impl Drop for L4Proxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct SpliceLoop {
    listener: TcpListener,
    backends: Vec<SocketAddr>,
    connections: Arc<AtomicU64>,
    accept_errors: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    wake_rx: cpms_reactor::WakeReceiver,
}

fn splice_loop(ctx: SpliceLoop) {
    let Ok(mut poller) = new_poller() else {
        return;
    };
    if poller
        .register(ctx.listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
        .is_err()
        || poller
            .register(ctx.wake_rx.fd(), WAKER_TOKEN, Interest::READ)
            .is_err()
    {
        return;
    }
    let mut timers = TimerWheel::new(Duration::from_millis(25), 64);
    let mut pipes: Slab<Pipe> = Slab::new();
    let mut scratch = vec![0u8; 16 * 1024];
    let mut events: Vec<Event> = Vec::with_capacity(64);
    let mut next = 0usize;
    let mut parked = false;

    loop {
        let timeout = timers
            .next_timeout(Instant::now())
            .map_or(POLL_CAP, |t| t.min(POLL_CAP));
        if poller.wait(&mut events, Some(timeout)).is_err() {
            return;
        }
        if ctx.stop.load(Ordering::Acquire) {
            return;
        }
        let mut accept_ready = false;
        for &ev in &events {
            match ev.token {
                WAKER_TOKEN => ctx.wake_rx.drain(),
                LISTENER_TOKEN => accept_ready = true,
                Token(raw) => {
                    let key = (raw - TOKEN_BASE) >> 1;
                    let side = if (raw - TOKEN_BASE) & 1 == 0 {
                        Side::Client
                    } else {
                        Side::Backend
                    };
                    pump_pipe(&mut *poller, &mut pipes, key, side, &mut scratch);
                }
            }
        }
        let mut fired = Vec::new();
        timers.expire_into(Instant::now(), &mut fired);
        if !fired.is_empty() && parked {
            if poller
                .register(ctx.listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
                .is_ok()
            {
                parked = false;
                accept_ready = true;
            } else {
                timers.schedule_after(Instant::now(), ACCEPT_REARM);
            }
        }
        if accept_ready && !parked {
            parked = accept_burst(&ctx, &mut *poller, &mut timers, &mut pipes, &mut next);
        }
    }
}

/// Accepts until the listener runs dry; returns `true` when an accept
/// error parked the listener on the re-arm timer.
fn accept_burst(
    ctx: &SpliceLoop,
    poller: &mut dyn cpms_reactor::Poller,
    timers: &mut TimerWheel,
    pipes: &mut Slab<Pipe>,
    next: &mut usize,
) -> bool {
    loop {
        match ctx.listener.accept() {
            Ok((client, _)) => {
                // Content-blind decision: made before reading a byte.
                let idx = *next % ctx.backends.len();
                *next = next.wrapping_add(1);
                ctx.connections.fetch_add(1, Ordering::Relaxed);
                let Ok(backend) = TcpStream::connect(ctx.backends[idx]) else {
                    continue; // client dropped, as the old thread did
                };
                if client.set_nodelay(true).is_err()
                    || backend.set_nodelay(true).is_err()
                    || client.set_nonblocking(true).is_err()
                    || backend.set_nonblocking(true).is_err()
                {
                    continue;
                }
                let key = pipes.insert(Pipe {
                    client,
                    backend,
                    c2b: VecDeque::new(),
                    b2c: VecDeque::new(),
                    client_eof: false,
                    backend_eof: false,
                    backend_fin_sent: false,
                    client_fin_sent: false,
                    client_interest: Interest::READ,
                    backend_interest: Interest::READ,
                });
                let pipe = pipes.get_mut(key).expect("just inserted");
                if poller
                    .register(
                        pipe.client.as_raw_fd(),
                        pipe_token(key, Side::Client),
                        Interest::READ,
                    )
                    .is_err()
                {
                    pipes.remove(key);
                    continue;
                }
                if poller
                    .register(
                        pipe.backend.as_raw_fd(),
                        pipe_token(key, Side::Backend),
                        Interest::READ,
                    )
                    .is_err()
                {
                    let pipe = pipes.remove(key).expect("just inserted");
                    let _ = poller.deregister(pipe.client.as_raw_fd());
                    continue;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                ctx.accept_errors.fetch_add(1, Ordering::Relaxed);
                let _ = poller.deregister(ctx.listener.as_raw_fd());
                timers.schedule_after(Instant::now(), ACCEPT_REARM);
                return true;
            }
        }
    }
}

/// Runs every transfer the pipe can make right now, propagates FINs, and
/// closes the pipe when both directions have drained (or on error).
fn pump_pipe(
    poller: &mut dyn cpms_reactor::Poller,
    pipes: &mut Slab<Pipe>,
    key: SlabKey,
    side: Side,
    scratch: &mut [u8],
) {
    let Some(pipe) = pipes.get_mut(key) else {
        return; // stale token
    };
    // A side we asked nothing of can only be woken by an error or a full
    // hangup; with level-triggered polling it would re-fire forever.
    let interest = match side {
        Side::Client => pipe.client_interest,
        Side::Backend => pipe.backend_interest,
    };
    let dead_wakeup = !interest.read && !interest.write;

    let ok = !dead_wakeup
        && pump_in(&pipe.client, &mut pipe.c2b, &mut pipe.client_eof, scratch).is_ok()
        && pump_in(&pipe.backend, &mut pipe.b2c, &mut pipe.backend_eof, scratch).is_ok()
        && pump_out(&pipe.client, &mut pipe.b2c).is_ok()
        && pump_out(&pipe.backend, &mut pipe.c2b).is_ok();

    if ok {
        // Forward each side's FIN once its buffered bytes have flushed,
        // so a half-closing client still receives the full response.
        if pipe.client_eof && pipe.c2b.is_empty() && !pipe.backend_fin_sent {
            pipe.backend_fin_sent = true;
            let _ = pipe.backend.shutdown(Shutdown::Write);
        }
        if pipe.backend_eof && pipe.b2c.is_empty() && !pipe.client_fin_sent {
            pipe.client_fin_sent = true;
            let _ = pipe.client.shutdown(Shutdown::Write);
        }
    }

    if !ok || pipe.done() {
        let pipe = pipes.remove(key).expect("present above");
        let _ = poller.deregister(pipe.client.as_raw_fd());
        let _ = poller.deregister(pipe.backend.as_raw_fd());
        return;
    }

    let want_client = pipe.desired_client_interest();
    if want_client != pipe.client_interest {
        pipe.client_interest = want_client;
        let _ = poller.reregister(
            pipe.client.as_raw_fd(),
            pipe_token(key, Side::Client),
            want_client,
        );
    }
    let want_backend = pipe.desired_backend_interest();
    if want_backend != pipe.backend_interest {
        pipe.backend_interest = want_backend;
        let _ = poller.reregister(
            pipe.backend.as_raw_fd(),
            pipe_token(key, Side::Backend),
            want_backend,
        );
    }
}

/// Reads from `from` into the bounded direction buffer until it would
/// block, the buffer fills, or EOF.
fn pump_in(
    from: &TcpStream,
    buf: &mut VecDeque<u8>,
    eof: &mut bool,
    scratch: &mut [u8],
) -> io::Result<()> {
    while !*eof && buf.len() < BUF_CAP {
        let want = (BUF_CAP - buf.len()).min(scratch.len());
        match (&mut &*from).read(&mut scratch[..want]) {
            Ok(0) => *eof = true,
            Ok(n) => buf.extend(&scratch[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Writes the direction buffer into `to` until it would block or drains.
fn pump_out(to: &TcpStream, buf: &mut VecDeque<u8>) -> io::Result<()> {
    use std::io::{IoSlice, Write};
    while !buf.is_empty() {
        let (a, b) = buf.as_slices();
        let bufs = [IoSlice::new(a), IoSlice::new(b)];
        let nbufs = if b.is_empty() { 1 } else { 2 };
        match (&mut &*to).write_vectored(&bufs[..nbufs]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                buf.drain(..n);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use crate::origin::{OriginServer, SiteContent};
    use cpms_model::NodeId;

    fn start_origin(node: u16, files: &[(&str, &[u8])]) -> OriginServer {
        let mut site = SiteContent::new();
        for (path, body) in files {
            site.add_static(path, body.to_vec());
        }
        OriginServer::start(NodeId(node), site).unwrap()
    }

    #[test]
    fn splices_full_replication_transparently() {
        // both nodes have everything: content-blind routing works
        let o0 = start_origin(0, &[("/a", b"A"), ("/b", b"B")]);
        let o1 = start_origin(1, &[("/a", b"A"), ("/b", b"B")]);
        let proxy = L4Proxy::start(vec![o0.addr(), o1.addr()]).unwrap();

        for _ in 0..4 {
            let mut client = HttpClient::connect(proxy.addr()).unwrap();
            assert_eq!(client.get("/a").unwrap().body, b"A");
            assert_eq!(client.get("/b").unwrap().body, b"B");
        }
        assert_eq!(proxy.connections(), 4);
        // round robin: both origins saw traffic
        assert!(o0.served() > 0);
        assert!(o1.served() > 0);
    }

    #[test]
    fn content_blind_routing_fails_partitioned_placement() {
        // node 0 has only /a, node 1 has only /b: half the requests 404
        let o0 = start_origin(0, &[("/a", b"A")]);
        let o1 = start_origin(1, &[("/b", b"B")]);
        let proxy = L4Proxy::start(vec![o0.addr(), o1.addr()]).unwrap();

        let mut failures = 0;
        for _ in 0..8 {
            let mut client = HttpClient::connect(proxy.addr()).unwrap();
            if client.get("/a").unwrap().status != 200 {
                failures += 1;
            }
        }
        assert!(
            failures > 0,
            "an L4 router must misroute some partitioned requests"
        );
    }

    #[test]
    fn keep_alive_pins_the_backend() {
        let o0 = start_origin(0, &[("/who", b"zero")]);
        let o1 = start_origin(1, &[("/who", b"one")]);
        let proxy = L4Proxy::start(vec![o0.addr(), o1.addr()]).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        let first = client.get("/who").unwrap().body;
        for _ in 0..5 {
            assert_eq!(
                client.get("/who").unwrap().body,
                first,
                "one spliced connection = one backend"
            );
        }
        assert_eq!(client.reconnects(), 0);
    }

    #[test]
    fn many_concurrent_splices_share_one_thread() {
        // 32 concurrent keep-alive clients over a single splice thread:
        // the event loop must interleave them all without a hang.
        let o0 = start_origin(0, &[("/x", b"X")]);
        let proxy = L4Proxy::start(vec![o0.addr()]).unwrap();
        let addr = proxy.addr();
        std::thread::scope(|scope| {
            for _ in 0..32 {
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).unwrap();
                    for _ in 0..5 {
                        assert_eq!(client.get("/x").unwrap().body, b"X");
                    }
                });
            }
        });
        assert_eq!(proxy.connections(), 32);
        assert_eq!(proxy.accept_errors(), 0);
    }
}
