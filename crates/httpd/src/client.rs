//! A small keep-alive HTTP client used by tests, examples, and the live
//! benchmark loop (the role WebBench's client processes play in §5.1).

use crate::http::{read_response, write_request, ParseError, Response};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpStream};

/// A client holding one persistent connection to a server, transparently
/// reconnecting when the server closes it.
#[derive(Debug)]
pub struct HttpClient {
    addr: SocketAddr,
    stream: Option<ClientConn>,
    reconnects: u64,
    requests: u64,
}

#[derive(Debug)]
struct ClientConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connects to the server.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let mut client = HttpClient {
            addr,
            stream: None,
            reconnects: 0,
            requests: 0,
        };
        client.reconnect()?;
        client.reconnects = 0; // the initial connect is not a re-connect
        Ok(client)
    }

    fn reconnect(&mut self) -> io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        self.stream = Some(ClientConn {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        });
        self.reconnects += 1;
        Ok(())
    }

    /// Times the connection was re-established after the initial connect.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Requests issued.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Issues one GET, reusing the persistent connection and retrying once
    /// on a stale connection (the server may have closed it between
    /// requests).
    ///
    /// # Errors
    ///
    /// I/O or protocol failures after the retry.
    pub fn get(&mut self, path: &str) -> io::Result<Response> {
        let path: cpms_model::UrlPath = path
            .parse()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("{e}")))?;
        self.requests += 1;
        match self.try_get(&path) {
            Ok(resp) => Ok(resp),
            Err(_) => {
                // Stale or broken connection: reconnect and retry once.
                self.reconnect()?;
                self.try_get(&path)
                    .map_err(|e| io::Error::other(format!("{e}")))
            }
        }
    }

    fn try_get(&mut self, path: &cpms_model::UrlPath) -> Result<Response, ParseError> {
        let conn = self.stream.as_mut().ok_or(ParseError::ConnectionClosed)?;
        write_request(&mut conn.writer, path)?;
        read_response(&mut conn.reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::origin::{OriginServer, SiteContent};
    use cpms_model::NodeId;

    #[test]
    fn reconnects_after_server_close() {
        let mut site = SiteContent::new();
        site.add_static("/a", b"x".to_vec());
        let origin = OriginServer::start(NodeId(0), site).unwrap();

        let mut client = HttpClient::connect(origin.addr()).unwrap();
        assert_eq!(client.get("/a").unwrap().status, 200);
        assert_eq!(client.reconnects(), 0);

        // Simulate server-side close by making a fresh client whose first
        // connection we sabotage: drop the stream mid-life.
        client.stream = None;
        assert_eq!(client.get("/a").unwrap().status, 200);
        assert_eq!(client.reconnects(), 1);
        assert_eq!(client.requests(), 2);
    }

    #[test]
    fn rejects_invalid_path() {
        let mut site = SiteContent::new();
        site.add_static("/a", b"x".to_vec());
        let origin = OriginServer::start(NodeId(0), site).unwrap();
        let mut client = HttpClient::connect(origin.addr()).unwrap();
        assert!(client.get("no-leading-slash").is_err());
    }
}
