//! The content-aware distributor over real sockets.
//!
//! The socket-level equivalent of the paper's kernel module (§2.2): accept
//! the client connection, complete the handshake (done by the OS), read
//! the HTTP request, consult the URL table, bind the exchange to a
//! pre-forked persistent backend connection, and relay the response —
//! while the client sees a single ordinary HTTP server.
//!
//! The proxy is **multi-worker**: `workers` threads share the listening
//! socket (each holds its own handle to it) and serve accepted
//! connections to completion. Workers never share mutable routing state —
//! each owns a [`LiveRouter`] (pinned URL-table snapshot + private lookup
//! cache), a shard of the pre-forked connection pool, its own counters,
//! and a private hit ledger. The only cross-worker state is the shared
//! in-flight counters used for replica choice and the snapshot
//! publication protocol itself.
//!
//! Management mutates the table through the proxy's [`TablePublisher`]:
//! each mutation publishes a fresh immutable snapshot, which workers pick
//! up on their next request via one atomic generation check — the live
//! analogue of the paper's controller updating the distributor's table.

use crate::http::{read_request, read_response, write_request, write_response, ParseError};
use crate::pool::SocketPool;
use cpms_dispatch::LiveRouter;
use cpms_model::NodeId;
use cpms_urltable::{SnapshotHandle, TablePublisher, UrlTable};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Workers spawned by [`ContentAwareProxy::start`].
pub const DEFAULT_WORKERS: usize = 4;

/// One worker's counters. Written by exactly one thread; read by anyone.
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Requests successfully relayed.
    pub relayed: AtomicU64,
    /// Requests with no table record (503 to the client).
    pub unroutable: AtomicU64,
    /// Requests whose backend exchange failed (502 to the client).
    pub backend_errors: AtomicU64,
    /// Connections this worker accepted.
    pub connections: AtomicU64,
}

/// Counters the proxy exposes: per-worker cells, aggregated on read, so
/// workers never contend on a shared counter cache line.
#[derive(Debug)]
pub struct ProxyStats {
    workers: Vec<WorkerStats>,
}

impl ProxyStats {
    fn new(workers: usize) -> Self {
        ProxyStats {
            workers: (0..workers).map(|_| WorkerStats::default()).collect(),
        }
    }

    /// Number of workers.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// One worker's counters.
    pub fn worker(&self, idx: usize) -> &WorkerStats {
        &self.workers[idx]
    }

    /// Requests relayed, summed over workers.
    pub fn relayed(&self) -> u64 {
        self.sum(|w| &w.relayed)
    }

    /// Unroutable requests, summed over workers.
    pub fn unroutable(&self) -> u64 {
        self.sum(|w| &w.unroutable)
    }

    /// Backend failures, summed over workers.
    pub fn backend_errors(&self) -> u64 {
        self.sum(|w| &w.backend_errors)
    }

    /// Accepted connections, summed over workers.
    pub fn connections(&self) -> u64 {
        self.sum(|w| &w.connections)
    }

    fn sum(&self, cell: impl Fn(&WorkerStats) -> &AtomicU64) -> u64 {
        self.workers
            .iter()
            .map(|w| cell(w).load(Ordering::Relaxed))
            .sum()
    }
}

/// A running content-aware reverse proxy.
pub struct ContentAwareProxy {
    addr: SocketAddr,
    publisher: TablePublisher,
    stats: Arc<ProxyStats>,
    pools: Arc<Vec<SocketPool>>,
    ledgers: Arc<Vec<Mutex<HashMap<cpms_model::UrlPath, u64>>>>,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ContentAwareProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContentAwareProxy")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .field("relayed", &self.stats.relayed())
            .finish()
    }
}

impl ContentAwareProxy {
    /// Starts the proxy with [`DEFAULT_WORKERS`] worker threads:
    /// `backends[i]` is the address of `NodeId(i)`; `prefork` persistent
    /// connections are opened to each backend, sharded across workers.
    ///
    /// # Errors
    ///
    /// Bind or pre-fork connection failures.
    pub fn start(
        table: UrlTable,
        backends: Vec<SocketAddr>,
        prefork: u32,
    ) -> io::Result<ContentAwareProxy> {
        Self::start_with_workers(table, backends, prefork, DEFAULT_WORKERS)
    }

    /// Starts the proxy with an explicit worker count (≥ 1). Each worker
    /// accepts from the shared listener and serves its connections to
    /// completion, so `workers` bounds the number of concurrently served
    /// keep-alive clients.
    ///
    /// # Errors
    ///
    /// Bind or pre-fork connection failures.
    pub fn start_with_workers(
        table: UrlTable,
        backends: Vec<SocketAddr>,
        prefork: u32,
        workers: usize,
    ) -> io::Result<ContentAwareProxy> {
        assert!(workers >= 1, "a proxy needs at least one worker");
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let publisher = TablePublisher::new(table);

        // Shard the pre-forked connections: each worker owns a private
        // pool so checkouts never cross threads.
        let per_worker = (prefork as usize).div_ceil(workers) as u32;
        let pools: Arc<Vec<SocketPool>> = Arc::new(
            (0..workers)
                .map(|_| SocketPool::prefork(backends.clone(), per_worker))
                .collect::<io::Result<_>>()?,
        );
        let in_flight: Arc<Vec<AtomicU32>> =
            Arc::new((0..backends.len()).map(|_| AtomicU32::new(0)).collect());
        let stats = Arc::new(ProxyStats::new(workers));
        let ledgers: Arc<Vec<Mutex<HashMap<cpms_model::UrlPath, u64>>>> =
            Arc::new((0..workers).map(|_| Mutex::new(HashMap::new())).collect());
        let stop = Arc::new(AtomicBool::new(false));

        let handles = (0..workers)
            .map(|idx| {
                let listener = listener.try_clone()?;
                let handle = publisher.handle();
                let pools = Arc::clone(&pools);
                let in_flight = Arc::clone(&in_flight);
                let stats = Arc::clone(&stats);
                let ledgers = Arc::clone(&ledgers);
                let stop = Arc::clone(&stop);
                std::thread::Builder::new()
                    .name(format!("cpms-proxy-{idx}"))
                    .spawn(move || {
                        worker_loop(
                            idx,
                            &listener,
                            &handle,
                            &pools[idx],
                            &in_flight,
                            &stats,
                            &ledgers,
                            &stop,
                        )
                    })
            })
            .collect::<io::Result<Vec<_>>>()?;

        Ok(ContentAwareProxy {
            addr,
            publisher,
            stats,
            pools,
            ledgers,
            stop,
            workers: handles,
        })
    }

    /// The proxy's listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The URL-table publisher: management operations go through here and
    /// take effect on each worker's next request.
    pub fn publisher(&self) -> &TablePublisher {
        &self.publisher
    }

    /// A read-only handle to the published snapshot sequence.
    pub fn handle(&self) -> SnapshotHandle {
        self.publisher.handle()
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.stats.worker_count()
    }

    /// Per-worker counters (aggregates are on the struct).
    pub fn stats(&self) -> &ProxyStats {
        &self.stats
    }

    /// Requests relayed successfully (all workers).
    pub fn relayed(&self) -> u64 {
        self.stats.relayed()
    }

    /// Requests rejected for lack of a table record (all workers).
    pub fn unroutable(&self) -> u64 {
        self.stats.unroutable()
    }

    /// Requests that failed at the backend (all workers).
    pub fn backend_errors(&self) -> u64 {
        self.stats.backend_errors()
    }

    /// Checkouts that had to open a fresh backend connection, summed over
    /// the per-worker pool shards.
    pub fn overflow_connects(&self) -> u64 {
        self.pools.iter().map(SocketPool::overflow_connects).sum()
    }

    /// Routed hits recorded by workers but not yet folded into the table,
    /// summed across ledgers.
    pub fn pending_hits(&self) -> u64 {
        self.ledgers
            .iter()
            .map(|l| l.lock().values().sum::<u64>())
            .sum()
    }

    /// Drains every worker's hit ledger into the published table (one
    /// snapshot publication, no generation bump — hit counts are not
    /// routing data). The management plane calls this periodically to see
    /// per-object hit counts without putting a write on the request path.
    pub fn flush_hits(&self) {
        let mut drained: HashMap<cpms_model::UrlPath, u64> = HashMap::new();
        for ledger in self.ledgers.iter() {
            for (path, count) in ledger.lock().drain() {
                *drained.entry(path).or_insert(0) += count;
            }
        }
        if drained.is_empty() {
            return;
        }
        self.publisher.update(|t| {
            for (path, count) in &drained {
                t.record_hits(path, *count);
            }
        });
    }

    /// Stops accepting new connections and joins every worker.
    pub fn shutdown(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.stop.store(true, Ordering::Release);
        // Wake each worker blocked in accept(); a woken worker re-checks
        // the flag and exits without serving.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ContentAwareProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// How long a worker waits on an idle keep-alive connection before
/// re-checking the stop flag. Applies only *between* requests, never to
/// reads inside a request head.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// How long a worker allows a client to finish delivering a request head
/// once its first byte has arrived. Generous enough for slow clients that
/// trickle the request line and headers in separate packets; bounded so a
/// stalled client cannot pin a worker forever.
const REQUEST_READ_TIMEOUT: Duration = Duration::from_secs(2);

/// How long a worker sleeps after a failed `accept` before retrying, so a
/// persistent error (e.g. `EMFILE`) does not become a CPU-spinning loop.
const ACCEPT_RETRY_BACKOFF: Duration = Duration::from_millis(10);

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    idx: usize,
    listener: &TcpListener,
    handle: &SnapshotHandle,
    pool: &SocketPool,
    in_flight: &[AtomicU32],
    stats: &ProxyStats,
    ledgers: &[Mutex<HashMap<cpms_model::UrlPath, u64>>],
    stop: &AtomicBool,
) {
    let mut router = LiveRouter::new(handle, 1024);
    let worker_stats = stats.worker(idx);
    let ledger = &ledgers[idx];
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(ACCEPT_RETRY_BACKOFF);
                continue;
            }
        };
        if stop.load(Ordering::Acquire) {
            return;
        }
        worker_stats.connections.fetch_add(1, Ordering::Relaxed);
        let _ = serve_client(
            stream,
            &mut router,
            pool,
            in_flight,
            worker_stats,
            ledger,
            stop,
        );
        if stop.load(Ordering::Acquire) {
            return;
        }
    }
}

fn serve_client(
    stream: TcpStream,
    router: &mut LiveRouter,
    pool: &SocketPool,
    in_flight: &[AtomicU32],
    stats: &WorkerStats,
    ledger: &Mutex<HashMap<cpms_model::UrlPath, u64>>,
    stop: &AtomicBool,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    // `timeouts` shares the socket with reader and writer; it exists only
    // to flip SO_RCVTIMEO between the idle poll and the in-request read.
    let timeouts = stream.try_clone()?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        // Idle between requests: poll with a short timeout so shutdown
        // never hangs on a silent keep-alive client. No request bytes have
        // been consumed yet, so a timeout here loses nothing.
        timeouts.set_read_timeout(Some(IDLE_POLL))?;
        loop {
            match reader.fill_buf() {
                Ok([]) => return Ok(()),
                Ok(_) => break,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if stop.load(Ordering::Acquire) {
                        return Ok(());
                    }
                }
                Err(e) => return Err(e),
            }
        }
        // The request head has started arriving: give the client a longer,
        // bounded window to deliver the rest. A short per-read timeout here
        // would abort mid-parse and misinterpret the remaining header bytes
        // as a fresh request line on the retry.
        timeouts.set_read_timeout(Some(REQUEST_READ_TIMEOUT))?;
        let request = match read_request(&mut reader) {
            Ok(r) => r,
            Err(ParseError::ConnectionClosed) => return Ok(()),
            Err(ParseError::Io(e))
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Client stalled mid-request: parse state is unrecoverable,
                // drop the connection.
                return Ok(());
            }
            Err(ParseError::Io(e)) => return Err(e),
            Err(ParseError::Malformed(_)) => {
                write_response(&mut writer, 400, b"bad request", false)?;
                return Ok(());
            }
        };
        let keep_alive = request.keep_alive;

        // --- routing decision: snapshot lookup + least in-flight replica.
        // Nodes without a configured backend address are vetoed.
        let target = router.route(&request.path, |n| {
            in_flight
                .get(n.index())
                .map_or(u64::MAX, |c| u64::from(c.load(Ordering::Relaxed)))
        });
        let Some((node, _entry)) = target else {
            stats.unroutable.fetch_add(1, Ordering::Relaxed);
            write_response(&mut writer, 503, b"no location for path", keep_alive)?;
            if keep_alive {
                continue;
            }
            return Ok(());
        };
        *ledger.lock().entry(request.path.clone()).or_insert(0) += 1;

        // --- bind to a pre-forked connection and relay
        in_flight[node.index()].fetch_add(1, Ordering::Relaxed);
        let exchange = relay_once(pool, node, &request.path);
        in_flight[node.index()].fetch_sub(1, Ordering::Relaxed);

        match exchange {
            Ok(response) => {
                stats.relayed.fetch_add(1, Ordering::Relaxed);
                write_response(&mut writer, response.status, &response.body, keep_alive)?;
            }
            Err(_) => {
                stats.backend_errors.fetch_add(1, Ordering::Relaxed);
                write_response(&mut writer, 502, b"backend failure", keep_alive)?;
            }
        }
        if !keep_alive {
            return Ok(());
        }
    }
}

fn relay_once(
    pool: &SocketPool,
    node: NodeId,
    path: &cpms_model::UrlPath,
) -> Result<crate::http::Response, ParseError> {
    let conn = pool.checkout(node.index())?;
    let mut backend_reader = BufReader::new(conn.try_clone().map_err(ParseError::Io)?);
    let mut backend_writer = conn;
    let result = write_request(&mut backend_writer, path)
        .map_err(ParseError::Io)
        .and_then(|()| read_response(&mut backend_reader));
    match &result {
        Ok(_) => pool.release(node.index(), backend_writer),
        Err(_) => pool.discard(node.index(), backend_writer),
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use crate::origin::{OriginServer, SiteContent};
    use cpms_model::{ContentId, ContentKind, UrlPath};
    use cpms_urltable::UrlEntry;

    fn start_origin(node: u16, files: &[(&str, &[u8])]) -> OriginServer {
        let mut site = SiteContent::new();
        for (path, body) in files {
            site.add_static(path, body.to_vec());
        }
        OriginServer::start(NodeId(node), site).unwrap()
    }

    fn entry(id: u32, nodes: &[u16]) -> UrlEntry {
        UrlEntry::new(ContentId(id), ContentKind::StaticHtml, 16)
            .with_locations(nodes.iter().map(|&n| NodeId(n)))
    }

    #[test]
    fn routes_by_content() {
        // node 0 has /a only; node 1 has /b only — partitioned placement
        let o0 = start_origin(0, &[("/a", b"from-node-0")]);
        let o1 = start_origin(1, &[("/b", b"from-node-1")]);

        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        table.insert("/b".parse().unwrap(), entry(1, &[1])).unwrap();

        let proxy = ContentAwareProxy::start(table, vec![o0.addr(), o1.addr()], 2).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();

        assert_eq!(client.get("/a").unwrap().body, b"from-node-0");
        assert_eq!(client.get("/b").unwrap().body, b"from-node-1");
        assert_eq!(proxy.relayed(), 2);
        assert_eq!(o0.served(), 1);
        assert_eq!(o1.served(), 1);
    }

    #[test]
    fn unroutable_paths_get_503() {
        let o0 = start_origin(0, &[("/a", b"x")]);
        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start(table, vec![o0.addr()], 1).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        let resp = client.get("/unknown").unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(proxy.unroutable(), 1);
        // the connection survived the 503 (keep-alive)
        assert_eq!(client.get("/a").unwrap().status, 200);
        assert_eq!(client.reconnects(), 0);
    }

    #[test]
    fn live_table_updates_reroute() {
        let o0 = start_origin(0, &[("/page", b"old-node")]);
        let o1 = start_origin(1, &[("/page", b"new-node")]);
        let mut table = UrlTable::new();
        table
            .insert("/page".parse().unwrap(), entry(0, &[0]))
            .unwrap();
        let proxy = ContentAwareProxy::start(table, vec![o0.addr(), o1.addr()], 1).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        assert_eq!(client.get("/page").unwrap().body, b"old-node");

        // management migrates the page: one snapshot publication adds
        // node 1 and drops node 0 atomically — no worker can observe the
        // intermediate state.
        let path: UrlPath = "/page".parse().unwrap();
        proxy.publisher().update(|t| {
            t.add_location(&path, NodeId(1)).unwrap();
            t.remove_location(&path, NodeId(0)).unwrap();
        });
        assert_eq!(client.get("/page").unwrap().body, b"new-node");
    }

    #[test]
    fn replicated_content_balances_by_in_flight() {
        let o0 = start_origin(0, &[("/r", b"r0")]);
        let o1 = start_origin(1, &[("/r", b"r1")]);
        let mut table = UrlTable::new();
        table
            .insert("/r".parse().unwrap(), entry(0, &[0, 1]))
            .unwrap();
        let proxy = ContentAwareProxy::start(table, vec![o0.addr(), o1.addr()], 2).unwrap();
        let addr = proxy.addr();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).unwrap();
                    for _ in 0..25 {
                        assert_eq!(client.get("/r").unwrap().status, 200);
                    }
                });
            }
        });
        // Both replicas served traffic.
        assert!(o0.served() > 0, "node 0 got {}", o0.served());
        assert!(o1.served() > 0, "node 1 got {}", o1.served());
        assert_eq!(o0.served() + o1.served(), 100);
    }

    #[test]
    fn workers_split_connections() {
        let o0 = start_origin(0, &[("/w", b"w")]);
        let mut table = UrlTable::new();
        table.insert("/w".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start_with_workers(table, vec![o0.addr()], 4, 4).unwrap();
        let addr = proxy.addr();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).unwrap();
                    for _ in 0..10 {
                        assert_eq!(client.get("/w").unwrap().status, 200);
                    }
                });
            }
        });
        assert_eq!(proxy.relayed(), 40);
        assert_eq!(proxy.stats().connections(), 4);
        // Aggregation really is a sum of per-worker cells.
        let per_worker: u64 = (0..proxy.worker_count())
            .map(|i| proxy.stats().worker(i).relayed.load(Ordering::Relaxed))
            .sum();
        assert_eq!(per_worker, 40);
        // With 4 concurrent keep-alive clients and 4 workers, the work
        // cannot all land on one worker.
        let busy_workers = (0..proxy.worker_count())
            .filter(|&i| proxy.stats().worker(i).relayed.load(Ordering::Relaxed) > 0)
            .count();
        assert!(busy_workers > 1, "only {busy_workers} worker(s) served");
    }

    #[test]
    fn slow_request_heads_parse_across_packets() {
        // A client that trickles the request line and headers in separate
        // packets, each gap longer than IDLE_POLL: the proxy must keep the
        // partial parse alive rather than time out mid-head and misread the
        // remaining header bytes as a fresh request line.
        let o0 = start_origin(0, &[("/slow", b"patient")]);
        let mut table = UrlTable::new();
        table
            .insert("/slow".parse().unwrap(), entry(0, &[0]))
            .unwrap();
        let proxy = ContentAwareProxy::start(table, vec![o0.addr()], 1).unwrap();

        use std::io::{Read, Write};
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        for chunk in [
            &b"GET /slow "[..],
            b"HTTP/1.1\r\n",
            b"Connection: close\r\n",
            b"\r\n",
        ] {
            stream.write_all(chunk).unwrap();
            std::thread::sleep(IDLE_POLL + Duration::from_millis(30));
        }
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8_lossy(&raw);
        assert!(text.starts_with("HTTP/1.1 200"), "slow client got: {text}");
        assert!(text.ends_with("patient"), "slow client got: {text}");
        assert_eq!(proxy.relayed(), 1);
    }

    #[test]
    fn malformed_requests_get_400() {
        let o0 = start_origin(0, &[("/a", b"x")]);
        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start(table, vec![o0.addr()], 1).unwrap();

        use std::io::{Read, Write};
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        stream.write_all(b"GARBAGE\r\n\r\n").unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8_lossy(&raw);
        assert!(
            text.starts_with("HTTP/1.1 400 Bad Request"),
            "malformed request got: {text}"
        );
    }

    #[test]
    fn backend_failure_yields_502() {
        // A "backend" that accepts connections and immediately drops them:
        // pre-forking succeeds, but every relayed exchange dies.
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let dead_addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                drop(conn);
            }
        });

        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start(table, vec![dead_addr], 1).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        let resp = client.get("/a").unwrap();
        assert_eq!(resp.status, 502);
        assert!(proxy.backend_errors() >= 1);
    }

    #[test]
    fn table_hit_counters_accumulate() {
        let o0 = start_origin(0, &[("/a", b"x")]);
        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start(table, vec![o0.addr()], 1).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        for _ in 0..5 {
            client.get("/a").unwrap();
        }
        // Hits accrue in per-worker ledgers, off the request path…
        assert_eq!(proxy.pending_hits(), 5);
        // …and folding them in makes them visible in the published table.
        proxy.flush_hits();
        assert_eq!(proxy.pending_hits(), 0);
        let hits = proxy
            .handle()
            .load()
            .lookup(&"/a".parse().unwrap())
            .unwrap()
            .hits();
        assert_eq!(hits, 5);
    }
}
