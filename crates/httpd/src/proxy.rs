//! The content-aware distributor over real sockets.
//!
//! The socket-level equivalent of the paper's kernel module (§2.2): accept
//! the client connection, complete the handshake (done by the OS), read
//! the HTTP request, consult the URL table, bind the exchange to a
//! pre-forked persistent backend connection, and relay the response —
//! while the client sees a single ordinary HTTP server.
//!
//! The proxy is **multi-worker**: `workers` threads share the listening
//! socket (each holds its own handle to it) and serve accepted
//! connections to completion. Workers never share mutable routing state —
//! each owns a [`LiveRouter`] (pinned URL-table snapshot + private lookup
//! cache), a shard of the pre-forked connection pool, its own counters,
//! and a private hit ledger. The only cross-worker state is the shared
//! in-flight counters used for replica choice and the snapshot
//! publication protocol itself.
//!
//! Management mutates the table through the proxy's [`TablePublisher`]:
//! each mutation publishes a fresh immutable snapshot, which workers pick
//! up on their next request via one atomic generation check — the live
//! analogue of the paper's controller updating the distributor's table.

use crate::http::{read_request, read_response, write_request_traced, write_response, ParseError};
use crate::pool::SocketPool;
use cpms_dispatch::LiveRouter;
use cpms_model::{NodeId, UrlPath};
use cpms_obs::{
    Counter, HistogramRecorder, MetricsRegistry, ScopedTrace, Span, SpanCollector, TraceContext,
    TracedSpan,
};
use cpms_urltable::{SnapshotHandle, TablePublisher, UrlTable};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Workers spawned by [`ContentAwareProxy::start`].
pub const DEFAULT_WORKERS: usize = 4;

/// Admin path serving the registry in Prometheus text exposition format.
pub const METRICS_PATH: &str = "/_cpms/metrics";

/// Admin path serving the registry as JSON.
pub const METRICS_JSON_PATH: &str = "/_cpms/metrics.json";

/// Admin path serving this process's retained trace spans as JSON (see
/// [`SpanCollector::to_json`]). `cpms-lab` scrapes this from every
/// process and merges the dumps into the cluster-wide `traces.json`.
pub const TRACE_JSON_PATH: &str = "/_cpms/trace.json";

/// One worker's counters. Written by exactly one thread; read by anyone.
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Requests successfully relayed.
    pub relayed: AtomicU64,
    /// Requests with no table record (503 to the client).
    pub unroutable: AtomicU64,
    /// Requests whose backend exchange failed (502 to the client).
    pub backend_errors: AtomicU64,
    /// Requests that could not even obtain a backend connection —
    /// counted apart from [`backend_errors`](Self::backend_errors)
    /// because pool exhaustion points at capacity, not at a sick node.
    pub pool_failures: AtomicU64,
    /// Connections this worker accepted.
    pub connections: AtomicU64,
}

/// Counters the proxy exposes: per-worker cells, aggregated on read, so
/// workers never contend on a shared counter cache line.
#[derive(Debug)]
pub struct ProxyStats {
    workers: Vec<WorkerStats>,
}

impl ProxyStats {
    fn new(workers: usize) -> Self {
        ProxyStats {
            workers: (0..workers).map(|_| WorkerStats::default()).collect(),
        }
    }

    /// Number of workers.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// One worker's counters.
    pub fn worker(&self, idx: usize) -> &WorkerStats {
        &self.workers[idx]
    }

    /// Requests relayed, summed over workers.
    pub fn relayed(&self) -> u64 {
        self.sum(|w| &w.relayed)
    }

    /// Unroutable requests, summed over workers.
    pub fn unroutable(&self) -> u64 {
        self.sum(|w| &w.unroutable)
    }

    /// Backend failures, summed over workers.
    pub fn backend_errors(&self) -> u64 {
        self.sum(|w| &w.backend_errors)
    }

    /// Backend-pool acquire failures, summed over workers.
    pub fn pool_failures(&self) -> u64 {
        self.sum(|w| &w.pool_failures)
    }

    /// Accepted connections, summed over workers.
    pub fn connections(&self) -> u64 {
        self.sum(|w| &w.connections)
    }

    fn sum(&self, cell: impl Fn(&WorkerStats) -> &AtomicU64) -> u64 {
        self.workers
            .iter()
            .map(|w| cell(w).load(Ordering::Relaxed))
            .sum()
    }
}

/// A running content-aware reverse proxy.
pub struct ContentAwareProxy {
    addr: SocketAddr,
    publisher: TablePublisher,
    stats: Arc<ProxyStats>,
    pools: Arc<Vec<SocketPool>>,
    ledgers: Arc<Vec<Mutex<HashMap<cpms_model::UrlPath, u64>>>>,
    registry: Arc<MetricsRegistry>,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ContentAwareProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContentAwareProxy")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .field("connections", &self.stats.connections())
            .field("relayed", &self.stats.relayed())
            .field("unroutable", &self.stats.unroutable())
            .field("backend_errors", &self.stats.backend_errors())
            .field("pool_failures", &self.stats.pool_failures())
            .finish()
    }
}

impl ContentAwareProxy {
    /// Starts the proxy with [`DEFAULT_WORKERS`] worker threads:
    /// `backends[i]` is the address of `NodeId(i)`; `prefork` persistent
    /// connections are opened to each backend, sharded across workers.
    ///
    /// # Errors
    ///
    /// Bind or pre-fork connection failures.
    pub fn start(
        table: UrlTable,
        backends: Vec<SocketAddr>,
        prefork: u32,
    ) -> io::Result<ContentAwareProxy> {
        Self::start_with_workers(table, backends, prefork, DEFAULT_WORKERS)
    }

    /// Starts the proxy with an explicit worker count (≥ 1). Each worker
    /// accepts from the shared listener and serves its connections to
    /// completion, so `workers` bounds the number of concurrently served
    /// keep-alive clients.
    ///
    /// # Errors
    ///
    /// Bind or pre-fork connection failures.
    pub fn start_with_workers(
        table: UrlTable,
        backends: Vec<SocketAddr>,
        prefork: u32,
        workers: usize,
    ) -> io::Result<ContentAwareProxy> {
        Self::start_with_registry(
            table,
            backends,
            prefork,
            workers,
            Arc::new(MetricsRegistry::new()),
        )
    }

    /// Starts the proxy recording into a caller-supplied registry, so
    /// other components (the management controller, benches) can share
    /// one stats surface with the request path. This is the single-
    /// system-image wiring: everything the caller registers alongside
    /// the proxy shows up on [`METRICS_PATH`] and in console reports.
    ///
    /// # Errors
    ///
    /// Bind or pre-fork connection failures.
    pub fn start_with_registry(
        table: UrlTable,
        backends: Vec<SocketAddr>,
        prefork: u32,
        workers: usize,
        registry: Arc<MetricsRegistry>,
    ) -> io::Result<ContentAwareProxy> {
        Self::start_with_publisher(
            TablePublisher::new(table),
            backends,
            prefork,
            workers,
            registry,
        )
    }

    /// Starts the proxy over a caller-supplied [`TablePublisher`] — the
    /// seam that lets a management controller and the proxy share one
    /// logical table (`controller.publisher().share()`), so management
    /// mutations route live without any copy step between the planes.
    ///
    /// # Errors
    ///
    /// Bind or pre-fork connection failures.
    pub fn start_with_publisher(
        publisher: TablePublisher,
        backends: Vec<SocketAddr>,
        prefork: u32,
        workers: usize,
        registry: Arc<MetricsRegistry>,
    ) -> io::Result<ContentAwareProxy> {
        assert!(workers >= 1, "a proxy needs at least one worker");
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;

        // Shard the pre-forked connections: each worker owns a private
        // pool so checkouts never cross threads.
        let per_worker = (prefork as usize).div_ceil(workers) as u32;
        let pools: Arc<Vec<SocketPool>> = Arc::new(
            (0..workers)
                .map(|_| SocketPool::prefork(backends.clone(), per_worker))
                .collect::<io::Result<_>>()?,
        );
        let in_flight: Arc<Vec<AtomicU32>> =
            Arc::new((0..backends.len()).map(|_| AtomicU32::new(0)).collect());
        let stats = Arc::new(ProxyStats::new(workers));
        let ledgers: Arc<Vec<Mutex<HashMap<cpms_model::UrlPath, u64>>>> =
            Arc::new((0..workers).map(|_| Mutex::new(HashMap::new())).collect());
        let stop = Arc::new(AtomicBool::new(false));

        let handles = (0..workers)
            .map(|idx| {
                let ctx = WorkerContext {
                    idx,
                    workers,
                    listener: listener.try_clone()?,
                    handle: publisher.handle(),
                    pools: Arc::clone(&pools),
                    in_flight: Arc::clone(&in_flight),
                    stats: Arc::clone(&stats),
                    ledgers: Arc::clone(&ledgers),
                    registry: Arc::clone(&registry),
                    stop: Arc::clone(&stop),
                };
                std::thread::Builder::new()
                    .name(format!("cpms-proxy-{idx}"))
                    .spawn(move || worker_loop(ctx))
            })
            .collect::<io::Result<Vec<_>>>()?;

        Ok(ContentAwareProxy {
            addr,
            publisher,
            stats,
            pools,
            ledgers,
            registry,
            stop,
            workers: handles,
        })
    }

    /// The proxy's listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The URL-table publisher: management operations go through here and
    /// take effect on each worker's next request.
    pub fn publisher(&self) -> &TablePublisher {
        &self.publisher
    }

    /// A read-only handle to the published snapshot sequence.
    pub fn handle(&self) -> SnapshotHandle {
        self.publisher.handle()
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.stats.worker_count()
    }

    /// Per-worker counters (aggregates are on the struct).
    pub fn stats(&self) -> &ProxyStats {
        &self.stats
    }

    /// The metrics registry every worker records into. Shared with the
    /// caller of [`ContentAwareProxy::start_with_registry`], fresh
    /// otherwise.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Requests relayed successfully (all workers).
    pub fn relayed(&self) -> u64 {
        self.stats.relayed()
    }

    /// Requests rejected for lack of a table record (all workers).
    pub fn unroutable(&self) -> u64 {
        self.stats.unroutable()
    }

    /// Requests that failed at the backend (all workers).
    pub fn backend_errors(&self) -> u64 {
        self.stats.backend_errors()
    }

    /// Requests that could not obtain a backend connection (all workers).
    pub fn pool_failures(&self) -> u64 {
        self.stats.pool_failures()
    }

    /// Checkouts that had to open a fresh backend connection, summed over
    /// the per-worker pool shards.
    pub fn overflow_connects(&self) -> u64 {
        self.pools.iter().map(SocketPool::overflow_connects).sum()
    }

    /// Routed hits recorded by workers but not yet folded into the table,
    /// summed across ledgers.
    pub fn pending_hits(&self) -> u64 {
        self.ledgers
            .iter()
            .map(|l| l.lock().values().sum::<u64>())
            .sum()
    }

    /// Drains every worker's hit ledger into the published table (one
    /// snapshot publication, no generation bump — hit counts are not
    /// routing data). The management plane calls this periodically to see
    /// per-object hit counts without putting a write on the request path.
    pub fn flush_hits(&self) {
        let mut drained: HashMap<cpms_model::UrlPath, u64> = HashMap::new();
        for ledger in self.ledgers.iter() {
            for (path, count) in ledger.lock().drain() {
                *drained.entry(path).or_insert(0) += count;
            }
        }
        if drained.is_empty() {
            return;
        }
        self.publisher.update(|t| {
            for (path, count) in &drained {
                t.record_hits(path, *count);
            }
        });
    }

    /// Stops accepting new connections and joins every worker.
    pub fn shutdown(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.stop.store(true, Ordering::Release);
        // Wake each worker blocked in accept(); a woken worker re-checks
        // the flag and exits without serving.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ContentAwareProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// How long a worker waits on an idle keep-alive connection before
/// re-checking the stop flag. Applies only *between* requests, never to
/// reads inside a request head.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// How long a worker allows a client to finish delivering a request head
/// once its first byte has arrived. Generous enough for slow clients that
/// trickle the request line and headers in separate packets; bounded so a
/// stalled client cannot pin a worker forever.
const REQUEST_READ_TIMEOUT: Duration = Duration::from_secs(2);

/// How long a worker sleeps after a failed `accept` before retrying, so a
/// persistent error (e.g. `EMFILE`) does not become a CPU-spinning loop.
const ACCEPT_RETRY_BACKOFF: Duration = Duration::from_millis(10);

/// Requests slower end-to-end than this leave a post-mortem event even
/// when they succeed.
const SLOW_REQUEST: Duration = Duration::from_millis(250);

/// Everything one worker thread needs, moved into it at spawn.
struct WorkerContext {
    idx: usize,
    workers: usize,
    listener: TcpListener,
    handle: SnapshotHandle,
    pools: Arc<Vec<SocketPool>>,
    in_flight: Arc<Vec<AtomicU32>>,
    stats: Arc<ProxyStats>,
    ledgers: Arc<Vec<Mutex<HashMap<UrlPath, u64>>>>,
    registry: Arc<MetricsRegistry>,
    stop: Arc<AtomicBool>,
}

/// Per-worker metric handles: histogram recorders bound to this worker's
/// shard (recording is a few relaxed atomics, no lock) plus the shared
/// counters. Resolved once at worker start, off the request path.
struct WorkerMetrics {
    parse_ns: HistogramRecorder,
    relay_ns: HistogramRecorder,
    request_ns: HistogramRecorder,
    connections: Arc<Counter>,
    requests: Arc<Counter>,
    relayed: Arc<Counter>,
    unroutable: Arc<Counter>,
    backend_errors: Arc<Counter>,
    pool_failures: Arc<Counter>,
    malformed: Arc<Counter>,
    /// The registry's span collector, resolved once so opening a span
    /// on the request path costs no registry lookup.
    spans: Arc<SpanCollector>,
}

impl WorkerMetrics {
    fn new(registry: &MetricsRegistry, idx: usize, workers: usize) -> Self {
        let recorder = |name| registry.histogram_with_shards(name, workers).recorder(idx);
        WorkerMetrics {
            spans: Arc::clone(registry.spans()),
            parse_ns: recorder("proxy_parse_ns"),
            relay_ns: recorder("proxy_relay_ns"),
            request_ns: recorder("proxy_request_ns"),
            connections: registry.counter("proxy_connections_total"),
            requests: registry.counter("proxy_requests_total"),
            relayed: registry.counter("proxy_relayed_total"),
            unroutable: registry.counter("proxy_unroutable_total"),
            backend_errors: registry.counter("proxy_backend_errors_total"),
            pool_failures: registry.counter("proxy_pool_failures_total"),
            malformed: registry.counter("proxy_malformed_total"),
        }
    }
}

fn worker_loop(ctx: WorkerContext) {
    let mut worker = Worker::new(ctx);
    loop {
        let stream = match worker.ctx.listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if worker.ctx.stop.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(ACCEPT_RETRY_BACKOFF);
                continue;
            }
        };
        if worker.ctx.stop.load(Ordering::Acquire) {
            return;
        }
        worker.stats().connections.fetch_add(1, Ordering::Relaxed);
        worker.metrics.connections.inc();
        let _ = worker.serve_client(stream);
        if worker.ctx.stop.load(Ordering::Acquire) {
            return;
        }
    }
}

/// One worker thread's state: private router (pinned snapshot + lookup
/// cache), private pool shard, per-worker counters and recorders.
struct Worker {
    ctx: WorkerContext,
    router: LiveRouter,
    metrics: WorkerMetrics,
}

impl Worker {
    fn new(ctx: WorkerContext) -> Self {
        let mut router = LiveRouter::new(&ctx.handle, 1024);
        router.attach_metrics(&ctx.registry, ctx.idx);
        let metrics = WorkerMetrics::new(&ctx.registry, ctx.idx, ctx.workers);
        Worker {
            router,
            metrics,
            ctx,
        }
    }

    fn stats(&self) -> &WorkerStats {
        self.ctx.stats.worker(self.ctx.idx)
    }

    fn pool(&self) -> &SocketPool {
        &self.ctx.pools[self.ctx.idx]
    }

    fn serve_client(&mut self, stream: TcpStream) -> io::Result<()> {
        stream.set_nodelay(true)?;
        // `timeouts` shares the socket with reader and writer; it exists
        // only to flip SO_RCVTIMEO between the idle poll and the
        // in-request read.
        let timeouts = stream.try_clone()?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        loop {
            // Idle between requests: poll with a short timeout so shutdown
            // never hangs on a silent keep-alive client. No request bytes
            // have been consumed yet, so a timeout here loses nothing.
            timeouts.set_read_timeout(Some(IDLE_POLL))?;
            loop {
                match reader.fill_buf() {
                    Ok([]) => return Ok(()),
                    Ok(_) => break,
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        if self.ctx.stop.load(Ordering::Acquire) {
                            return Ok(());
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
            // The first request byte is in: the request is live from here,
            // so this is where its clock and id start.
            let started = Instant::now();
            let request_id = self.ctx.registry.next_request_id();
            self.metrics.requests.inc();
            // The request head has started arriving: give the client a
            // longer, bounded window to deliver the rest. A short per-read
            // timeout here would abort mid-parse and misinterpret the
            // remaining header bytes as a fresh request line on the retry.
            timeouts.set_read_timeout(Some(REQUEST_READ_TIMEOUT))?;
            let parse_span = Span::enter("parse", &self.metrics.parse_ns);
            let request = match read_request(&mut reader) {
                Ok(r) => r,
                Err(ParseError::ConnectionClosed) => return Ok(()),
                Err(ParseError::Io(e))
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    // Client stalled mid-request: parse state is
                    // unrecoverable, drop the connection.
                    self.ctx.registry.events().record(
                        "parse",
                        Some(request_id),
                        "client stalled mid-request-head".to_string(),
                    );
                    return Ok(());
                }
                Err(ParseError::Io(e)) => return Err(e),
                Err(ParseError::Malformed(why)) => {
                    self.metrics.malformed.inc();
                    self.ctx.registry.events().record(
                        "parse",
                        Some(request_id),
                        format!("malformed request: {why}"),
                    );
                    write_response(&mut writer, 400, b"bad request", false)?;
                    return Ok(());
                }
            };
            parse_span.finish();
            let keep_alive = request.keep_alive;

            // --- admin surface: the stats endpoints are served by the
            // proxy itself, not routed to a backend.
            if request.path.as_str() == METRICS_PATH {
                let body = self.render_metrics(false);
                write_response(&mut writer, 200, body.as_bytes(), keep_alive)?;
                if keep_alive {
                    continue;
                }
                return Ok(());
            }
            if request.path.as_str() == METRICS_JSON_PATH {
                let body = self.render_metrics(true);
                write_response(&mut writer, 200, body.as_bytes(), keep_alive)?;
                if keep_alive {
                    continue;
                }
                return Ok(());
            }
            if request.path.as_str() == TRACE_JSON_PATH {
                let body = self.ctx.registry.spans().to_json();
                write_response(&mut writer, 200, body.as_bytes(), keep_alive)?;
                if keep_alive {
                    continue;
                }
                return Ok(());
            }

            // --- trace root: the proxy is the cluster's entry point, so
            // every relayed request opens (or, when the client carried an
            // `x-cpms-trace` header, continues) a distributed trace here.
            // Admin paths above stay untraced — scrapes are not traffic.
            let _inherited = request.trace.map(ScopedTrace::activate);
            let mut request_span =
                TracedSpan::enter_head_sampled(&self.metrics.spans, "proxy.request");
            request_span.set_detail(request.path.as_str().to_string());

            // --- routing decision: snapshot lookup + least in-flight
            // replica. Nodes without a configured backend address are
            // vetoed.
            let in_flight = &self.ctx.in_flight;
            let target = self.router.route(&request.path, |n| {
                in_flight
                    .get(n.index())
                    .map_or(u64::MAX, |c| u64::from(c.load(Ordering::Relaxed)))
            });
            let Some((node, _entry)) = target else {
                self.stats().unroutable.fetch_add(1, Ordering::Relaxed);
                self.metrics.unroutable.inc();
                request_span.set_error(true);
                request_span.set_detail(format!("unroutable {}", request.path));
                self.ctx.registry.events().record(
                    "route",
                    Some(request_id),
                    format!("unroutable path {}", request.path),
                );
                write_response(&mut writer, 503, b"no location for path", keep_alive)?;
                self.metrics
                    .request_ns
                    .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
                if keep_alive {
                    continue;
                }
                return Ok(());
            };
            *self.ctx.ledgers[self.ctx.idx]
                .lock()
                .entry(request.path.clone())
                .or_insert(0) += 1;

            // --- bind to a pre-forked connection and relay. The relay
            // gets its own child span whose context rides the backend
            // request as an `x-cpms-trace` header, so the origin's span
            // parents to this hop.
            in_flight[node.index()].fetch_add(1, Ordering::Relaxed);
            let relay_span = Span::enter("relay", &self.metrics.relay_ns);
            let exchange = {
                let mut relay_trace = TracedSpan::enter(&self.metrics.spans, "proxy.relay");
                relay_trace.set_detail(format!("node={}", node.0));
                let relay_ctx = relay_trace.context();
                let exchange = relay_once(self.pool(), node, &request.path, relay_ctx.as_ref());
                relay_trace.set_error(exchange.is_err());
                exchange
            };
            relay_span.finish();
            in_flight[node.index()].fetch_sub(1, Ordering::Relaxed);

            if exchange.is_err() {
                request_span.set_error(true);
            }
            match exchange {
                Ok(response) => {
                    self.stats().relayed.fetch_add(1, Ordering::Relaxed);
                    self.metrics.relayed.inc();
                    write_response(&mut writer, response.status, &response.body, keep_alive)?;
                }
                Err(RelayError::Acquire(e)) => {
                    self.stats().pool_failures.fetch_add(1, Ordering::Relaxed);
                    self.metrics.pool_failures.inc();
                    self.ctx.registry.events().record(
                        "pool",
                        Some(request_id),
                        format!("no connection to node {}: {e}", node.0),
                    );
                    write_response(&mut writer, 502, b"backend failure", keep_alive)?;
                }
                Err(RelayError::Exchange(e)) => {
                    self.stats().backend_errors.fetch_add(1, Ordering::Relaxed);
                    self.metrics.backend_errors.inc();
                    self.ctx.registry.events().record(
                        "relay",
                        Some(request_id),
                        format!("exchange with node {} failed: {e:?}", node.0),
                    );
                    write_response(&mut writer, 502, b"backend failure", keep_alive)?;
                }
            }
            let elapsed = started.elapsed();
            self.metrics
                .request_ns
                .record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
            if elapsed >= SLOW_REQUEST {
                self.ctx.registry.events().record(
                    "request",
                    Some(request_id),
                    format!("slow request {} took {elapsed:?}", request.path),
                );
            }
            if !keep_alive {
                return Ok(());
            }
        }
    }

    /// Samples the point-in-time gauges (table size and memory, snapshot
    /// generation, pool occupancy, per-node in-flight) into the registry,
    /// then renders the whole registry. Gauges are sampled at render time
    /// because they are reads of existing state — putting them on the
    /// request path would buy nothing.
    fn render_metrics(&self, json: bool) -> String {
        let registry = &self.ctx.registry;
        let table = self.ctx.handle.load();
        registry
            .gauge("urltable_entries")
            .set(i64::try_from(table.len()).unwrap_or(i64::MAX));
        registry
            .gauge("urltable_memory_bytes")
            .set(i64::try_from(table.memory_bytes()).unwrap_or(i64::MAX));
        registry
            .gauge("urltable_generation")
            .set(i64::try_from(self.ctx.handle.generation()).unwrap_or(i64::MAX));
        let pools = &self.ctx.pools;
        registry
            .gauge("proxy_pool_checkouts")
            .set(i64::try_from(pools.iter().map(SocketPool::checkouts).sum::<u64>()).unwrap_or(0));
        registry.gauge("proxy_pool_overflow_connects").set(
            i64::try_from(pools.iter().map(SocketPool::overflow_connects).sum::<u64>())
                .unwrap_or(0),
        );
        for (node, counter) in self.ctx.in_flight.iter().enumerate() {
            let idle: usize = pools.iter().map(|p| p.idle_count(node)).sum();
            registry
                .gauge(&format!("proxy_node{node}_in_flight"))
                .set(i64::from(counter.load(Ordering::Relaxed)));
            registry
                .gauge(&format!("proxy_node{node}_pool_idle"))
                .set(i64::try_from(idle).unwrap_or(i64::MAX));
        }
        let snapshot = registry.snapshot();
        if json {
            snapshot.to_json()
        } else {
            snapshot.to_prometheus()
        }
    }
}

/// Why one relay attempt failed — acquisition and exchange failures are
/// reported apart because they call for different remedies (capacity vs.
/// node health).
#[derive(Debug)]
enum RelayError {
    /// No backend connection could be obtained at all.
    Acquire(io::Error),
    /// The request/response exchange on an established connection failed.
    Exchange(ParseError),
}

fn relay_once(
    pool: &SocketPool,
    node: NodeId,
    path: &cpms_model::UrlPath,
    trace: Option<&TraceContext>,
) -> Result<crate::http::Response, RelayError> {
    let conn = pool.checkout(node.index()).map_err(RelayError::Acquire)?;
    let mut backend_reader = BufReader::new(conn.try_clone().map_err(RelayError::Acquire)?);
    let mut backend_writer = conn;
    let result = write_request_traced(&mut backend_writer, path, trace)
        .map_err(ParseError::Io)
        .and_then(|()| read_response(&mut backend_reader));
    match &result {
        Ok(_) => pool.release(node.index(), backend_writer),
        Err(_) => pool.discard(node.index(), backend_writer),
    }
    result.map_err(RelayError::Exchange)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use crate::origin::{OriginServer, SiteContent};
    use cpms_model::{ContentId, ContentKind, UrlPath};
    use cpms_urltable::UrlEntry;

    fn start_origin(node: u16, files: &[(&str, &[u8])]) -> OriginServer {
        let mut site = SiteContent::new();
        for (path, body) in files {
            site.add_static(path, body.to_vec());
        }
        OriginServer::start(NodeId(node), site).unwrap()
    }

    fn entry(id: u32, nodes: &[u16]) -> UrlEntry {
        UrlEntry::new(ContentId(id), ContentKind::StaticHtml, 16)
            .with_locations(nodes.iter().map(|&n| NodeId(n)))
    }

    #[test]
    fn routes_by_content() {
        // node 0 has /a only; node 1 has /b only — partitioned placement
        let o0 = start_origin(0, &[("/a", b"from-node-0")]);
        let o1 = start_origin(1, &[("/b", b"from-node-1")]);

        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        table.insert("/b".parse().unwrap(), entry(1, &[1])).unwrap();

        let proxy = ContentAwareProxy::start(table, vec![o0.addr(), o1.addr()], 2).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();

        assert_eq!(client.get("/a").unwrap().body, b"from-node-0");
        assert_eq!(client.get("/b").unwrap().body, b"from-node-1");
        assert_eq!(proxy.relayed(), 2);
        assert_eq!(o0.served(), 1);
        assert_eq!(o1.served(), 1);
    }

    #[test]
    fn unroutable_paths_get_503() {
        let o0 = start_origin(0, &[("/a", b"x")]);
        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start(table, vec![o0.addr()], 1).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        let resp = client.get("/unknown").unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(proxy.unroutable(), 1);
        // the connection survived the 503 (keep-alive)
        assert_eq!(client.get("/a").unwrap().status, 200);
        assert_eq!(client.reconnects(), 0);
    }

    #[test]
    fn live_table_updates_reroute() {
        let o0 = start_origin(0, &[("/page", b"old-node")]);
        let o1 = start_origin(1, &[("/page", b"new-node")]);
        let mut table = UrlTable::new();
        table
            .insert("/page".parse().unwrap(), entry(0, &[0]))
            .unwrap();
        let proxy = ContentAwareProxy::start(table, vec![o0.addr(), o1.addr()], 1).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        assert_eq!(client.get("/page").unwrap().body, b"old-node");

        // management migrates the page: one snapshot publication adds
        // node 1 and drops node 0 atomically — no worker can observe the
        // intermediate state.
        let path: UrlPath = "/page".parse().unwrap();
        proxy.publisher().update(|t| {
            t.add_location(&path, NodeId(1)).unwrap();
            t.remove_location(&path, NodeId(0)).unwrap();
        });
        assert_eq!(client.get("/page").unwrap().body, b"new-node");
    }

    #[test]
    fn shared_publisher_routes_external_mutations() {
        // The proxy runs over a publisher shared with an external writer
        // (standing in for the management controller): mutations through
        // the sibling publisher take effect on the proxy's next request.
        let o0 = start_origin(0, &[("/ext", b"ext-0")]);
        let o1 = start_origin(1, &[("/ext", b"ext-1")]);
        let controller_side = TablePublisher::new(UrlTable::new());
        let proxy = ContentAwareProxy::start_with_publisher(
            controller_side.share(),
            vec![o0.addr(), o1.addr()],
            1,
            1,
            Arc::new(MetricsRegistry::new()),
        )
        .unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        assert_eq!(client.get("/ext").unwrap().status, 503, "not yet published");
        controller_side
            .update(|t| t.insert("/ext".parse().unwrap(), entry(0, &[0])))
            .unwrap();
        assert_eq!(client.get("/ext").unwrap().body, b"ext-0");
        controller_side.update(|t| {
            let path: UrlPath = "/ext".parse().unwrap();
            t.add_location(&path, NodeId(1)).unwrap();
            t.remove_location(&path, NodeId(0)).unwrap();
        });
        assert_eq!(client.get("/ext").unwrap().body, b"ext-1");
        assert_eq!(proxy.handle().generation(), controller_side.generation());
    }

    #[test]
    fn replicated_content_balances_by_in_flight() {
        let o0 = start_origin(0, &[("/r", b"r0")]);
        let o1 = start_origin(1, &[("/r", b"r1")]);
        let mut table = UrlTable::new();
        table
            .insert("/r".parse().unwrap(), entry(0, &[0, 1]))
            .unwrap();
        let proxy = ContentAwareProxy::start(table, vec![o0.addr(), o1.addr()], 2).unwrap();
        let addr = proxy.addr();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).unwrap();
                    for _ in 0..25 {
                        assert_eq!(client.get("/r").unwrap().status, 200);
                    }
                });
            }
        });
        // Both replicas served traffic.
        assert!(o0.served() > 0, "node 0 got {}", o0.served());
        assert!(o1.served() > 0, "node 1 got {}", o1.served());
        assert_eq!(o0.served() + o1.served(), 100);
    }

    #[test]
    fn workers_split_connections() {
        let o0 = start_origin(0, &[("/w", b"w")]);
        let mut table = UrlTable::new();
        table.insert("/w".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start_with_workers(table, vec![o0.addr()], 4, 4).unwrap();
        let addr = proxy.addr();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).unwrap();
                    for _ in 0..10 {
                        assert_eq!(client.get("/w").unwrap().status, 200);
                    }
                });
            }
        });
        assert_eq!(proxy.relayed(), 40);
        assert_eq!(proxy.stats().connections(), 4);
        // Aggregation really is a sum of per-worker cells.
        let per_worker: u64 = (0..proxy.worker_count())
            .map(|i| proxy.stats().worker(i).relayed.load(Ordering::Relaxed))
            .sum();
        assert_eq!(per_worker, 40);
        // With 4 concurrent keep-alive clients and 4 workers, the work
        // cannot all land on one worker.
        let busy_workers = (0..proxy.worker_count())
            .filter(|&i| proxy.stats().worker(i).relayed.load(Ordering::Relaxed) > 0)
            .count();
        assert!(busy_workers > 1, "only {busy_workers} worker(s) served");
    }

    #[test]
    fn slow_request_heads_parse_across_packets() {
        // A client that trickles the request line and headers in separate
        // packets, each gap longer than IDLE_POLL: the proxy must keep the
        // partial parse alive rather than time out mid-head and misread the
        // remaining header bytes as a fresh request line.
        let o0 = start_origin(0, &[("/slow", b"patient")]);
        let mut table = UrlTable::new();
        table
            .insert("/slow".parse().unwrap(), entry(0, &[0]))
            .unwrap();
        let proxy = ContentAwareProxy::start(table, vec![o0.addr()], 1).unwrap();

        use std::io::{Read, Write};
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        for chunk in [
            &b"GET /slow "[..],
            b"HTTP/1.1\r\n",
            b"Connection: close\r\n",
            b"\r\n",
        ] {
            stream.write_all(chunk).unwrap();
            std::thread::sleep(IDLE_POLL + Duration::from_millis(30));
        }
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8_lossy(&raw);
        assert!(text.starts_with("HTTP/1.1 200"), "slow client got: {text}");
        assert!(text.ends_with("patient"), "slow client got: {text}");
        assert_eq!(proxy.relayed(), 1);
    }

    #[test]
    fn malformed_requests_get_400() {
        let o0 = start_origin(0, &[("/a", b"x")]);
        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start(table, vec![o0.addr()], 1).unwrap();

        use std::io::{Read, Write};
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        stream.write_all(b"GARBAGE\r\n\r\n").unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8_lossy(&raw);
        assert!(
            text.starts_with("HTTP/1.1 400 Bad Request"),
            "malformed request got: {text}"
        );
    }

    #[test]
    fn backend_failure_yields_502() {
        // A "backend" that accepts connections and immediately drops them:
        // pre-forking succeeds, but every relayed exchange dies.
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let dead_addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                drop(conn);
            }
        });

        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start(table, vec![dead_addr], 1).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        let resp = client.get("/a").unwrap();
        assert_eq!(resp.status, 502);
        assert!(proxy.backend_errors() >= 1);
    }

    #[test]
    fn metrics_endpoint_reports_request_path_families() {
        let o0 = start_origin(0, &[("/a", b"x")]);
        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start(table, vec![o0.addr()], 2).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        for _ in 0..3 {
            assert_eq!(client.get("/a").unwrap().status, 200);
        }
        assert_eq!(client.get("/unknown").unwrap().status, 503);

        let resp = client.get(METRICS_PATH).unwrap();
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        // Proxy family (request path), dispatch family (routing), and the
        // urltable family (lookup latency + render-time memory gauge)
        // all surface on the one endpoint.
        assert!(text.contains("proxy_relayed_total 3"), "{text}");
        assert!(text.contains("proxy_unroutable_total 1"), "{text}");
        assert!(text.contains("dispatch_requests_total 4"), "{text}");
        assert!(
            text.contains("urltable_lookup_ns{quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(text.contains("urltable_memory_bytes"), "{text}");
        assert!(text.contains("proxy_request_ns_count 4"), "{text}");

        let json = String::from_utf8(client.get(METRICS_JSON_PATH).unwrap().body).unwrap();
        assert!(json.contains("\"proxy_relayed_total\": 3"), "{json}");
        assert!(json.contains("\"histograms\""), "{json}");
        // The 503 left a post-mortem event correlated to its request id.
        assert!(json.contains("unroutable path /unknown"), "{json}");
    }

    /// Polls until `f` yields, because spans record when their guard
    /// drops — a hair after the response bytes reach the client.
    fn wait_for<T>(mut f: impl FnMut() -> Option<T>) -> T {
        for _ in 0..400 {
            if let Some(v) = f() {
                return v;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("condition not met within deadline");
    }

    #[test]
    fn relayed_requests_form_one_cross_process_trace() {
        let origin = start_origin(0, &[("/t", b"traced")]);
        let mut table = UrlTable::new();
        table.insert("/t".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start(table, vec![origin.addr()], 1).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        assert_eq!(client.get("/t").unwrap().status, 200);

        // The proxy rooted the trace and opened a relay hop under it.
        let (request, relay) = wait_for(|| {
            let spans = proxy.metrics().spans().snapshot();
            let request = spans.iter().find(|s| s.name == "proxy.request")?.clone();
            let relay = spans.iter().find(|s| s.name == "proxy.relay")?.clone();
            Some((request, relay))
        });
        assert_eq!(request.parent, None);
        assert_eq!(request.detail, "/t");
        assert_eq!(relay.trace, request.trace);
        assert_eq!(relay.parent, Some(request.span));

        // The origin — a separate "process" with its own registry —
        // recorded a span of the same trace, parented to the relay hop
        // carried over by the x-cpms-trace header.
        let served = wait_for(|| {
            let spans = origin.metrics().spans().snapshot();
            spans.iter().find(|s| s.name == "origin.request").cloned()
        });
        assert_eq!(served.trace, request.trace);
        assert_eq!(served.parent, Some(relay.span));
        assert!(!served.error);

        // Both halves export on their /_cpms/trace.json surfaces.
        let dump = String::from_utf8(client.get(TRACE_JSON_PATH).unwrap().body).unwrap();
        assert!(dump.contains(&request.trace.to_string()), "{dump}");
        assert!(dump.contains("proxy.relay"), "{dump}");
    }

    #[test]
    fn unroutable_requests_record_error_spans() {
        let o0 = start_origin(0, &[("/a", b"x")]);
        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start(table, vec![o0.addr()], 1).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        assert_eq!(client.get("/missing").unwrap().status, 503);
        let span = wait_for(|| {
            let spans = proxy.metrics().spans().snapshot();
            spans.iter().find(|s| s.name == "proxy.request").cloned()
        });
        assert!(span.error, "503 must mark the request span failed");
        assert!(span.detail.contains("unroutable"), "{}", span.detail);
    }

    #[test]
    fn pool_exhaustion_counts_apart_from_backend_errors() {
        // Backend that exists long enough to pre-fork, then vanishes: the
        // first request fails on the (dead) pooled connection — a backend
        // exchange error; the second finds the pool empty and the connect
        // refused — a pool acquire failure. The two must count apart.
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let gone_addr = listener.local_addr().unwrap();
        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start_with_workers(table, vec![gone_addr], 1, 1).unwrap();
        drop(listener);

        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        assert_eq!(client.get("/a").unwrap().status, 502);
        assert_eq!(client.get("/a").unwrap().status, 502);
        assert_eq!(proxy.backend_errors(), 1, "dead pooled connection");
        assert_eq!(proxy.pool_failures(), 1, "refused overflow connect");
        let snap = proxy.metrics().snapshot();
        assert_eq!(snap.counter("proxy_backend_errors_total"), Some(1));
        assert_eq!(snap.counter("proxy_pool_failures_total"), Some(1));
    }

    #[test]
    fn debug_reports_every_aggregate() {
        let o0 = start_origin(0, &[("/a", b"x")]);
        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start(table, vec![o0.addr()], 1).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        client.get("/a").unwrap();
        client.get("/missing").unwrap();
        let debug = format!("{proxy:?}");
        for field in [
            "connections: 1",
            "relayed: 1",
            "unroutable: 1",
            "backend_errors: 0",
            "pool_failures: 0",
        ] {
            assert!(debug.contains(field), "{field} missing from {debug}");
        }
    }

    #[test]
    fn table_hit_counters_accumulate() {
        let o0 = start_origin(0, &[("/a", b"x")]);
        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start(table, vec![o0.addr()], 1).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        for _ in 0..5 {
            client.get("/a").unwrap();
        }
        // Hits accrue in per-worker ledgers, off the request path…
        assert_eq!(proxy.pending_hits(), 5);
        // …and folding them in makes them visible in the published table.
        proxy.flush_hits();
        assert_eq!(proxy.pending_hits(), 0);
        let hits = proxy
            .handle()
            .load()
            .lookup(&"/a".parse().unwrap())
            .unwrap()
            .hits();
        assert_eq!(hits, 5);
    }
}
