//! The content-aware distributor over real sockets.
//!
//! The socket-level equivalent of the paper's kernel module (§2.2): accept
//! the client connection, complete the handshake (done by the OS), read
//! the HTTP request, consult the URL table, bind the exchange to a
//! pre-forked persistent backend connection, and relay the response —
//! while the client sees a single ordinary HTTP server.
//!
//! The proxy is **event-driven**: one acceptor thread plus `workers`
//! event-loop workers, each built on the `cpms-reactor` readiness layer
//! (epoll on Linux, poll(2) elsewhere). The acceptor owns the listening
//! socket, enforces the global connection cap (shedding the excess with
//! an immediate 503 rather than letting it queue), and hands accepted
//! sockets to workers round-robin through bounded queues. Each worker
//! then serves *all* of its connections — thousands of keep-alive clients
//! per thread — from one poll loop of non-blocking state machines (see
//! [`crate::conn`]); thread count is fixed by configuration, not by
//! concurrency.
//!
//! Workers never share mutable routing state — each owns a [`LiveRouter`]
//! (pinned URL-table snapshot + private lookup cache), a shard of the
//! pre-forked connection pool, its own counters, and a private hit
//! ledger. The only cross-worker state is the shared in-flight counters
//! used for replica choice, the admission counters, and the snapshot
//! publication protocol itself.
//!
//! Management mutates the table through the proxy's [`TablePublisher`]:
//! each mutation publishes a fresh immutable snapshot, which workers pick
//! up on their next request via one atomic generation check — the live
//! analogue of the paper's controller updating the distributor's table.

use crate::conn::{worker_loop, WorkerBoot};
use crate::http::response_head;
use crate::pool::SocketPool;
use cpms_obs::{Counter, MetricsRegistry, Sampler};
use cpms_reactor::{new_poller, waker_pair, Event, Interest, Token, Waker};
use cpms_urltable::{SnapshotHandle, TablePublisher, UrlTable};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Workers spawned by [`ContentAwareProxy::start`].
pub const DEFAULT_WORKERS: usize = 4;

/// Global concurrent-connection cap when none is configured.
pub const DEFAULT_MAX_CONNS: usize = 4096;

/// Admin path serving the registry in Prometheus text exposition format.
pub const METRICS_PATH: &str = "/_cpms/metrics";

/// Admin path serving the registry as JSON.
pub const METRICS_JSON_PATH: &str = "/_cpms/metrics.json";

/// Admin path serving this process's retained trace spans as JSON (see
/// [`cpms_obs::SpanCollector::to_json`]). `cpms-lab` scrapes this from
/// every process and merges the dumps into the cluster-wide
/// `traces.json`.
pub const TRACE_JSON_PATH: &str = "/_cpms/trace.json";

/// Admin path serving the flight recorder's retained time series as
/// JSON (see [`cpms_obs::SeriesRecorder::to_json`]). Empty until a
/// recorder is installed — set [`ProxyConfig::record_interval`] (or run
/// an external [`cpms_obs::Sampler`]) to populate it.
pub const SERIES_JSON_PATH: &str = "/_cpms/series.json";

/// Accepted connections an acceptor may park on one worker's handoff
/// queue before shedding instead — bounds the accept backlog a slow
/// worker can accumulate.
const HANDOFF_CAP: usize = 1024;

/// How long the acceptor parks a listener after a non-transient accept
/// failure (e.g. `EMFILE`) before re-arming it. Replaces the old
/// sleep-in-loop backoff: the thread keeps serving its waker and timers
/// while the listener rests.
const ACCEPT_REARM: Duration = Duration::from_millis(100);

/// Acceptor poll cap so the stop flag is re-checked even without events.
const ACCEPT_POLL_CAP: Duration = Duration::from_millis(500);

/// Listen backlog: sized for redial storms (thousands of churning
/// keep-alive clients reconnecting inside one acceptor scheduling
/// quantum), where std's default 128 drops SYNs.
const LISTEN_BACKLOG: u32 = 4096;

/// One worker's counters. Written by exactly one thread; read by anyone.
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Requests successfully relayed.
    pub relayed: AtomicU64,
    /// Requests with no table record (503 to the client).
    pub unroutable: AtomicU64,
    /// Requests whose backend exchange failed (502 to the client).
    pub backend_errors: AtomicU64,
    /// Requests that could not even obtain a backend connection —
    /// counted apart from [`backend_errors`](Self::backend_errors)
    /// because pool exhaustion points at capacity, not at a sick node.
    pub pool_failures: AtomicU64,
    /// Connections this worker adopted.
    pub connections: AtomicU64,
}

/// Counters the proxy exposes: per-worker cells, aggregated on read, so
/// workers never contend on a shared counter cache line.
#[derive(Debug)]
pub struct ProxyStats {
    workers: Vec<WorkerStats>,
}

impl ProxyStats {
    fn new(workers: usize) -> Self {
        ProxyStats {
            workers: (0..workers).map(|_| WorkerStats::default()).collect(),
        }
    }

    /// Number of workers.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// One worker's counters.
    pub fn worker(&self, idx: usize) -> &WorkerStats {
        &self.workers[idx]
    }

    /// Requests relayed, summed over workers.
    pub fn relayed(&self) -> u64 {
        self.sum(|w| &w.relayed)
    }

    /// Unroutable requests, summed over workers.
    pub fn unroutable(&self) -> u64 {
        self.sum(|w| &w.unroutable)
    }

    /// Backend failures, summed over workers.
    pub fn backend_errors(&self) -> u64 {
        self.sum(|w| &w.backend_errors)
    }

    /// Backend-pool acquire failures, summed over workers.
    pub fn pool_failures(&self) -> u64 {
        self.sum(|w| &w.pool_failures)
    }

    /// Adopted connections, summed over workers.
    pub fn connections(&self) -> u64 {
        self.sum(|w| &w.connections)
    }

    fn sum(&self, cell: impl Fn(&WorkerStats) -> &AtomicU64) -> u64 {
        self.workers
            .iter()
            .map(|w| cell(w).load(Ordering::Relaxed))
            .sum()
    }
}

/// A per-tenant concurrent-connection cap: tenants are the leading path
/// segment (`/shop/...` → tenant `shop`), so one tenant's connection
/// storm degrades that tenant, not the cluster.
#[derive(Debug, Clone)]
pub struct TenantCap {
    /// Leading path segment identifying the tenant (no slashes).
    pub prefix: String,
    /// Concurrent connections the tenant may hold.
    pub max_conns: u32,
}

/// Data-plane tuning knobs for [`ContentAwareProxy::start_with_config`].
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// Event-loop worker threads (≥ 1). Thread count is fixed at this
    /// regardless of connection count.
    pub workers: usize,
    /// Persistent connections pre-forked to each backend, sharded across
    /// workers.
    pub prefork: u32,
    /// Global concurrent-connection cap: connections beyond it are shed
    /// at accept time with an immediate 503.
    pub max_conns: usize,
    /// Per-tenant connection caps (see [`TenantCap`]).
    pub tenant_caps: Vec<TenantCap>,
    /// When set, the proxy installs a flight recorder on its registry
    /// and runs a background [`Sampler`] at this interval, populating
    /// [`SERIES_JSON_PATH`] and driving any installed SLO watchdog.
    /// `None` (the default) records nothing — the zero-overhead
    /// baseline.
    pub record_interval: Option<Duration>,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            workers: DEFAULT_WORKERS,
            prefork: 2,
            max_conns: DEFAULT_MAX_CONNS,
            tenant_caps: Vec::new(),
            record_interval: None,
        }
    }
}

/// Admission-control cell for one tenant, shared by all workers.
#[derive(Debug)]
pub(crate) struct TenantSlot {
    pub(crate) prefix: String,
    pub(crate) cap: u32,
    pub(crate) active: AtomicU32,
}

/// Bounded acceptor→worker connection handoff.
pub(crate) struct HandoffQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    cap: usize,
}

impl HandoffQueue {
    fn new(cap: usize) -> HandoffQueue {
        HandoffQueue {
            queue: Mutex::new(VecDeque::new()),
            cap,
        }
    }

    /// Enqueues unless full; a full queue hands the stream back so the
    /// caller can shed it.
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut queue = self.queue.lock();
        if queue.len() >= self.cap {
            return Err(stream);
        }
        queue.push_back(stream);
        Ok(())
    }

    /// Takes the oldest queued connection, if any.
    pub(crate) fn pop(&self) -> Option<TcpStream> {
        self.queue.lock().pop_front()
    }
}

/// A running content-aware reverse proxy.
pub struct ContentAwareProxy {
    addr: SocketAddr,
    publisher: TablePublisher,
    stats: Arc<ProxyStats>,
    pools: Arc<Vec<SocketPool>>,
    ledgers: Arc<Vec<Mutex<HashMap<cpms_model::UrlPath, u64>>>>,
    registry: Arc<MetricsRegistry>,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicI64>,
    wakers: Vec<Waker>,
    workers: Vec<JoinHandle<()>>,
    sampler: Option<Sampler>,
}

impl std::fmt::Debug for ContentAwareProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContentAwareProxy")
            .field("addr", &self.addr)
            .field("workers", &self.stats.worker_count())
            .field("connections", &self.stats.connections())
            .field("relayed", &self.stats.relayed())
            .field("unroutable", &self.stats.unroutable())
            .field("backend_errors", &self.stats.backend_errors())
            .field("pool_failures", &self.stats.pool_failures())
            .finish()
    }
}

impl ContentAwareProxy {
    /// Starts the proxy with [`DEFAULT_WORKERS`] worker threads:
    /// `backends[i]` is the address of `NodeId(i)`; `prefork` persistent
    /// connections are opened to each backend, sharded across workers.
    ///
    /// # Errors
    ///
    /// Bind or pre-fork connection failures.
    pub fn start(
        table: UrlTable,
        backends: Vec<SocketAddr>,
        prefork: u32,
    ) -> io::Result<ContentAwareProxy> {
        Self::start_with_workers(table, backends, prefork, DEFAULT_WORKERS)
    }

    /// Starts the proxy with an explicit worker count (≥ 1). Each worker
    /// runs one event loop serving all of its connections, so `workers`
    /// bounds CPU parallelism — not the number of concurrent clients.
    ///
    /// # Errors
    ///
    /// Bind or pre-fork connection failures.
    pub fn start_with_workers(
        table: UrlTable,
        backends: Vec<SocketAddr>,
        prefork: u32,
        workers: usize,
    ) -> io::Result<ContentAwareProxy> {
        Self::start_with_registry(
            table,
            backends,
            prefork,
            workers,
            Arc::new(MetricsRegistry::new()),
        )
    }

    /// Starts the proxy recording into a caller-supplied registry, so
    /// other components (the management controller, benches) can share
    /// one stats surface with the request path. This is the single-
    /// system-image wiring: everything the caller registers alongside
    /// the proxy shows up on [`METRICS_PATH`] and in console reports.
    ///
    /// # Errors
    ///
    /// Bind or pre-fork connection failures.
    pub fn start_with_registry(
        table: UrlTable,
        backends: Vec<SocketAddr>,
        prefork: u32,
        workers: usize,
        registry: Arc<MetricsRegistry>,
    ) -> io::Result<ContentAwareProxy> {
        Self::start_with_publisher(
            TablePublisher::new(table),
            backends,
            prefork,
            workers,
            registry,
        )
    }

    /// Starts the proxy over a caller-supplied [`TablePublisher`] — the
    /// seam that lets a management controller and the proxy share one
    /// logical table (`controller.publisher().share()`), so management
    /// mutations route live without any copy step between the planes.
    ///
    /// # Errors
    ///
    /// Bind or pre-fork connection failures.
    pub fn start_with_publisher(
        publisher: TablePublisher,
        backends: Vec<SocketAddr>,
        prefork: u32,
        workers: usize,
        registry: Arc<MetricsRegistry>,
    ) -> io::Result<ContentAwareProxy> {
        Self::start_with_config(
            publisher,
            backends,
            registry,
            ProxyConfig {
                workers,
                prefork,
                ..ProxyConfig::default()
            },
        )
    }

    /// Starts the proxy with the full set of data-plane knobs: worker
    /// count, pre-fork depth, global connection cap, and per-tenant
    /// connection caps.
    ///
    /// # Errors
    ///
    /// Bind or pre-fork connection failures.
    pub fn start_with_config(
        publisher: TablePublisher,
        backends: Vec<SocketAddr>,
        registry: Arc<MetricsRegistry>,
        config: ProxyConfig,
    ) -> io::Result<ContentAwareProxy> {
        let workers = config.workers;
        assert!(workers >= 1, "a proxy needs at least one worker");
        // Each proxied connection costs up to two fds (client + pooled
        // backend) plus slack for pools and admin; raise the soft nofile
        // limit toward what the configured cap implies.
        let _ = cpms_reactor::raise_nofile_limit(config.max_conns as u64 * 3 + 256);
        // Deep accept backlog: churning clients redial in bursts, and a
        // SYN dropped off std's default 128-slot backlog costs the client
        // a full retransmit timeout.
        let listener = cpms_reactor::listen_with_backlog(
            "127.0.0.1:0".parse().expect("literal addr"),
            LISTEN_BACKLOG,
        )?;
        let addr = listener.local_addr()?;

        // Shard the pre-forked connections: each worker owns a private
        // pool so checkouts never cross threads.
        let per_worker = (config.prefork as usize).div_ceil(workers) as u32;
        let pools: Arc<Vec<SocketPool>> = Arc::new(
            (0..workers)
                .map(|_| SocketPool::prefork(backends.clone(), per_worker))
                .collect::<io::Result<_>>()?,
        );
        let in_flight: Arc<Vec<AtomicU32>> =
            Arc::new((0..backends.len()).map(|_| AtomicU32::new(0)).collect());
        let stats = Arc::new(ProxyStats::new(workers));
        let ledgers: Arc<Vec<Mutex<HashMap<cpms_model::UrlPath, u64>>>> =
            Arc::new((0..workers).map(|_| Mutex::new(HashMap::new())).collect());
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicI64::new(0));
        let tenants: Arc<Vec<TenantSlot>> = Arc::new(
            config
                .tenant_caps
                .iter()
                .map(|t| TenantSlot {
                    prefix: t.prefix.clone(),
                    cap: t.max_conns,
                    active: AtomicU32::new(0),
                })
                .collect(),
        );

        // Surface the shedding and sizing metrics from the start so a
        // scrape sees them at zero rather than absent.
        registry.counter("proxy_conn_rejected_total");
        registry.counter("proxy_conn_tenant_rejected_total");
        registry.counter("reactor_accept_errors_total");
        registry.gauge("proxy_conn_active");
        registry
            .gauge("reactor_workers")
            .set(i64::try_from(workers).unwrap_or(i64::MAX));

        let mut wakers = Vec::with_capacity(workers + 1);
        let mut queues = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers + 1);
        for idx in 0..workers {
            let (waker, wake_rx) = waker_pair()?;
            let queue = Arc::new(HandoffQueue::new(HANDOFF_CAP));
            let boot = WorkerBoot {
                idx,
                workers,
                handle: publisher.handle(),
                pools: Arc::clone(&pools),
                in_flight: Arc::clone(&in_flight),
                stats: Arc::clone(&stats),
                ledgers: Arc::clone(&ledgers),
                registry: Arc::clone(&registry),
                stop: Arc::clone(&stop),
                queue: Arc::clone(&queue),
                wake_rx,
                active: Arc::clone(&active),
                tenants: Arc::clone(&tenants),
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("cpms-proxy-{idx}"))
                    .spawn(move || worker_loop(boot))?,
            );
            wakers.push(waker);
            queues.push(queue);
        }

        let (accept_waker, accept_rx) = waker_pair()?;
        let acceptor = AcceptorBoot {
            listener,
            queues,
            worker_wakers: wakers.clone(),
            stop: Arc::clone(&stop),
            active: Arc::clone(&active),
            max_conns: config.max_conns,
            rejected: registry.counter("proxy_conn_rejected_total"),
            accept_errors: registry.counter("reactor_accept_errors_total"),
            wake_rx: accept_rx,
        };
        handles.push(
            std::thread::Builder::new()
                .name("cpms-proxy-accept".to_string())
                .spawn(move || acceptor_loop(acceptor))?,
        );
        wakers.push(accept_waker);

        // Off the data plane entirely: the sampler thread snapshots the
        // registry on its own clock; workers never see it.
        let sampler = config
            .record_interval
            .map(|interval| Sampler::start(&registry, interval));

        Ok(ContentAwareProxy {
            addr,
            publisher,
            stats,
            pools,
            ledgers,
            registry,
            stop,
            active,
            wakers,
            workers: handles,
            sampler,
        })
    }

    /// The proxy's listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The URL-table publisher: management operations go through here and
    /// take effect on each worker's next request.
    pub fn publisher(&self) -> &TablePublisher {
        &self.publisher
    }

    /// A read-only handle to the published snapshot sequence.
    pub fn handle(&self) -> SnapshotHandle {
        self.publisher.handle()
    }

    /// Number of worker threads (the acceptor is not counted).
    pub fn worker_count(&self) -> usize {
        self.stats.worker_count()
    }

    /// Per-worker counters (aggregates are on the struct).
    pub fn stats(&self) -> &ProxyStats {
        &self.stats
    }

    /// The metrics registry every worker records into. Shared with the
    /// caller of [`ContentAwareProxy::start_with_registry`], fresh
    /// otherwise.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Connections currently admitted (accepted and not yet closed).
    pub fn active_connections(&self) -> u64 {
        u64::try_from(self.active.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Requests relayed successfully (all workers).
    pub fn relayed(&self) -> u64 {
        self.stats.relayed()
    }

    /// Requests rejected for lack of a table record (all workers).
    pub fn unroutable(&self) -> u64 {
        self.stats.unroutable()
    }

    /// Requests that failed at the backend (all workers).
    pub fn backend_errors(&self) -> u64 {
        self.stats.backend_errors()
    }

    /// Requests that could not obtain a backend connection (all workers).
    pub fn pool_failures(&self) -> u64 {
        self.stats.pool_failures()
    }

    /// Checkouts that had to open a fresh backend connection, summed over
    /// the per-worker pool shards.
    pub fn overflow_connects(&self) -> u64 {
        self.pools.iter().map(SocketPool::overflow_connects).sum()
    }

    /// Routed hits recorded by workers but not yet folded into the table,
    /// summed across ledgers.
    pub fn pending_hits(&self) -> u64 {
        self.ledgers
            .iter()
            .map(|l| l.lock().values().sum::<u64>())
            .sum()
    }

    /// Drains every worker's hit ledger into the published table (one
    /// snapshot publication, no generation bump — hit counts are not
    /// routing data). The management plane calls this periodically to see
    /// per-object hit counts without putting a write on the request path.
    pub fn flush_hits(&self) {
        let mut drained: HashMap<cpms_model::UrlPath, u64> = HashMap::new();
        for ledger in self.ledgers.iter() {
            for (path, count) in ledger.lock().drain() {
                *drained.entry(path).or_insert(0) += count;
            }
        }
        if drained.is_empty() {
            return;
        }
        self.publisher.update(|t| {
            for (path, count) in &drained {
                t.record_hits(path, *count);
            }
        });
    }

    /// Stops accepting new connections, closes every open one, and joins
    /// every thread.
    pub fn shutdown(&mut self) {
        if let Some(mut sampler) = self.sampler.take() {
            sampler.stop();
        }
        if self.workers.is_empty() {
            return;
        }
        self.stop.store(true, Ordering::Release);
        for waker in &self.wakers {
            waker.wake();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ContentAwareProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Everything the acceptor thread needs, moved into it at spawn.
struct AcceptorBoot {
    listener: TcpListener,
    queues: Vec<Arc<HandoffQueue>>,
    worker_wakers: Vec<Waker>,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicI64>,
    max_conns: usize,
    rejected: Arc<Counter>,
    accept_errors: Arc<Counter>,
    wake_rx: cpms_reactor::WakeReceiver,
}

const LISTENER_TOKEN: Token = Token(0);
const ACCEPT_WAKER_TOKEN: Token = Token(1);

/// The acceptor thread: readiness-driven accept with overload shedding.
///
/// Accept failures (fd exhaustion, transient kernel errors) park the
/// listener on a timer instead of sleeping, so the thread stays
/// responsive to shutdown while the listener rests.
fn acceptor_loop(boot: AcceptorBoot) {
    if boot.listener.set_nonblocking(true).is_err() {
        return;
    }
    let Ok(mut poller) = new_poller() else {
        return;
    };
    if poller
        .register(boot.listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
        .is_err()
        || poller
            .register(boot.wake_rx.fd(), ACCEPT_WAKER_TOKEN, Interest::READ)
            .is_err()
    {
        return;
    }
    let mut timers = cpms_reactor::TimerWheel::new(Duration::from_millis(25), 64);
    let mut parked = false;
    let mut next = 0usize;
    let mut events: Vec<Event> = Vec::with_capacity(8);

    loop {
        let timeout = timers
            .next_timeout(Instant::now())
            .map_or(ACCEPT_POLL_CAP, |t| t.min(ACCEPT_POLL_CAP));
        if poller.wait(&mut events, Some(timeout)).is_err() {
            return;
        }
        if boot.stop.load(Ordering::Acquire) {
            return;
        }
        let mut ready = false;
        for ev in &events {
            match ev.token {
                ACCEPT_WAKER_TOKEN => boot.wake_rx.drain(),
                LISTENER_TOKEN => ready = true,
                _ => {}
            }
        }
        let mut fired = Vec::new();
        timers.expire_into(Instant::now(), &mut fired);
        if !fired.is_empty() && parked {
            if poller
                .register(boot.listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
                .is_ok()
            {
                parked = false;
                ready = true; // probe once: a backlog may have built up
            } else {
                timers.schedule_after(Instant::now(), ACCEPT_REARM);
            }
        }
        if ready && !parked {
            parked = accept_burst(&boot, &mut *poller, &mut timers, &mut next);
        }
    }
}

/// Accepts until the listener runs dry. Returns `true` when an accept
/// error parked the listener.
fn accept_burst(
    boot: &AcceptorBoot,
    poller: &mut dyn cpms_reactor::Poller,
    timers: &mut cpms_reactor::TimerWheel,
    next: &mut usize,
) -> bool {
    loop {
        match boot.listener.accept() {
            Ok((stream, _)) => {
                if boot.active.load(Ordering::Relaxed) >= boot.max_conns as i64 {
                    boot.rejected.inc();
                    shed_overload(&stream);
                    continue;
                }
                boot.active.fetch_add(1, Ordering::Relaxed);
                let idx = *next % boot.queues.len();
                *next = next.wrapping_add(1);
                match boot.queues[idx].push(stream) {
                    Ok(()) => boot.worker_wakers[idx].wake(),
                    Err(stream) => {
                        boot.active.fetch_sub(1, Ordering::Relaxed);
                        boot.rejected.inc();
                        shed_overload(&stream);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                boot.accept_errors.inc();
                let _ = poller.deregister(boot.listener.as_raw_fd());
                timers.schedule_after(Instant::now(), ACCEPT_REARM);
                return true;
            }
        }
    }
}

/// Sends a fast 503 on a connection that will not be admitted. The
/// accepted socket is still blocking (accept does not inherit the
/// listener's non-blocking flag) and the response is far smaller than a
/// socket buffer, but a write timeout guards against a pathological peer
/// stalling the acceptor anyway.
fn shed_overload(stream: &TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let body: &[u8] = b"proxy over capacity";
    let head = response_head(503, body.len(), false);
    let mut out = stream;
    let _ = out
        .write_all(head.as_bytes())
        .and_then(|()| out.write_all(body));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use crate::origin::{OriginServer, SiteContent};
    use cpms_model::{ContentId, ContentKind, NodeId, UrlPath};
    use cpms_urltable::UrlEntry;

    fn start_origin(node: u16, files: &[(&str, &[u8])]) -> OriginServer {
        let mut site = SiteContent::new();
        for (path, body) in files {
            site.add_static(path, body.to_vec());
        }
        OriginServer::start(NodeId(node), site).unwrap()
    }

    fn entry(id: u32, nodes: &[u16]) -> UrlEntry {
        UrlEntry::new(ContentId(id), ContentKind::StaticHtml, 16)
            .with_locations(nodes.iter().map(|&n| NodeId(n)))
    }

    #[test]
    fn routes_by_content() {
        // node 0 has /a only; node 1 has /b only — partitioned placement
        let o0 = start_origin(0, &[("/a", b"from-node-0")]);
        let o1 = start_origin(1, &[("/b", b"from-node-1")]);

        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        table.insert("/b".parse().unwrap(), entry(1, &[1])).unwrap();

        let proxy = ContentAwareProxy::start(table, vec![o0.addr(), o1.addr()], 2).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();

        assert_eq!(client.get("/a").unwrap().body, b"from-node-0");
        assert_eq!(client.get("/b").unwrap().body, b"from-node-1");
        assert_eq!(proxy.relayed(), 2);
        assert_eq!(o0.served(), 1);
        assert_eq!(o1.served(), 1);
    }

    #[test]
    fn unroutable_paths_get_503() {
        let o0 = start_origin(0, &[("/a", b"x")]);
        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start(table, vec![o0.addr()], 1).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        let resp = client.get("/unknown").unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(proxy.unroutable(), 1);
        // the connection survived the 503 (keep-alive)
        assert_eq!(client.get("/a").unwrap().status, 200);
        assert_eq!(client.reconnects(), 0);
    }

    #[test]
    fn live_table_updates_reroute() {
        let o0 = start_origin(0, &[("/page", b"old-node")]);
        let o1 = start_origin(1, &[("/page", b"new-node")]);
        let mut table = UrlTable::new();
        table
            .insert("/page".parse().unwrap(), entry(0, &[0]))
            .unwrap();
        let proxy = ContentAwareProxy::start(table, vec![o0.addr(), o1.addr()], 1).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        assert_eq!(client.get("/page").unwrap().body, b"old-node");

        // management migrates the page: one snapshot publication adds
        // node 1 and drops node 0 atomically — no worker can observe the
        // intermediate state.
        let path: UrlPath = "/page".parse().unwrap();
        proxy.publisher().update(|t| {
            t.add_location(&path, NodeId(1)).unwrap();
            t.remove_location(&path, NodeId(0)).unwrap();
        });
        assert_eq!(client.get("/page").unwrap().body, b"new-node");
    }

    #[test]
    fn shared_publisher_routes_external_mutations() {
        // The proxy runs over a publisher shared with an external writer
        // (standing in for the management controller): mutations through
        // the sibling publisher take effect on the proxy's next request.
        let o0 = start_origin(0, &[("/ext", b"ext-0")]);
        let o1 = start_origin(1, &[("/ext", b"ext-1")]);
        let controller_side = TablePublisher::new(UrlTable::new());
        let proxy = ContentAwareProxy::start_with_publisher(
            controller_side.share(),
            vec![o0.addr(), o1.addr()],
            1,
            1,
            Arc::new(MetricsRegistry::new()),
        )
        .unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        assert_eq!(client.get("/ext").unwrap().status, 503, "not yet published");
        controller_side
            .update(|t| t.insert("/ext".parse().unwrap(), entry(0, &[0])))
            .unwrap();
        assert_eq!(client.get("/ext").unwrap().body, b"ext-0");
        controller_side.update(|t| {
            let path: UrlPath = "/ext".parse().unwrap();
            t.add_location(&path, NodeId(1)).unwrap();
            t.remove_location(&path, NodeId(0)).unwrap();
        });
        assert_eq!(client.get("/ext").unwrap().body, b"ext-1");
        assert_eq!(proxy.handle().generation(), controller_side.generation());
    }

    #[test]
    fn replicated_content_balances_by_in_flight() {
        let o0 = start_origin(0, &[("/r", b"r0")]);
        let o1 = start_origin(1, &[("/r", b"r1")]);
        let mut table = UrlTable::new();
        table
            .insert("/r".parse().unwrap(), entry(0, &[0, 1]))
            .unwrap();
        let proxy = ContentAwareProxy::start(table, vec![o0.addr(), o1.addr()], 2).unwrap();
        let addr = proxy.addr();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).unwrap();
                    for _ in 0..25 {
                        assert_eq!(client.get("/r").unwrap().status, 200);
                    }
                });
            }
        });
        // Both replicas served traffic.
        assert!(o0.served() > 0, "node 0 got {}", o0.served());
        assert!(o1.served() > 0, "node 1 got {}", o1.served());
        assert_eq!(o0.served() + o1.served(), 100);
    }

    #[test]
    fn workers_split_connections() {
        let o0 = start_origin(0, &[("/w", b"w")]);
        let mut table = UrlTable::new();
        table.insert("/w".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start_with_workers(table, vec![o0.addr()], 4, 4).unwrap();
        let addr = proxy.addr();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).unwrap();
                    for _ in 0..10 {
                        assert_eq!(client.get("/w").unwrap().status, 200);
                    }
                });
            }
        });
        assert_eq!(proxy.relayed(), 40);
        assert_eq!(proxy.stats().connections(), 4);
        // Aggregation really is a sum of per-worker cells.
        let per_worker: u64 = (0..proxy.worker_count())
            .map(|i| proxy.stats().worker(i).relayed.load(Ordering::Relaxed))
            .sum();
        assert_eq!(per_worker, 40);
        // With round-robin handoff of 4 connections over 4 workers, the
        // work cannot all land on one worker.
        let busy_workers = (0..proxy.worker_count())
            .filter(|&i| proxy.stats().worker(i).relayed.load(Ordering::Relaxed) > 0)
            .count();
        assert!(busy_workers > 1, "only {busy_workers} worker(s) served");
    }

    #[test]
    fn slow_request_heads_parse_across_packets() {
        // A client that trickles the request line and headers in separate
        // packets: the proxy must keep the partial parse alive across poll
        // rounds rather than time out mid-head and misread the remaining
        // header bytes as a fresh request line.
        let o0 = start_origin(0, &[("/slow", b"patient")]);
        let mut table = UrlTable::new();
        table
            .insert("/slow".parse().unwrap(), entry(0, &[0]))
            .unwrap();
        let proxy = ContentAwareProxy::start(table, vec![o0.addr()], 1).unwrap();

        use std::io::{Read, Write};
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        for chunk in [
            &b"GET /slow "[..],
            b"HTTP/1.1\r\n",
            b"Connection: close\r\n",
            b"\r\n",
        ] {
            stream.write_all(chunk).unwrap();
            std::thread::sleep(Duration::from_millis(80));
        }
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8_lossy(&raw);
        assert!(text.starts_with("HTTP/1.1 200"), "slow client got: {text}");
        assert!(text.ends_with("patient"), "slow client got: {text}");
        assert_eq!(proxy.relayed(), 1);
    }

    #[test]
    fn malformed_requests_get_400() {
        let o0 = start_origin(0, &[("/a", b"x")]);
        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start(table, vec![o0.addr()], 1).unwrap();

        use std::io::{Read, Write};
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        stream.write_all(b"GARBAGE\r\n\r\n").unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8_lossy(&raw);
        assert!(
            text.starts_with("HTTP/1.1 400 Bad Request"),
            "malformed request got: {text}"
        );
    }

    #[test]
    fn backend_failure_yields_502() {
        // A "backend" that accepts connections and immediately drops them:
        // pre-forking succeeds, but every relayed exchange dies.
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let dead_addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                drop(conn);
            }
        });

        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start(table, vec![dead_addr], 1).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        let resp = client.get("/a").unwrap();
        assert_eq!(resp.status, 502);
        assert!(proxy.backend_errors() >= 1);
    }

    #[test]
    fn metrics_endpoint_reports_request_path_families() {
        let o0 = start_origin(0, &[("/a", b"x")]);
        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start(table, vec![o0.addr()], 2).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        for _ in 0..3 {
            assert_eq!(client.get("/a").unwrap().status, 200);
        }
        assert_eq!(client.get("/unknown").unwrap().status, 503);

        let resp = client.get(METRICS_PATH).unwrap();
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        // Proxy family (request path), dispatch family (routing), the
        // urltable family (lookup latency + render-time memory gauge),
        // and the reactor family (data-plane internals) all surface on
        // the one endpoint.
        assert!(text.contains("proxy_relayed_total 3"), "{text}");
        assert!(text.contains("proxy_unroutable_total 1"), "{text}");
        assert!(text.contains("dispatch_requests_total 4"), "{text}");
        assert!(
            text.contains("urltable_lookup_ns{quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(text.contains("urltable_memory_bytes"), "{text}");
        assert!(text.contains("proxy_request_ns_count 4"), "{text}");
        assert!(text.contains("proxy_conn_active 1"), "{text}");
        assert!(text.contains("proxy_conn_rejected_total 0"), "{text}");
        assert!(text.contains("reactor_workers 4"), "{text}");
        assert!(text.contains("reactor_polls_total"), "{text}");

        let json = String::from_utf8(client.get(METRICS_JSON_PATH).unwrap().body).unwrap();
        assert!(json.contains("\"proxy_relayed_total\": 3"), "{json}");
        assert!(json.contains("\"histograms\""), "{json}");
        // The 503 left a post-mortem event correlated to its request id.
        assert!(json.contains("unroutable path /unknown"), "{json}");
    }

    #[test]
    fn record_interval_populates_the_series_endpoint() {
        let o0 = start_origin(0, &[("/a", b"x")]);
        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        let registry = Arc::new(MetricsRegistry::new());
        let mut proxy = ContentAwareProxy::start_with_config(
            TablePublisher::new(table),
            vec![o0.addr()],
            Arc::clone(&registry),
            ProxyConfig {
                workers: 1,
                record_interval: Some(Duration::from_millis(5)),
                ..ProxyConfig::default()
            },
        )
        .unwrap();
        let recorder = registry.series().expect("sampler installs a recorder");
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        assert_eq!(client.get("/a").unwrap().status, 200);
        let deadline = Instant::now() + Duration::from_secs(5);
        while recorder.samples_taken() < 3 {
            assert!(Instant::now() < deadline, "sampler never ran");
            std::thread::sleep(Duration::from_millis(2));
        }
        let body = String::from_utf8(client.get(SERIES_JSON_PATH).unwrap().body).unwrap();
        assert!(body.contains("\"scrape_seq\":"), "{body}");
        assert!(body.contains("\"proxy_relayed_total\":["), "{body}");
        // Shutdown stops the sampler thread with everything else.
        proxy.shutdown();
        let settled = recorder.samples_taken();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(recorder.samples_taken(), settled);
    }

    #[test]
    fn series_endpoint_without_a_recorder_serves_an_empty_document() {
        let o0 = start_origin(0, &[("/a", b"x")]);
        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start(table, vec![o0.addr()], 1).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        let resp = client.get(SERIES_JSON_PATH).unwrap();
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"series\":{}"), "{body}");
    }

    /// Polls until `f` yields, because spans record when their guard
    /// drops — a hair after the response bytes reach the client.
    fn wait_for<T>(mut f: impl FnMut() -> Option<T>) -> T {
        for _ in 0..400 {
            if let Some(v) = f() {
                return v;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("condition not met within deadline");
    }

    #[test]
    fn relayed_requests_form_one_cross_process_trace() {
        let origin = start_origin(0, &[("/t", b"traced")]);
        let mut table = UrlTable::new();
        table.insert("/t".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start(table, vec![origin.addr()], 1).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        assert_eq!(client.get("/t").unwrap().status, 200);

        // The proxy rooted the trace and opened a relay hop under it.
        let (request, relay) = wait_for(|| {
            let spans = proxy.metrics().spans().snapshot();
            let request = spans.iter().find(|s| s.name == "proxy.request")?.clone();
            let relay = spans.iter().find(|s| s.name == "proxy.relay")?.clone();
            Some((request, relay))
        });
        assert_eq!(request.parent, None);
        assert_eq!(request.detail, "/t");
        assert_eq!(relay.trace, request.trace);
        assert_eq!(relay.parent, Some(request.span));

        // The origin — a separate "process" with its own registry —
        // recorded a span of the same trace, parented to the relay hop
        // carried over by the x-cpms-trace header.
        let served = wait_for(|| {
            let spans = origin.metrics().spans().snapshot();
            spans.iter().find(|s| s.name == "origin.request").cloned()
        });
        assert_eq!(served.trace, request.trace);
        assert_eq!(served.parent, Some(relay.span));
        assert!(!served.error);

        // Both halves export on their /_cpms/trace.json surfaces.
        let dump = String::from_utf8(client.get(TRACE_JSON_PATH).unwrap().body).unwrap();
        assert!(dump.contains(&request.trace.to_string()), "{dump}");
        assert!(dump.contains("proxy.relay"), "{dump}");
    }

    #[test]
    fn unroutable_requests_record_error_spans() {
        let o0 = start_origin(0, &[("/a", b"x")]);
        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start(table, vec![o0.addr()], 1).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        assert_eq!(client.get("/missing").unwrap().status, 503);
        let span = wait_for(|| {
            let spans = proxy.metrics().spans().snapshot();
            spans.iter().find(|s| s.name == "proxy.request").cloned()
        });
        assert!(span.error, "503 must mark the request span failed");
        assert!(span.detail.contains("unroutable"), "{}", span.detail);
    }

    #[test]
    fn pool_exhaustion_counts_apart_from_backend_errors() {
        // Backend that exists long enough to pre-fork, then vanishes: the
        // first request fails on the (dead) pooled connection — a backend
        // exchange error; the second finds the pool empty and the connect
        // refused — a pool acquire failure. The two must count apart.
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let gone_addr = listener.local_addr().unwrap();
        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start_with_workers(table, vec![gone_addr], 1, 1).unwrap();
        drop(listener);

        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        assert_eq!(client.get("/a").unwrap().status, 502);
        assert_eq!(client.get("/a").unwrap().status, 502);
        assert_eq!(proxy.backend_errors(), 1, "dead pooled connection");
        assert_eq!(proxy.pool_failures(), 1, "refused overflow connect");
        let snap = proxy.metrics().snapshot();
        assert_eq!(snap.counter("proxy_backend_errors_total"), Some(1));
        assert_eq!(snap.counter("proxy_pool_failures_total"), Some(1));
    }

    #[test]
    fn debug_reports_every_aggregate() {
        let o0 = start_origin(0, &[("/a", b"x")]);
        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start(table, vec![o0.addr()], 1).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        client.get("/a").unwrap();
        client.get("/missing").unwrap();
        let debug = format!("{proxy:?}");
        for field in [
            "connections: 1",
            "relayed: 1",
            "unroutable: 1",
            "backend_errors: 0",
            "pool_failures: 0",
        ] {
            assert!(debug.contains(field), "{field} missing from {debug}");
        }
    }

    #[test]
    fn table_hit_counters_accumulate() {
        let o0 = start_origin(0, &[("/a", b"x")]);
        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start(table, vec![o0.addr()], 1).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        for _ in 0..5 {
            client.get("/a").unwrap();
        }
        // Hits accrue in per-worker ledgers, off the request path…
        assert_eq!(proxy.pending_hits(), 5);
        // …and folding them in makes them visible in the published table.
        proxy.flush_hits();
        assert_eq!(proxy.pending_hits(), 0);
        let hits = proxy
            .handle()
            .load()
            .lookup(&"/a".parse().unwrap())
            .unwrap()
            .hits();
        assert_eq!(hits, 5);
    }
}
