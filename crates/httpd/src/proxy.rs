//! The content-aware distributor over real sockets.
//!
//! The socket-level equivalent of the paper's kernel module (§2.2): accept
//! the client connection, complete the handshake (done by the OS), read
//! the HTTP request, consult the URL table, bind the exchange to a
//! pre-forked persistent backend connection, and relay the response —
//! while the client sees a single ordinary HTTP server.
//!
//! The URL table is shared behind a lock and can be mutated while the
//! proxy serves (management operations take effect on the next request),
//! exactly like the paper's controller updating the distributor's table.

use crate::http::{read_request, read_response, write_request, write_response, ParseError};
use crate::pool::SocketPool;
use cpms_model::NodeId;
use cpms_urltable::UrlTable;
use parking_lot::RwLock;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Shared, live-updatable URL table handle.
pub type SharedTable = Arc<RwLock<UrlTable>>;

/// Counters the proxy exposes.
#[derive(Debug, Default)]
pub struct ProxyStats {
    /// Requests successfully relayed.
    pub relayed: AtomicU64,
    /// Requests with no table record (503 to the client).
    pub unroutable: AtomicU64,
    /// Requests whose backend exchange failed (502 to the client).
    pub backend_errors: AtomicU64,
}

/// A running content-aware reverse proxy.
pub struct ContentAwareProxy {
    addr: SocketAddr,
    table: SharedTable,
    stats: Arc<ProxyStats>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ContentAwareProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContentAwareProxy")
            .field("addr", &self.addr)
            .field("relayed", &self.stats.relayed.load(Ordering::Relaxed))
            .finish()
    }
}

impl ContentAwareProxy {
    /// Starts the proxy: `backends[i]` is the address of `NodeId(i)`;
    /// `prefork` persistent connections are opened to each.
    ///
    /// # Errors
    ///
    /// Bind or pre-fork connection failures.
    pub fn start(
        table: UrlTable,
        backends: Vec<SocketAddr>,
        prefork: u32,
    ) -> io::Result<ContentAwareProxy> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let table: SharedTable = Arc::new(RwLock::new(table));
        let pool = Arc::new(SocketPool::prefork(backends, prefork)?);
        let in_flight: Arc<Vec<AtomicU32>> = Arc::new(
            (0..pool.backend_count())
                .map(|_| AtomicU32::new(0))
                .collect(),
        );
        let stats = Arc::new(ProxyStats::default());
        let stop = Arc::new(AtomicBool::new(false));

        let accept_thread = {
            let table = Arc::clone(&table);
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("cpms-proxy".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let table = Arc::clone(&table);
                        let pool = Arc::clone(&pool);
                        let in_flight = Arc::clone(&in_flight);
                        let stats = Arc::clone(&stats);
                        let _ = std::thread::Builder::new()
                            .name("proxy-conn".to_string())
                            .spawn(move || {
                                let _ = serve_client(stream, &table, &pool, &in_flight, &stats);
                            });
                    }
                })?
        };

        Ok(ContentAwareProxy {
            addr,
            table,
            stats,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live URL table: management operations mutate it while the proxy
    /// serves.
    pub fn table(&self) -> SharedTable {
        Arc::clone(&self.table)
    }

    /// Requests relayed successfully.
    pub fn relayed(&self) -> u64 {
        self.stats.relayed.load(Ordering::Relaxed)
    }

    /// Requests rejected for lack of a table record.
    pub fn unroutable(&self) -> u64 {
        self.stats.unroutable.load(Ordering::Relaxed)
    }

    /// Requests that failed at the backend.
    pub fn backend_errors(&self) -> u64 {
        self.stats.backend_errors.load(Ordering::Relaxed)
    }

    /// Stops accepting new connections.
    pub fn shutdown(&mut self) {
        if let Some(thread) = self.accept_thread.take() {
            self.stop.store(true, Ordering::Release);
            let _ = TcpStream::connect(self.addr);
            let _ = thread.join();
        }
    }
}

impl Drop for ContentAwareProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_client(
    stream: TcpStream,
    table: &RwLock<UrlTable>,
    pool: &SocketPool,
    in_flight: &[AtomicU32],
    stats: &ProxyStats,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(r) => r,
            Err(ParseError::ConnectionClosed) => return Ok(()),
            Err(ParseError::Io(e)) => return Err(e),
            Err(ParseError::Malformed(_)) => {
                write_response(&mut writer, 404, b"bad request", false)?;
                return Ok(());
            }
        };
        let keep_alive = request.keep_alive;

        // --- routing decision: URL table lookup + least in-flight replica
        let target: Option<NodeId> = {
            let mut t = table.write();
            t.lookup_and_hit(&request.path).map(|entry| {
                entry
                    .locations()
                    .iter()
                    .copied()
                    .min_by_key(|n| in_flight[n.index()].load(Ordering::Relaxed))
                    .expect("table entries have at least one location")
            })
        };
        let Some(node) = target else {
            stats.unroutable.fetch_add(1, Ordering::Relaxed);
            write_response(&mut writer, 503, b"no location for path", keep_alive)?;
            if keep_alive {
                continue;
            }
            return Ok(());
        };

        // --- bind to a pre-forked connection and relay
        in_flight[node.index()].fetch_add(1, Ordering::Relaxed);
        let exchange = relay_once(pool, node, &request.path);
        in_flight[node.index()].fetch_sub(1, Ordering::Relaxed);

        match exchange {
            Ok(response) => {
                stats.relayed.fetch_add(1, Ordering::Relaxed);
                write_response(&mut writer, response.status, &response.body, keep_alive)?;
            }
            Err(_) => {
                stats.backend_errors.fetch_add(1, Ordering::Relaxed);
                write_response(&mut writer, 502, b"backend failure", keep_alive)?;
            }
        }
        if !keep_alive {
            return Ok(());
        }
    }
}

fn relay_once(
    pool: &SocketPool,
    node: NodeId,
    path: &cpms_model::UrlPath,
) -> Result<crate::http::Response, ParseError> {
    let conn = pool.checkout(node.index())?;
    let mut backend_reader = BufReader::new(conn.try_clone().map_err(ParseError::Io)?);
    let mut backend_writer = conn;
    let result = write_request(&mut backend_writer, path)
        .map_err(ParseError::Io)
        .and_then(|()| read_response(&mut backend_reader));
    match &result {
        Ok(_) => pool.release(node.index(), backend_writer),
        Err(_) => pool.discard(node.index(), backend_writer),
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use crate::origin::{OriginServer, SiteContent};
    use cpms_model::{ContentId, ContentKind, UrlPath};
    use cpms_urltable::UrlEntry;

    fn start_origin(node: u16, files: &[(&str, &[u8])]) -> OriginServer {
        let mut site = SiteContent::new();
        for (path, body) in files {
            site.add_static(path, body.to_vec());
        }
        OriginServer::start(NodeId(node), site).unwrap()
    }

    fn entry(id: u32, nodes: &[u16]) -> UrlEntry {
        UrlEntry::new(ContentId(id), ContentKind::StaticHtml, 16)
            .with_locations(nodes.iter().map(|&n| NodeId(n)))
    }

    #[test]
    fn routes_by_content() {
        // node 0 has /a only; node 1 has /b only — partitioned placement
        let o0 = start_origin(0, &[("/a", b"from-node-0")]);
        let o1 = start_origin(1, &[("/b", b"from-node-1")]);

        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        table.insert("/b".parse().unwrap(), entry(1, &[1])).unwrap();

        let proxy =
            ContentAwareProxy::start(table, vec![o0.addr(), o1.addr()], 2).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();

        assert_eq!(client.get("/a").unwrap().body, b"from-node-0");
        assert_eq!(client.get("/b").unwrap().body, b"from-node-1");
        assert_eq!(proxy.relayed(), 2);
        assert_eq!(o0.served(), 1);
        assert_eq!(o1.served(), 1);
    }

    #[test]
    fn unroutable_paths_get_503() {
        let o0 = start_origin(0, &[("/a", b"x")]);
        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start(table, vec![o0.addr()], 1).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        let resp = client.get("/unknown").unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(proxy.unroutable(), 1);
        // the connection survived the 503 (keep-alive)
        assert_eq!(client.get("/a").unwrap().status, 200);
        assert_eq!(client.reconnects(), 0);
    }

    #[test]
    fn live_table_updates_reroute() {
        let o0 = start_origin(0, &[("/page", b"old-node")]);
        let o1 = start_origin(1, &[("/page", b"new-node")]);
        let mut table = UrlTable::new();
        table.insert("/page".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy =
            ContentAwareProxy::start(table, vec![o0.addr(), o1.addr()], 1).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        assert_eq!(client.get("/page").unwrap().body, b"old-node");

        // management migrates the page: add node 1, drop node 0
        {
            let handle = proxy.table();
            let mut t = handle.write();
            let path: UrlPath = "/page".parse().unwrap();
            t.add_location(&path, NodeId(1)).unwrap();
            t.remove_location(&path, NodeId(0)).unwrap();
        }
        assert_eq!(client.get("/page").unwrap().body, b"new-node");
    }

    #[test]
    fn replicated_content_balances_by_in_flight() {
        let o0 = start_origin(0, &[("/r", b"r0")]);
        let o1 = start_origin(1, &[("/r", b"r1")]);
        let mut table = UrlTable::new();
        table.insert("/r".parse().unwrap(), entry(0, &[0, 1])).unwrap();
        let proxy =
            ContentAwareProxy::start(table, vec![o0.addr(), o1.addr()], 2).unwrap();
        let addr = proxy.addr();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).unwrap();
                    for _ in 0..25 {
                        assert_eq!(client.get("/r").unwrap().status, 200);
                    }
                });
            }
        });
        // Both replicas served traffic.
        assert!(o0.served() > 0, "node 0 got {}", o0.served());
        assert!(o1.served() > 0, "node 1 got {}", o1.served());
        assert_eq!(o0.served() + o1.served(), 100);
    }

    #[test]
    fn backend_failure_yields_502() {
        // A "backend" that accepts connections and immediately drops them:
        // pre-forking succeeds, but every relayed exchange dies.
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let dead_addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                drop(conn);
            }
        });

        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start(table, vec![dead_addr], 1).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        let resp = client.get("/a").unwrap();
        assert_eq!(resp.status, 502);
        assert!(proxy.backend_errors() >= 1);
    }

    #[test]
    fn table_hit_counters_accumulate() {
        let o0 = start_origin(0, &[("/a", b"x")]);
        let mut table = UrlTable::new();
        table.insert("/a".parse().unwrap(), entry(0, &[0])).unwrap();
        let proxy = ContentAwareProxy::start(table, vec![o0.addr()], 1).unwrap();
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        for _ in 0..5 {
            client.get("/a").unwrap();
        }
        let handle = proxy.table();
        let hits = handle.read().lookup(&"/a".parse().unwrap()).unwrap().hits();
        assert_eq!(hits, 5);
    }
}
