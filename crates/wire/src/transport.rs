//! The [`Transport`] abstraction and its two production implementations.
//!
//! A transport carries one request payload to a peer and returns its
//! response payload, under a per-call deadline. The two impls are:
//!
//! - [`InProcTransport`] — crossbeam channels to a server thread in the
//!   same process. This preserves the original all-in-process control
//!   plane: no sockets, but the same framing-level semantics (a deadline
//!   can expire, the server can be gone).
//! - [`TcpTransport`] — real loopback or cross-host TCP, with framed
//!   payloads ([`crate::frame`]), per-call read/write deadlines mapped to
//!   socket timeouts, and connection reuse across calls (reconnect on
//!   the next call after a failure).
//!
//! Servers implement [`Service`] (an `FnMut(&[u8]) -> Vec<u8>` works) and
//! are hosted by [`InProcServer`] or [`TcpServer`]. Both servers execute
//! requests on a single executor thread that owns the service — requests
//! from concurrent clients serialize, which is exactly the behavior a
//! per-node broker wants.

use crate::error::WireError;
use crate::frame::{read_frame_ext_or_eof, write_frame_ext, TracedFrameOrEof, FLAG_TRACE_CAPABLE};
use cpms_obs::{ScopedTrace, TraceContext};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use std::fmt;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Carries one request to a peer and returns the response payload.
pub trait Transport: Send + Sync + fmt::Debug {
    /// One request/response exchange under `deadline`. No retries — that
    /// is [`Client`](crate::Client) policy layered above.
    ///
    /// # Errors
    ///
    /// Any [`WireError`]; see the failure taxonomy.
    fn call(&self, request: &[u8], deadline: Duration) -> Result<Vec<u8>, WireError>;

    /// Short label for metrics and reports (`"inproc"`, `"tcp"`, …).
    fn kind(&self) -> &'static str;

    /// Cumulative reconnections performed (transports without
    /// connections report 0).
    fn reconnects(&self) -> u64 {
        0
    }
}

/// A request handler owned by a server's executor thread.
pub trait Service: Send + 'static {
    /// Handles one decoded request payload, returning the response
    /// payload.
    fn handle(&mut self, request: &[u8]) -> Vec<u8>;
}

impl<F: FnMut(&[u8]) -> Vec<u8> + Send + 'static> Service for F {
    fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        self(request)
    }
}

struct ExecRequest {
    payload: Vec<u8>,
    // The trace context carried by the request, re-activated on the
    // executor thread (which is not the thread that read the frame).
    trace: Option<TraceContext>,
    reply: Sender<Vec<u8>>,
}

/// Runs `service.handle` with the request's trace context active on
/// this thread (or explicitly cleared, so no context leaks between
/// unrelated requests).
fn handle_with_trace<S: Service>(service: &mut S, req: &ExecRequest) -> Vec<u8> {
    let _scope = match req.trace {
        Some(ctx) => ScopedTrace::activate(ctx),
        None => ScopedTrace::clear(),
    };
    service.handle(&req.payload)
}

/// How often blocked server loops wake to check for shutdown.
const POLL_INTERVAL: Duration = Duration::from_millis(10);

// ---------------------------------------------------------------- in-proc

/// Channel-backed [`Transport`] to an [`InProcServer`] in this process.
#[derive(Clone)]
pub struct InProcTransport {
    tx: Sender<ExecRequest>,
}

impl fmt::Debug for InProcTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InProcTransport").finish()
    }
}

impl Transport for InProcTransport {
    fn call(&self, request: &[u8], deadline: Duration) -> Result<Vec<u8>, WireError> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(ExecRequest {
                payload: request.to_vec(),
                trace: TraceContext::current(),
                reply: reply_tx,
            })
            .map_err(|_| WireError::Unavailable {
                detail: "in-process server is gone".to_string(),
            })?;
        match reply_rx.recv_timeout(deadline) {
            Ok(payload) => Ok(payload),
            Err(RecvTimeoutError::Timeout) => Err(WireError::Timeout {
                deadline_ms: deadline.as_millis() as u64,
            }),
            Err(RecvTimeoutError::Disconnected) => Err(WireError::Closed),
        }
    }

    fn kind(&self) -> &'static str {
        "inproc"
    }
}

/// Hosts a [`Service`] on a dedicated executor thread, reachable through
/// [`InProcTransport`]s.
#[derive(Debug)]
pub struct InProcServer<S> {
    thread: Option<JoinHandle<S>>,
    stop: Arc<AtomicBool>,
}

impl<S: Service> InProcServer<S> {
    /// Spawns the executor thread; returns the client transport and the
    /// server handle.
    pub fn spawn(service: S) -> (InProcTransport, InProcServer<S>) {
        Self::spawn_named(service, "wire-inproc")
    }

    /// [`InProcServer::spawn`] with an explicit thread name.
    pub fn spawn_named(mut service: S, name: &str) -> (InProcTransport, InProcServer<S>) {
        let (tx, rx): (Sender<ExecRequest>, Receiver<ExecRequest>) = unbounded();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || {
                loop {
                    match rx.recv_timeout(POLL_INTERVAL) {
                        Ok(req) => {
                            let response = handle_with_trace(&mut service, &req);
                            // The caller may have timed out and gone away.
                            let _ = req.reply.send(response);
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            if stop_flag.load(Ordering::Acquire) {
                                break;
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
                service
            })
            .expect("spawn in-proc wire server");
        (
            InProcTransport { tx },
            InProcServer {
                thread: Some(thread),
                stop,
            },
        )
    }

    /// Whether the executor thread is still running.
    #[must_use]
    pub fn is_running(&self) -> bool {
        self.thread.as_ref().is_some_and(|t| !t.is_finished())
    }

    /// Stops the executor and returns the service (its final state).
    /// Idempotent; `None` after the first call or a panic.
    pub fn stop(&mut self) -> Option<S> {
        self.stop.store(true, Ordering::Release);
        self.thread.take()?.join().ok()
    }
}

impl<S> Drop for InProcServer<S> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

// ------------------------------------------------------------------- tcp

/// Framed request/response [`Transport`] over a reused [`TcpStream`].
///
/// The connection is established lazily on first call and kept across
/// calls. On any failure the connection is dropped; the next call
/// reconnects (and [`Transport::reconnects`] counts it).
#[derive(Debug)]
pub struct TcpTransport {
    addr: SocketAddr,
    conn: Mutex<Option<TcpStream>>,
    connected_once: AtomicBool,
    reconnects: AtomicU64,
    // Trace-extension negotiation: requests carry a context only after
    // a response advertised FLAG_TRACE_CAPABLE, so extension-less peers
    // never see flagged payloads. Sticky across reconnects — a capable
    // peer stays capable.
    peer_capable: AtomicBool,
}

impl TcpTransport {
    /// A transport to `addr`. Does not connect yet.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        TcpTransport {
            addr,
            conn: Mutex::new(None),
            connected_once: AtomicBool::new(false),
            reconnects: AtomicU64::new(0),
            peer_capable: AtomicBool::new(false),
        }
    }

    /// Whether the peer has advertised frame-extension capability (so
    /// requests carry trace contexts).
    #[must_use]
    pub fn peer_traces(&self) -> bool {
        self.peer_capable.load(Ordering::Relaxed)
    }

    /// The peer address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn connect(&self, deadline: Duration) -> Result<TcpStream, WireError> {
        let stream = TcpStream::connect_timeout(&self.addr, deadline)
            .map_err(|e| WireError::from_io(deadline.as_millis() as u64, &e))?;
        stream.set_nodelay(true).ok();
        if self.connected_once.swap(true, Ordering::Relaxed) {
            self.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        Ok(stream)
    }
}

impl Transport for TcpTransport {
    fn call(&self, request: &[u8], deadline: Duration) -> Result<Vec<u8>, WireError> {
        let deadline_ms = deadline.as_millis() as u64;
        let start = Instant::now();
        let mut guard = self.conn.lock().expect("tcp transport lock");
        let mut stream = match guard.take() {
            Some(s) => s,
            None => self.connect(deadline)?,
        };
        let remaining = deadline.saturating_sub(start.elapsed());
        if remaining.is_zero() {
            return Err(WireError::Timeout { deadline_ms });
        }
        stream
            .set_write_timeout(Some(remaining))
            .and_then(|()| stream.set_read_timeout(Some(remaining)))
            .map_err(|e| WireError::from_io(deadline_ms, &e))?;
        let trace = if self.peer_capable.load(Ordering::Relaxed) {
            TraceContext::current()
        } else {
            None
        };
        let result = write_frame_ext(&mut stream, request, FLAG_TRACE_CAPABLE, trace.as_ref())
            .and_then(|()| read_frame_ext_or_eof(&mut stream));
        match result {
            Ok(TracedFrameOrEof::Frame(frame)) => {
                if frame.peer_traces() {
                    self.peer_capable.store(true, Ordering::Relaxed);
                }
                *guard = Some(stream); // reuse the connection
                Ok(frame.payload)
            }
            Ok(TracedFrameOrEof::Eof) => {
                drop(stream);
                Err(WireError::Closed)
            }
            Err(e) => {
                // Drop the (possibly desynchronized) connection; the next
                // call reconnects.
                drop(stream);
                Err(match e {
                    WireError::Timeout { .. } => WireError::Timeout { deadline_ms },
                    other => other,
                })
            }
        }
    }

    fn kind(&self) -> &'static str {
        "tcp"
    }

    fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }
}

/// Hosts a [`Service`] behind a TCP listener: an acceptor thread, one
/// reader thread per connection, and a single executor thread that owns
/// the service (concurrent clients serialize, preserving per-node
/// ordering).
#[derive(Debug)]
pub struct TcpServer<S> {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    executor: Option<JoinHandle<S>>,
}

impl<S: Service> TcpServer<S> {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving.
    ///
    /// # Errors
    ///
    /// The bind failure, if any.
    pub fn bind(addr: SocketAddr, service: S) -> std::io::Result<TcpServer<S>> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (exec_tx, exec_rx): (Sender<ExecRequest>, Receiver<ExecRequest>) = unbounded();

        let executor = {
            let stop = Arc::clone(&stop);
            let mut service = service;
            std::thread::Builder::new()
                .name(format!("wire-exec-{local}"))
                .spawn(move || {
                    loop {
                        match exec_rx.recv_timeout(POLL_INTERVAL) {
                            Ok(req) => {
                                let response = handle_with_trace(&mut service, &req);
                                let _ = req.reply.send(response);
                            }
                            Err(RecvTimeoutError::Timeout) => {
                                if stop.load(Ordering::Acquire) {
                                    break;
                                }
                            }
                            Err(RecvTimeoutError::Disconnected) => break,
                        }
                    }
                    service
                })
                .expect("spawn wire executor thread")
        };

        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("wire-accept-{local}"))
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((conn, _)) => {
                                let exec_tx = exec_tx.clone();
                                let stop = Arc::clone(&stop);
                                let _ = std::thread::Builder::new()
                                    .name("wire-conn".to_string())
                                    .spawn(move || serve_connection(conn, &exec_tx, &stop));
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                                std::thread::sleep(POLL_INTERVAL);
                            }
                            Err(_) => std::thread::sleep(POLL_INTERVAL),
                        }
                    }
                })
                .expect("spawn wire acceptor thread")
        };

        Ok(TcpServer {
            addr: local,
            stop,
            acceptor: Some(acceptor),
            executor: Some(executor),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the executor thread is still running.
    #[must_use]
    pub fn is_running(&self) -> bool {
        self.executor.as_ref().is_some_and(|t| !t.is_finished())
    }

    /// Stops accepting and executing, returning the service's final
    /// state. Idempotent; `None` after the first call.
    pub fn stop(&mut self) -> Option<S> {
        self.stop.store(true, Ordering::Release);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        self.executor.take()?.join().ok()
    }
}

impl<S> Drop for TcpServer<S> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        if let Some(e) = self.executor.take() {
            let _ = e.join();
        }
    }
}

/// One connection's read-execute-write loop. Exits on client disconnect,
/// any frame error, or server shutdown.
fn serve_connection(mut conn: TcpStream, exec_tx: &Sender<ExecRequest>, stop: &AtomicBool) {
    conn.set_nodelay(true).ok();
    // Short read timeouts let the loop notice shutdown between frames.
    if conn.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    while !stop.load(Ordering::Acquire) {
        let frame = match read_frame_ext_or_eof(&mut conn) {
            Ok(TracedFrameOrEof::Frame(f)) => f,
            Ok(TracedFrameOrEof::Eof) => return,
            // Idle between frames: poll again.
            Err(WireError::Timeout { .. }) => continue,
            // Any other frame error (including a malformed extension
            // area) desynchronizes the stream: drop the connection (the
            // client maps this to Closed and may retry on a fresh one).
            Err(_) => return,
        };
        let (reply_tx, reply_rx) = bounded(1);
        if exec_tx
            .send(ExecRequest {
                payload: frame.payload,
                trace: frame.trace,
                reply: reply_tx,
            })
            .is_err()
        {
            return; // executor gone: shutting down
        }
        let response = loop {
            match reply_rx.recv_timeout(POLL_INTERVAL) {
                Ok(r) => break r,
                Err(RecvTimeoutError::Timeout) => {
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        };
        // Responses always advertise extension capability (old clients
        // never read the flags byte) — this is the negotiation signal
        // that lets a new client start attaching trace contexts.
        if write_frame_ext(&mut conn, &response, FLAG_TRACE_CAPABLE, None).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_upper() -> impl Service {
        |req: &[u8]| req.to_ascii_uppercase()
    }

    #[test]
    fn inproc_round_trip_and_shutdown() {
        let (t, mut server) = InProcServer::spawn(echo_upper());
        assert!(server.is_running());
        let resp = t.call(b"abc", Duration::from_secs(1)).unwrap();
        assert_eq!(resp, b"ABC");
        server.stop().expect("service returned");
        assert!(!server.is_running());
        let err = t.call(b"x", Duration::from_millis(50)).unwrap_err();
        assert!(
            matches!(err, WireError::Unavailable { .. } | WireError::Closed),
            "{err:?}"
        );
    }

    #[test]
    fn inproc_deadline_expires() {
        let (t, mut server) = InProcServer::spawn(|req: &[u8]| {
            std::thread::sleep(Duration::from_millis(100));
            req.to_vec()
        });
        let err = t.call(b"slow", Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, WireError::Timeout { deadline_ms: 10 }));
        server.stop();
    }

    #[test]
    fn tcp_round_trip_reuses_connection() {
        let mut server = TcpServer::bind("127.0.0.1:0".parse().unwrap(), echo_upper()).unwrap();
        let t = TcpTransport::new(server.addr());
        for i in 0..10 {
            let req = format!("msg{i}");
            let resp = t.call(req.as_bytes(), Duration::from_secs(2)).unwrap();
            assert_eq!(resp, req.to_ascii_uppercase().into_bytes());
        }
        assert_eq!(t.reconnects(), 0, "one connection served all calls");
        server.stop().expect("service state returned");
    }

    #[test]
    fn tcp_concurrent_clients_serialize_on_one_service() {
        let counter = std::sync::Arc::new(AtomicU64::new(0));
        let c = std::sync::Arc::clone(&counter);
        let mut server = TcpServer::bind("127.0.0.1:0".parse().unwrap(), move |_req: &[u8]| {
            let n = c.fetch_add(1, Ordering::SeqCst);
            n.to_be_bytes().to_vec()
        })
        .unwrap();
        let addr = server.addr();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(move || {
                    let t = TcpTransport::new(addr);
                    for _ in 0..10 {
                        t.call(b"inc", Duration::from_secs(2)).unwrap();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 40);
        server.stop();
    }

    #[test]
    fn tcp_unavailable_and_reconnect_counting() {
        let mut server = TcpServer::bind("127.0.0.1:0".parse().unwrap(), echo_upper()).unwrap();
        let addr = server.addr();
        let t = TcpTransport::new(addr);
        t.call(b"a", Duration::from_secs(1)).unwrap();
        server.stop();
        // Server gone: the reused connection fails, then reconnects fail.
        let mut saw_failure = false;
        for _ in 0..3 {
            if t.call(b"b", Duration::from_millis(200)).is_err() {
                saw_failure = true;
                break;
            }
        }
        assert!(saw_failure, "calls to a stopped server eventually fail");
    }

    #[test]
    fn inproc_propagates_trace_context_to_the_executor() {
        let seen = std::sync::Arc::new(Mutex::new(Vec::new()));
        let sink = std::sync::Arc::clone(&seen);
        let (t, mut server) = InProcServer::spawn(move |_req: &[u8]| {
            sink.lock().unwrap().push(TraceContext::current());
            Vec::new()
        });
        let ctx = TraceContext::root(true);
        {
            let _scope = ScopedTrace::activate(ctx);
            t.call(b"traced", Duration::from_secs(1)).unwrap();
        }
        t.call(b"untraced", Duration::from_secs(1)).unwrap();
        server.stop();
        let seen = seen.lock().unwrap();
        assert_eq!(seen[0], Some(ctx), "context crosses the channel");
        assert_eq!(seen[1], None, "no context leaks between requests");
    }

    #[test]
    fn tcp_negotiates_capability_then_propagates_context() {
        let seen = std::sync::Arc::new(Mutex::new(Vec::new()));
        let sink = std::sync::Arc::clone(&seen);
        let mut server = TcpServer::bind("127.0.0.1:0".parse().unwrap(), move |_req: &[u8]| {
            sink.lock().unwrap().push(TraceContext::current());
            Vec::new()
        })
        .unwrap();
        let t = TcpTransport::new(server.addr());
        assert!(!t.peer_traces(), "capability unknown before any response");
        let ctx = TraceContext::root(true);
        {
            let _scope = ScopedTrace::activate(ctx);
            // First call: peer capability unknown, so the frame is
            // untraced — the response negotiates capability.
            t.call(b"first", Duration::from_secs(2)).unwrap();
            assert!(t.peer_traces(), "response advertised capability");
            t.call(b"second", Duration::from_secs(2)).unwrap();
        }
        server.stop();
        let seen = seen.lock().unwrap();
        assert_eq!(seen[0], None, "pre-negotiation frames are untraced");
        assert_eq!(
            seen[1],
            Some(ctx),
            "post-negotiation frames carry the context"
        );
    }

    #[test]
    fn tcp_deadline_against_stalled_server() {
        let mut server = TcpServer::bind("127.0.0.1:0".parse().unwrap(), |req: &[u8]| {
            std::thread::sleep(Duration::from_millis(200));
            req.to_vec()
        })
        .unwrap();
        let t = TcpTransport::new(server.addr());
        let start = Instant::now();
        let err = t.call(b"slow", Duration::from_millis(30)).unwrap_err();
        assert!(matches!(err, WireError::Timeout { .. }), "{err:?}");
        assert!(start.elapsed() < Duration::from_millis(150));
        server.stop();
    }
}
