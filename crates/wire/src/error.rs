//! The wire failure taxonomy.
//!
//! Every way a control-plane RPC can go wrong is a distinct
//! [`WireError`] variant, so callers can decide what is retryable
//! (transient transport trouble) and what is not (a malformed payload
//! will be malformed on every attempt). The taxonomy is serializable so
//! management errors that embed a transport failure can themselves ride
//! the wire.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A transport-level RPC failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum WireError {
    /// The per-call deadline elapsed before a response arrived. The
    /// request may or may not have executed (at-most-once is not
    /// guaranteed); idempotent retry is the caller's policy decision.
    Timeout {
        /// The deadline that elapsed, in milliseconds.
        deadline_ms: u64,
    },
    /// The peer closed the connection mid-call.
    Closed,
    /// The peer could not be reached at all (refused, unresolved, or the
    /// in-process server is gone).
    Unavailable {
        /// Human-readable cause.
        detail: String,
    },
    /// An I/O error other than timeout/close.
    Io {
        /// The `std::io::ErrorKind`, stringified for portability.
        kind: String,
        /// The error's message.
        detail: String,
    },
    /// The stream did not start with the frame magic — the peer is not
    /// speaking this protocol (or the stream lost sync).
    BadMagic {
        /// The bytes actually seen.
        seen: [u8; 2],
    },
    /// The peer advertises an unknown protocol version.
    BadVersion {
        /// The version byte received.
        seen: u8,
    },
    /// A frame header announced more payload than [`MAX_FRAME`] allows.
    ///
    /// [`MAX_FRAME`]: crate::frame::MAX_FRAME
    TooLarge {
        /// Announced payload length.
        announced: u64,
        /// The enforced maximum.
        max: u64,
    },
    /// The stream ended (or a fault cut it) before a full frame arrived.
    Truncated {
        /// Bytes the header promised.
        expected: u64,
        /// Bytes actually received.
        got: u64,
    },
    /// The payload arrived complete but its checksum does not match —
    /// bytes were corrupted in flight.
    Corrupt {
        /// Checksum announced by the header.
        announced: u32,
        /// Checksum computed over the received payload.
        computed: u32,
    },
    /// A frame advertised an extension (via its flags byte) whose
    /// extension area is structurally broken — too short for its own
    /// framing. Unknown extension *versions* are not errors (they
    /// degrade to an untraced frame); this is reserved for frames that
    /// cannot be parsed at all.
    BadExtension {
        /// What was wrong with the extension area.
        detail: String,
    },
    /// The payload could not be (de)serialized. Never retryable: the
    /// same bytes will fail the same way.
    Codec {
        /// The codec's complaint.
        detail: String,
    },
    /// Every attempt allowed by the retry policy failed.
    Exhausted {
        /// Attempts made (including the first).
        attempts: u32,
        /// The final attempt's error.
        last: Box<WireError>,
    },
}

impl WireError {
    /// Whether another attempt could plausibly succeed. Transient
    /// transport failures are retryable; payload-shape failures and
    /// exhausted retries are not.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        match self {
            WireError::Timeout { .. }
            | WireError::Closed
            | WireError::Unavailable { .. }
            | WireError::Io { .. }
            | WireError::BadMagic { .. }
            | WireError::Truncated { .. }
            | WireError::Corrupt { .. }
            | WireError::BadExtension { .. } => true,
            WireError::BadVersion { .. }
            | WireError::TooLarge { .. }
            | WireError::Codec { .. }
            | WireError::Exhausted { .. } => false,
        }
    }

    /// The underlying failure, unwrapping [`WireError::Exhausted`] to the
    /// last attempt's error.
    #[must_use]
    pub fn root(&self) -> &WireError {
        match self {
            WireError::Exhausted { last, .. } => last.root(),
            other => other,
        }
    }

    /// Classifies an `std::io::Error` from a blocking socket operation.
    #[must_use]
    pub fn from_io(deadline_ms: u64, e: &std::io::Error) -> Self {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::WouldBlock | ErrorKind::TimedOut => WireError::Timeout { deadline_ms },
            ErrorKind::UnexpectedEof | ErrorKind::ConnectionReset | ErrorKind::BrokenPipe => {
                WireError::Closed
            }
            ErrorKind::ConnectionRefused
            | ErrorKind::NotConnected
            | ErrorKind::AddrNotAvailable => WireError::Unavailable {
                detail: e.to_string(),
            },
            kind => WireError::Io {
                kind: format!("{kind:?}"),
                detail: e.to_string(),
            },
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Timeout { deadline_ms } => {
                write!(f, "call timed out after {deadline_ms}ms")
            }
            WireError::Closed => write!(f, "peer closed the connection mid-call"),
            WireError::Unavailable { detail } => write!(f, "peer unavailable: {detail}"),
            WireError::Io { kind, detail } => write!(f, "i/o error ({kind}): {detail}"),
            WireError::BadMagic { seen } => {
                write!(f, "bad frame magic {:02x}{:02x}", seen[0], seen[1])
            }
            WireError::BadVersion { seen } => write!(f, "unsupported wire version {seen}"),
            WireError::TooLarge { announced, max } => {
                write!(f, "frame of {announced} bytes exceeds the {max}-byte limit")
            }
            WireError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            WireError::Corrupt {
                announced,
                computed,
            } => write!(
                f,
                "corrupt frame: checksum {computed:08x} != announced {announced:08x}"
            ),
            WireError::BadExtension { detail } => {
                write!(f, "malformed frame extension: {detail}")
            }
            WireError::Codec { detail } => write!(f, "codec failure: {detail}"),
            WireError::Exhausted { attempts, last } => {
                write!(f, "all {attempts} attempts failed; last: {last}")
            }
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_split() {
        assert!(WireError::Timeout { deadline_ms: 5 }.is_retryable());
        assert!(WireError::Closed.is_retryable());
        assert!(WireError::Truncated {
            expected: 10,
            got: 3
        }
        .is_retryable());
        assert!(!WireError::Codec { detail: "x".into() }.is_retryable());
        assert!(!WireError::Exhausted {
            attempts: 3,
            last: Box::new(WireError::Closed),
        }
        .is_retryable());
    }

    #[test]
    fn root_unwraps_exhausted() {
        let e = WireError::Exhausted {
            attempts: 2,
            last: Box::new(WireError::Exhausted {
                attempts: 1,
                last: Box::new(WireError::Closed),
            }),
        };
        assert_eq!(e.root(), &WireError::Closed);
        assert_eq!(WireError::Closed.root(), &WireError::Closed);
    }

    #[test]
    fn io_classification() {
        use std::io::{Error, ErrorKind};
        assert!(matches!(
            WireError::from_io(7, &Error::new(ErrorKind::TimedOut, "t")),
            WireError::Timeout { deadline_ms: 7 }
        ));
        assert_eq!(
            WireError::from_io(0, &Error::new(ErrorKind::UnexpectedEof, "e")),
            WireError::Closed
        );
        assert!(matches!(
            WireError::from_io(0, &Error::new(ErrorKind::ConnectionRefused, "r")),
            WireError::Unavailable { .. }
        ));
        assert!(matches!(
            WireError::from_io(0, &Error::other("o")),
            WireError::Io { .. }
        ));
    }

    #[test]
    fn errors_serialize_round_trip() {
        let e = WireError::Exhausted {
            attempts: 4,
            last: Box::new(WireError::Corrupt {
                announced: 1,
                computed: 2,
            }),
        };
        let text = serde_json::to_string(&e).unwrap();
        let back: WireError = serde_json::from_str(&text).unwrap();
        assert_eq!(back, e);
    }
}
