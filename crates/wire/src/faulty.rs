//! Deterministic fault injection for robustness tests.
//!
//! [`FaultyTransport`] wraps any [`Transport`] and, per call, rolls a
//! seeded PRNG against the configured [`FaultPlan`] to decide whether to
//! drop the request (the peer never sees it), drop the response (the
//! peer executed but the answer is lost — the at-least-once hazard),
//! delay delivery, duplicate the request (the peer executes twice), or
//! truncate the frame (a typed [`WireError::Truncated`], the poisoned
//! frame case). The PRNG is split-mix over a counter, so a given seed
//! produces the same fault sequence on every run — failing tests
//! reproduce exactly.

use crate::error::WireError;
use crate::frame::{framed_len_of, HEADER_LEN};
use crate::transport::Transport;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-call fault probabilities (each in `[0, 1]`) plus the seed that
/// makes the stream deterministic.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Seed for the fault stream.
    pub seed: u64,
    /// Probability the request frame is lost (peer never executes; the
    /// caller sees a deadline expiry).
    pub drop_request: f64,
    /// Probability the response frame is lost (peer *did* execute; the
    /// caller sees a deadline expiry — exercises at-least-once hazards).
    pub drop_response: f64,
    /// Probability the exchange is delayed by [`FaultPlan::delay_ms`].
    pub delay: f64,
    /// Delay applied when the delay fault fires, in milliseconds. Delays
    /// at or beyond the call deadline surface as timeouts.
    pub delay_ms: u64,
    /// Probability the request is delivered (and executed) twice.
    pub duplicate: f64,
    /// Probability the frame is cut short: a typed
    /// [`WireError::Truncated`] with nothing delivered.
    pub truncate: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0xFA_17,
            drop_request: 0.0,
            drop_response: 0.0,
            delay: 0.0,
            delay_ms: 0,
            duplicate: 0.0,
            truncate: 0.0,
        }
    }
}

impl FaultPlan {
    /// A plan that loses `rate` of all frames, split evenly between
    /// requests and responses.
    #[must_use]
    pub fn lossy(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            drop_request: rate / 2.0,
            drop_response: rate / 2.0,
            ..FaultPlan::default()
        }
    }

    /// A plan that truncates every frame — the poisoned-peer case.
    #[must_use]
    pub fn poisoned(seed: u64) -> Self {
        FaultPlan {
            seed,
            truncate: 1.0,
            ..FaultPlan::default()
        }
    }
}

/// Counts of faults actually injected (and calls passed through clean).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Requests dropped before reaching the peer.
    pub dropped_requests: u64,
    /// Responses dropped after the peer executed.
    pub dropped_responses: u64,
    /// Calls delayed.
    pub delayed: u64,
    /// Requests executed twice.
    pub duplicated: u64,
    /// Frames truncated.
    pub truncated: u64,
    /// Calls forwarded without any fault.
    pub clean: u64,
}

/// A [`Transport`] wrapper that injects deterministic faults.
pub struct FaultyTransport {
    inner: Arc<dyn Transport>,
    plan: FaultPlan,
    stream: AtomicU64,
    dropped_requests: AtomicU64,
    dropped_responses: AtomicU64,
    delayed: AtomicU64,
    duplicated: AtomicU64,
    truncated: AtomicU64,
    clean: AtomicU64,
}

impl fmt::Debug for FaultyTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyTransport")
            .field("plan", &self.plan)
            .field("stats", &self.stats())
            .finish()
    }
}

impl FaultyTransport {
    /// Wraps `inner`, injecting faults per `plan`.
    #[must_use]
    pub fn new(inner: Arc<dyn Transport>, plan: FaultPlan) -> Self {
        FaultyTransport {
            inner,
            stream: AtomicU64::new(plan.seed),
            plan,
            dropped_requests: AtomicU64::new(0),
            dropped_responses: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            truncated: AtomicU64::new(0),
            clean: AtomicU64::new(0),
        }
    }

    /// Counts of faults injected so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            dropped_requests: self.dropped_requests.load(Ordering::Relaxed),
            dropped_responses: self.dropped_responses.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            truncated: self.truncated.load(Ordering::Relaxed),
            clean: self.clean.load(Ordering::Relaxed),
        }
    }

    /// One uniform draw in `[0, 1)` from the deterministic stream.
    fn unit(&self) -> f64 {
        let mut z = self
            .stream
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Transport for FaultyTransport {
    fn call(&self, request: &[u8], deadline: Duration) -> Result<Vec<u8>, WireError> {
        // Draw every category up front so the stream advances identically
        // whichever branch fires — determinism survives plan tweaks.
        let r_truncate = self.unit();
        let r_drop_request = self.unit();
        let r_delay = self.unit();
        let r_duplicate = self.unit();
        let r_drop_response = self.unit();
        let deadline_ms = deadline.as_millis() as u64;

        if r_truncate < self.plan.truncate {
            self.truncated.fetch_add(1, Ordering::Relaxed);
            let expected = framed_len_of(request.len());
            return Err(WireError::Truncated {
                expected,
                got: expected.saturating_sub(1).min(HEADER_LEN as u64),
            });
        }
        if r_drop_request < self.plan.drop_request {
            // Lost before delivery: the peer never executes; the caller's
            // deadline expires. Surfaced immediately to keep tests fast.
            self.dropped_requests.fetch_add(1, Ordering::Relaxed);
            return Err(WireError::Timeout { deadline_ms });
        }
        let mut remaining = deadline;
        if r_delay < self.plan.delay {
            self.delayed.fetch_add(1, Ordering::Relaxed);
            let delay = Duration::from_millis(self.plan.delay_ms);
            if delay >= deadline {
                return Err(WireError::Timeout { deadline_ms });
            }
            std::thread::sleep(delay);
            remaining = deadline - delay;
        }
        let response = self.inner.call(request, remaining)?;
        if r_duplicate < self.plan.duplicate {
            // The network delivered the request twice: the peer executes
            // again, and the caller sees the second answer.
            self.duplicated.fetch_add(1, Ordering::Relaxed);
            return self.inner.call(request, remaining);
        }
        if r_drop_response < self.plan.drop_response {
            // Executed, but the answer is lost: at-least-once hazard.
            self.dropped_responses.fetch_add(1, Ordering::Relaxed);
            return Err(WireError::Timeout { deadline_ms });
        }
        self.clean.fetch_add(1, Ordering::Relaxed);
        Ok(response)
    }

    fn kind(&self) -> &'static str {
        "faulty"
    }

    fn reconnects(&self) -> u64 {
        self.inner.reconnects()
    }
}

/// A [`Transport`] wrapper whose faults can be armed, re-armed, and
/// cleared at runtime — the process-level face of [`FaultyTransport`]
/// for chaos orchestration. A daemon installs one switch per peer link
/// at startup; an admin verb later arms a [`FaultPlan`] on it (loss,
/// poison) or hard-partitions the link, without restarting anything.
///
/// Partition takes precedence over any armed plan and surfaces as
/// [`WireError::Unavailable`], which the management layers above map to
/// "broker unreachable" — exactly what a severed network looks like.
pub struct FaultSwitch {
    inner: Arc<dyn Transport>,
    armed: std::sync::RwLock<Option<Arc<FaultyTransport>>>,
    partitioned: std::sync::atomic::AtomicBool,
}

impl fmt::Debug for FaultSwitch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultSwitch")
            .field("partitioned", &self.is_partitioned())
            .field("armed", &self.armed_stats().is_some())
            .finish()
    }
}

impl FaultSwitch {
    /// Wraps `inner` with no faults armed: calls pass straight through.
    #[must_use]
    pub fn new(inner: Arc<dyn Transport>) -> Self {
        FaultSwitch {
            inner,
            armed: std::sync::RwLock::new(None),
            partitioned: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Arms `plan` on this link, replacing any previous plan (and its
    /// fault stream — the new plan's seed restarts determinism).
    pub fn arm(&self, plan: FaultPlan) {
        let faulty = Arc::new(FaultyTransport::new(Arc::clone(&self.inner), plan));
        *self.armed.write().expect("fault switch lock") = Some(faulty);
    }

    /// Clears any armed plan; the partition flag is left alone.
    pub fn disarm(&self) {
        *self.armed.write().expect("fault switch lock") = None;
    }

    /// Severs (or restores) the link outright.
    pub fn set_partitioned(&self, on: bool) {
        self.partitioned.store(on, Ordering::Release);
    }

    /// Whether the link is currently severed.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned.load(Ordering::Acquire)
    }

    /// Fault counts of the currently armed plan, if any.
    pub fn armed_stats(&self) -> Option<FaultStats> {
        self.armed
            .read()
            .expect("fault switch lock")
            .as_ref()
            .map(|f| f.stats())
    }
}

impl Transport for FaultSwitch {
    fn call(&self, request: &[u8], deadline: Duration) -> Result<Vec<u8>, WireError> {
        if self.is_partitioned() {
            return Err(WireError::Unavailable {
                detail: "link partitioned by fault switch".to_string(),
            });
        }
        let armed = self.armed.read().expect("fault switch lock").clone();
        match armed {
            Some(faulty) => faulty.call(request, deadline),
            None => self.inner.call(request, deadline),
        }
    }

    fn kind(&self) -> &'static str {
        "switch"
    }

    fn reconnects(&self) -> u64 {
        self.inner.reconnects()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Client, RetryPolicy};
    use crate::transport::InProcServer;
    use std::sync::atomic::AtomicU32;

    fn echo() -> impl crate::transport::Service {
        |req: &[u8]| req.to_vec()
    }

    #[test]
    fn clean_plan_passes_everything_through() {
        let (t, mut server) = InProcServer::spawn(echo());
        let faulty = FaultyTransport::new(Arc::new(t), FaultPlan::default());
        for _ in 0..20 {
            assert_eq!(
                faulty.call(b"ok", Duration::from_secs(1)).unwrap(),
                b"ok".to_vec()
            );
        }
        let stats = faulty.stats();
        assert_eq!(stats.clean, 20);
        assert_eq!(
            stats,
            FaultStats {
                clean: 20,
                ..FaultStats::default()
            }
        );
        server.stop();
    }

    #[test]
    fn fault_sequence_is_deterministic() {
        let (t1, mut s1) = InProcServer::spawn(echo());
        let (t2, mut s2) = InProcServer::spawn(echo());
        let plan = FaultPlan::lossy(99, 0.4);
        let a = FaultyTransport::new(Arc::new(t1), plan);
        let b = FaultyTransport::new(Arc::new(t2), plan);
        let outcomes_a: Vec<bool> = (0..50)
            .map(|_| a.call(b"x", Duration::from_millis(100)).is_ok())
            .collect();
        let outcomes_b: Vec<bool> = (0..50)
            .map(|_| b.call(b"x", Duration::from_millis(100)).is_ok())
            .collect();
        assert_eq!(outcomes_a, outcomes_b);
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().dropped_requests + a.stats().dropped_responses > 0);
        s1.stop();
        s2.stop();
    }

    #[test]
    fn truncation_is_typed_never_a_hang() {
        let (t, mut server) = InProcServer::spawn(echo());
        let faulty = FaultyTransport::new(Arc::new(t), FaultPlan::poisoned(1));
        let err = faulty.call(b"payload", Duration::from_secs(1)).unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. }), "{err:?}");
        assert!(err.is_retryable());
        server.stop();
    }

    #[test]
    fn duplicate_executes_twice() {
        let count = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&count);
        let (t, mut server) = InProcServer::spawn(move |req: &[u8]| {
            c.fetch_add(1, Ordering::SeqCst);
            req.to_vec()
        });
        let faulty = FaultyTransport::new(
            Arc::new(t),
            FaultPlan {
                duplicate: 1.0,
                ..FaultPlan::default()
            },
        );
        faulty.call(b"x", Duration::from_secs(1)).unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 2);
        assert_eq!(faulty.stats().duplicated, 1);
        server.stop();
    }

    #[test]
    fn client_retry_rides_through_loss() {
        let (t, mut server) = InProcServer::spawn(echo());
        let faulty = Arc::new(FaultyTransport::new(
            Arc::new(t),
            FaultPlan::lossy(0xBEEF, 0.3),
        ));
        let client = Client::new(Arc::clone(&faulty) as Arc<dyn Transport>)
            .with_deadline(Duration::from_millis(200))
            .with_retry(RetryPolicy {
                max_attempts: 8,
                base_backoff: Duration::from_micros(200),
                max_backoff: Duration::from_millis(2),
                jitter: 0.5,
                seed: 3,
            });
        for i in 0..100u32 {
            let req = i.to_be_bytes();
            let resp = client.call_raw(&req).unwrap();
            assert_eq!(resp, req);
        }
        let stats = client.stats();
        assert_eq!(stats.failures, 0, "{stats:?}");
        assert!(stats.retries > 0, "30% loss must have forced retries");
        let faults = faulty.stats();
        assert!(faults.dropped_requests + faults.dropped_responses > 10);
        server.stop();
    }

    #[test]
    fn fault_switch_arms_partitions_and_heals() {
        let (t, mut server) = InProcServer::spawn(echo());
        let switch = FaultSwitch::new(Arc::new(t));
        // Clean by default.
        assert_eq!(
            switch.call(b"a", Duration::from_secs(1)).unwrap(),
            b"a".to_vec()
        );
        assert!(switch.armed_stats().is_none());
        // Armed poison truncates every frame.
        switch.arm(FaultPlan::poisoned(7));
        let err = switch.call(b"b", Duration::from_secs(1)).unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. }), "{err:?}");
        assert_eq!(switch.armed_stats().unwrap().truncated, 1);
        // Partition wins over the armed plan and is typed Unavailable.
        switch.set_partitioned(true);
        let err = switch.call(b"c", Duration::from_secs(1)).unwrap_err();
        assert!(matches!(err, WireError::Unavailable { .. }), "{err:?}");
        // Healing restores clean passthrough.
        switch.set_partitioned(false);
        switch.disarm();
        assert_eq!(
            switch.call(b"d", Duration::from_secs(1)).unwrap(),
            b"d".to_vec()
        );
        server.stop();
    }

    #[test]
    fn delay_beyond_deadline_times_out() {
        let (t, mut server) = InProcServer::spawn(echo());
        let faulty = FaultyTransport::new(
            Arc::new(t),
            FaultPlan {
                delay: 1.0,
                delay_ms: 50,
                ..FaultPlan::default()
            },
        );
        let err = faulty.call(b"x", Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, WireError::Timeout { deadline_ms: 10 }));
        // Under a generous deadline the delayed call still succeeds.
        assert!(faulty.call(b"x", Duration::from_secs(1)).is_ok());
        assert_eq!(faulty.stats().delayed, 2);
        server.stop();
    }
}
