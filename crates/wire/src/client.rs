//! The [`Client`]: retry policy, typed calls, and wire-level metrics on
//! top of a raw [`Transport`].
//!
//! A transport carries exactly one request/response exchange; the client
//! is where *policy* lives: how long one call may take (deadline), how
//! many attempts a retryable failure earns, how attempts are spaced
//! (exponential backoff with deterministic jitter), and how every
//! exchange is observed (per-RPC latency histogram, retry/timeout/error
//! counters, on-the-wire byte counters) in a shared
//! [`MetricsRegistry`].

use crate::error::WireError;
use crate::frame::HEADER_LEN;
use crate::transport::Transport;
use cpms_obs::{Counter, Gauge, HistogramRecorder, MetricsRegistry, SpanCollector, TracedSpan};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How attempts of one RPC are spaced.
///
/// The first attempt runs immediately; each retryable failure earns the
/// next attempt after an exponentially growing backoff with deterministic
/// jitter (seeded, so tests reproduce exactly).
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts allowed, including the first. 1 disables retry.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by a factor
    /// drawn uniformly from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Seed for the jitter stream (deterministic per client).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(500),
            jitter: 0.5,
            seed: 0xC95E_ED01,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (heartbeats: the next beat supersedes
    /// a lost one, so retrying a stale beat is worse than useless).
    #[must_use]
    pub fn no_retry() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }
}

/// Point-in-time counters for one client (see [`Client::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// RPCs issued (counting each call once, however many attempts).
    pub calls: u64,
    /// Retried attempts (attempts beyond each call's first).
    pub retries: u64,
    /// Attempts that ended in a deadline expiry.
    pub timeouts: u64,
    /// Calls that ultimately failed after exhausting policy.
    pub failures: u64,
    /// Round-trip time of the most recent successful call, in ns.
    pub last_rtt_ns: u64,
    /// Bytes written to the wire (framed request sizes).
    pub tx_bytes: u64,
    /// Bytes read from the wire (framed response sizes).
    pub rx_bytes: u64,
    /// Transport reconnections observed so far.
    pub reconnects: u64,
}

/// Metric handles wire activity is recorded through. Swappable at
/// runtime so a client created at cluster-start can later be folded into
/// the process-wide single-system-image registry.
#[derive(Debug)]
struct WireMetrics {
    rpcs: Arc<Counter>,
    errors: Arc<Counter>,
    retries: Arc<Counter>,
    timeouts: Arc<Counter>,
    tx_bytes: Arc<Counter>,
    rx_bytes: Arc<Counter>,
    reconnects: Arc<Gauge>,
    rpc_ns: HistogramRecorder,
    // Span recording is opt-in: only attached registries trace, so the
    // throwaway default registry never accumulates span memory.
    spans: Option<Arc<SpanCollector>>,
}

impl WireMetrics {
    fn new(registry: &Arc<MetricsRegistry>) -> Self {
        WireMetrics {
            rpcs: registry.counter("wire_rpc_total"),
            errors: registry.counter("wire_rpc_errors_total"),
            retries: registry.counter("wire_retries_total"),
            timeouts: registry.counter("wire_timeouts_total"),
            tx_bytes: registry.counter("wire_tx_bytes_total"),
            rx_bytes: registry.counter("wire_rx_bytes_total"),
            reconnects: registry.gauge("wire_reconnects"),
            rpc_ns: registry.histogram_with_shards("wire_rpc_ns", 1).recorder(0),
            spans: None,
        }
    }
}

/// A retrying, observable RPC client over any [`Transport`].
#[derive(Debug)]
pub struct Client {
    transport: Arc<dyn Transport>,
    deadline: Duration,
    retry: RetryPolicy,
    metrics: Mutex<WireMetrics>,
    jitter_state: AtomicU64,
    calls: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    failures: AtomicU64,
    last_rtt_ns: AtomicU64,
    tx_bytes: AtomicU64,
    rx_bytes: AtomicU64,
}

impl Client {
    /// A client over `transport` with a 2-second per-call deadline and the
    /// default retry policy.
    #[must_use]
    pub fn new(transport: Arc<dyn Transport>) -> Self {
        let retry = RetryPolicy::default();
        Client {
            jitter_state: AtomicU64::new(retry.seed),
            transport,
            deadline: Duration::from_secs(2),
            retry,
            metrics: Mutex::new(WireMetrics::new(&Arc::new(MetricsRegistry::new()))),
            calls: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            last_rtt_ns: AtomicU64::new(0),
            tx_bytes: AtomicU64::new(0),
            rx_bytes: AtomicU64::new(0),
        }
    }

    /// Sets the per-call deadline (spanning all attempts of a single
    /// transport exchange, not the whole retry sequence).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Sets the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.jitter_state.store(retry.seed, Ordering::Relaxed);
        self.retry = retry;
        self
    }

    /// The per-call deadline.
    #[must_use]
    pub fn deadline(&self) -> Duration {
        self.deadline
    }

    /// The transport's short label (`"inproc"`, `"tcp"`, `"faulty"`).
    #[must_use]
    pub fn transport_kind(&self) -> &'static str {
        self.transport.kind()
    }

    /// Redirects this client's wire metrics into `registry` — the
    /// single-system-image wiring that puts per-RPC latency histograms
    /// and retry/timeout/byte counters on the same surface as the
    /// request path and the management plane.
    pub fn attach_metrics(&self, registry: &Arc<MetricsRegistry>) {
        let mut metrics = WireMetrics::new(registry);
        metrics.spans = Some(Arc::clone(registry.spans()));
        *self.metrics.lock().expect("wire metrics lock") = metrics;
    }

    /// Point-in-time counters for this client.
    pub fn stats(&self) -> ClientStats {
        ClientStats {
            calls: self.calls.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            last_rtt_ns: self.last_rtt_ns.load(Ordering::Relaxed),
            tx_bytes: self.tx_bytes.load(Ordering::Relaxed),
            rx_bytes: self.rx_bytes.load(Ordering::Relaxed),
            reconnects: self.transport.reconnects(),
        }
    }

    /// One RPC: serialize `request`, exchange raw payloads under the
    /// deadline + retry policy, deserialize the response.
    ///
    /// # Errors
    ///
    /// [`WireError::Codec`] on (de)serialization failure (never retried);
    /// otherwise the transport's failure, wrapped in
    /// [`WireError::Exhausted`] when more than one attempt was made.
    pub fn call<Req, Resp>(&self, request: &Req) -> Result<Resp, WireError>
    where
        Req: Serialize,
        Resp: Deserialize,
    {
        let payload = serde_json::to_string(request)
            .map_err(|e| WireError::Codec {
                detail: format!("encode request: {e}"),
            })?
            .into_bytes();
        let response = self.call_raw(&payload)?;
        let text = std::str::from_utf8(&response).map_err(|e| WireError::Codec {
            detail: format!("response is not UTF-8: {e}"),
        })?;
        serde_json::from_str(text).map_err(|e| WireError::Codec {
            detail: format!("decode response: {e}"),
        })
    }

    /// One raw-payload RPC under the deadline + retry policy, with every
    /// attempt observed.
    ///
    /// # Errors
    ///
    /// The last attempt's [`WireError`], wrapped in
    /// [`WireError::Exhausted`] when more than one attempt was made.
    pub fn call_raw(&self, payload: &[u8]) -> Result<Vec<u8>, WireError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        // One *logical* span per RPC, however many attempts it takes:
        // retries hang per-attempt child spans under it instead of
        // double-counting. Frames carry the attempt's context, so
        // server-side spans parent to the attempt that reached them.
        let collector = self
            .metrics
            .lock()
            .expect("wire metrics lock")
            .spans
            .clone();
        let mut logical = collector
            .as_deref()
            .map(|c| TracedSpan::enter(c, "wire.call"));
        let mut attempt: u32 = 0;
        let mut backoff = self.retry.base_backoff;
        loop {
            attempt += 1;
            let start = Instant::now();
            let result = {
                let mut attempt_span = collector
                    .as_deref()
                    .map(|c| TracedSpan::enter(c, "wire.attempt"));
                let result = self.transport.call(payload, self.deadline);
                if let Some(span) = attempt_span.as_mut() {
                    span.set_error(result.is_err());
                    if let Err(e) = &result {
                        span.set_detail(e.to_string());
                    }
                }
                result
            };
            let elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let framed_tx = (HEADER_LEN + payload.len()) as u64;
            {
                let metrics = self.metrics.lock().expect("wire metrics lock");
                metrics.rpcs.inc();
                metrics.rpc_ns.record(elapsed_ns);
                metrics.tx_bytes.add(framed_tx);
                metrics
                    .reconnects
                    .set(i64::try_from(self.transport.reconnects()).unwrap_or(i64::MAX));
                match &result {
                    Ok(response) => {
                        metrics.rx_bytes.add((HEADER_LEN + response.len()) as u64);
                    }
                    Err(e) => {
                        metrics.errors.inc();
                        if matches!(e, WireError::Timeout { .. }) {
                            metrics.timeouts.inc();
                        }
                    }
                }
            }
            self.tx_bytes.fetch_add(framed_tx, Ordering::Relaxed);
            match result {
                Ok(response) => {
                    self.last_rtt_ns.store(elapsed_ns, Ordering::Relaxed);
                    self.rx_bytes
                        .fetch_add((HEADER_LEN + response.len()) as u64, Ordering::Relaxed);
                    if let Some(span) = logical.as_mut() {
                        span.set_detail(format!("attempts={attempt}"));
                    }
                    return Ok(response);
                }
                Err(e) => {
                    if matches!(e, WireError::Timeout { .. }) {
                        self.timeouts.fetch_add(1, Ordering::Relaxed);
                    }
                    if !e.is_retryable() || attempt >= self.retry.max_attempts {
                        self.failures.fetch_add(1, Ordering::Relaxed);
                        if let Some(span) = logical.as_mut() {
                            span.set_error(true);
                            span.set_detail(format!("attempts={attempt} last={e}"));
                        }
                        return Err(if attempt > 1 {
                            WireError::Exhausted {
                                attempts: attempt,
                                last: Box::new(e),
                            }
                        } else {
                            e
                        });
                    }
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    self.metrics
                        .lock()
                        .expect("wire metrics lock")
                        .retries
                        .inc();
                    std::thread::sleep(self.jittered(backoff));
                    backoff = (backoff * 2).min(self.retry.max_backoff);
                }
            }
        }
    }

    /// Scales `backoff` by a deterministic jitter factor in
    /// `[1 - jitter, 1 + jitter]`.
    fn jittered(&self, backoff: Duration) -> Duration {
        if self.retry.jitter <= 0.0 {
            return backoff;
        }
        // splitmix64 over an atomic counter: deterministic, lock-free.
        let mut z = self
            .jitter_state
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let factor = 1.0 + self.retry.jitter * (2.0 * unit - 1.0);
        backoff.mul_f64(factor.max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InProcServer;
    use std::sync::atomic::AtomicU32;

    #[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
    struct Ping {
        n: u64,
    }

    #[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
    struct Pong {
        n: u64,
        doubled: u64,
    }

    fn ping_service() -> impl crate::transport::Service {
        |req: &[u8]| {
            let ping: Ping = serde_json::from_str(std::str::from_utf8(req).unwrap()).unwrap();
            serde_json::to_string(&Pong {
                n: ping.n,
                doubled: ping.n * 2,
            })
            .unwrap()
            .into_bytes()
        }
    }

    #[test]
    fn typed_round_trip_with_stats() {
        let (transport, mut server) = InProcServer::spawn(ping_service());
        let client = Client::new(Arc::new(transport));
        for n in 0..5u64 {
            let pong: Pong = client.call(&Ping { n }).unwrap();
            assert_eq!(pong, Pong { n, doubled: n * 2 });
        }
        let stats = client.stats();
        assert_eq!(stats.calls, 5);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.failures, 0);
        assert!(stats.last_rtt_ns > 0);
        assert!(stats.tx_bytes > 5 * HEADER_LEN as u64);
        assert!(stats.rx_bytes > 5 * HEADER_LEN as u64);
        server.stop();
    }

    #[test]
    fn metrics_land_in_attached_registry() {
        let (transport, mut server) = InProcServer::spawn(ping_service());
        let client = Client::new(Arc::new(transport));
        let registry = Arc::new(MetricsRegistry::new());
        client.attach_metrics(&registry);
        for n in 0..3u64 {
            let _: Pong = client.call(&Ping { n }).unwrap();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("wire_rpc_total"), Some(3));
        assert_eq!(snap.counter("wire_rpc_errors_total"), Some(0));
        let hist = snap.histogram("wire_rpc_ns").unwrap();
        assert_eq!(hist.count, 3);
        assert!(hist.max > 0);
        assert!(snap.counter("wire_tx_bytes_total").unwrap() > 0);
        server.stop();
    }

    /// A transport whose first `fail` calls lose the connection, after
    /// which it answers — a deterministic transient failure.
    #[derive(Debug)]
    struct Flaky {
        remaining_failures: AtomicU32,
    }

    impl Transport for Flaky {
        fn call(&self, request: &[u8], _deadline: Duration) -> Result<Vec<u8>, WireError> {
            let before = self.remaining_failures.load(Ordering::SeqCst);
            if before > 0 {
                self.remaining_failures.store(before - 1, Ordering::SeqCst);
                return Err(WireError::Closed);
            }
            Ok(request.to_vec())
        }

        fn kind(&self) -> &'static str {
            "flaky"
        }
    }

    #[test]
    fn retry_recovers_from_transient_failures() {
        let client = Client::new(Arc::new(Flaky {
            remaining_failures: AtomicU32::new(2),
        }))
        .with_retry(RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            jitter: 0.5,
            seed: 7,
        });
        let response = client.call_raw(b"hello").unwrap();
        assert_eq!(response, b"hello");
        let stats = client.stats();
        assert_eq!(stats.calls, 1);
        assert_eq!(stats.retries, 2, "{stats:?}");
        assert_eq!(stats.failures, 0);
    }

    #[test]
    fn exhaustion_is_typed_and_counted() {
        let (transport, mut server) = InProcServer::spawn(|req: &[u8]| {
            std::thread::sleep(Duration::from_millis(50));
            req.to_vec()
        });
        let registry = Arc::new(MetricsRegistry::new());
        let client = Client::new(Arc::new(transport))
            .with_deadline(Duration::from_millis(5))
            .with_retry(RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
                jitter: 0.0,
                seed: 1,
            });
        client.attach_metrics(&registry);
        let err = client.call_raw(b"x").unwrap_err();
        match &err {
            WireError::Exhausted { attempts: 3, last } => {
                assert!(matches!(**last, WireError::Timeout { .. }));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(err.root(), WireError::Timeout { .. }));
        let stats = client.stats();
        assert_eq!(stats.failures, 1);
        assert_eq!(stats.retries, 2);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("wire_retries_total"), Some(2));
        assert_eq!(snap.counter("wire_timeouts_total"), Some(3));
        assert_eq!(snap.counter("wire_rpc_errors_total"), Some(3));
        server.stop();
    }

    #[test]
    fn retried_rpc_is_one_logical_span_with_attempt_children() {
        let registry = Arc::new(MetricsRegistry::new());
        let client = Client::new(Arc::new(Flaky {
            remaining_failures: AtomicU32::new(2),
        }))
        .with_retry(RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            jitter: 0.0,
            seed: 3,
        });
        client.attach_metrics(&registry);
        client.call_raw(b"one rpc").unwrap();
        let spans = registry.spans().snapshot();
        let calls: Vec<_> = spans.iter().filter(|s| s.name == "wire.call").collect();
        let attempts: Vec<_> = spans.iter().filter(|s| s.name == "wire.attempt").collect();
        assert_eq!(
            calls.len(),
            1,
            "one logical span despite retries: {spans:?}"
        );
        assert_eq!(attempts.len(), 3, "each attempt is a child span");
        for a in &attempts {
            assert_eq!(a.parent, Some(calls[0].span), "attempts parent to the call");
            assert_eq!(a.trace, calls[0].trace);
        }
        assert_eq!(
            attempts.iter().filter(|a| a.error).count(),
            2,
            "the two failed attempts are marked"
        );
        assert!(!calls[0].error, "the RPC succeeded overall");
    }

    #[test]
    fn codec_failures_are_not_retried() {
        let (transport, mut server) = InProcServer::spawn(|_req: &[u8]| b"not json".to_vec());
        let client = Client::new(Arc::new(transport));
        let err = client.call::<Ping, Pong>(&Ping { n: 1 }).unwrap_err();
        assert!(matches!(err, WireError::Codec { .. }), "{err:?}");
        assert_eq!(client.stats().retries, 0);
        server.stop();
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let (t1, mut s1) = InProcServer::spawn(|req: &[u8]| req.to_vec());
        let (t2, mut s2) = InProcServer::spawn(|req: &[u8]| req.to_vec());
        let policy = RetryPolicy {
            seed: 42,
            ..RetryPolicy::default()
        };
        let a = Client::new(Arc::new(t1)).with_retry(policy.clone());
        let b = Client::new(Arc::new(t2)).with_retry(policy);
        let backoff = Duration::from_millis(100);
        for _ in 0..8 {
            assert_eq!(a.jittered(backoff), b.jittered(backoff));
        }
        s1.stop();
        s2.stop();
    }
}
