//! # cpms-wire
//!
//! The control-plane transport: length-prefixed, checksummed,
//! serde-framed request/response messaging between the management
//! daemons (controller ↔ brokers, primary ↔ backup distributor).
//!
//! The paper's management system (§3) is explicitly distributed — brokers
//! are standalone daemons on each backend node, agents are *shipped* to
//! them, and the primary/backup distributor (§2.3) replicates state over
//! the network. This crate is the layer that makes those conversations
//! real: framing, per-call deadlines, bounded retry with exponential
//! backoff and deterministic jitter, connection reuse, and a typed
//! failure taxonomy, so every control-plane layer above it inherits
//! timeout/retry/partial-failure semantics instead of assuming an
//! infallible in-process channel.
//!
//! Layers, bottom up:
//!
//! - [`frame`] — one message on a byte stream: 12-byte header (magic,
//!   version, length, FNV-1a checksum) + payload. Truncation, corruption,
//!   and protocol mismatch are all typed [`WireError`]s, never hangs.
//! - [`transport`] — the [`Transport`] trait (one request/response
//!   exchange under a deadline) with two production implementations:
//!   [`InProcTransport`] (crossbeam channels to a server thread in this
//!   process, preserving the original single-process deployment) and
//!   [`TcpTransport`] (framed loopback or cross-host TCP with connection
//!   reuse). Servers host a [`Service`] via [`InProcServer`] /
//!   [`TcpServer`].
//! - [`client`] — [`Client`]: typed serde calls with deadline + retry
//!   policy, per-RPC latency histograms and retry/timeout/byte counters
//!   recorded into a [`cpms_obs::MetricsRegistry`].
//! - [`faulty`] — [`FaultyTransport`]: a deterministic, seeded
//!   fault-injecting wrapper (drop / delay / duplicate / truncate) for
//!   robustness tests.
//!
//! Serialization is `serde_json` over the payload bytes: every message a
//! peer sends or receives is an ordinary `#[derive(Serialize,
//! Deserialize)]` type in the crate that owns it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod faulty;
pub mod frame;
pub mod transport;

pub use client::{Client, ClientStats, RetryPolicy};
pub use error::WireError;
pub use faulty::{FaultPlan, FaultStats, FaultSwitch, FaultyTransport};
pub use transport::{InProcServer, InProcTransport, Service, TcpServer, TcpTransport, Transport};
