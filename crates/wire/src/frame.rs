//! The frame layer: how one message travels a byte stream.
//!
//! Layout (all integers big-endian):
//!
//! ```text
//! +--------+--------+---------+--------+------------+------------+=========+
//! | magic0 | magic1 | version | flags  |  len: u32  |  crc: u32  | payload |
//! |  0xC9  |  0x57  |  0x01   |  0x00  | payload sz | fnv1a(pay) | len B   |
//! +--------+--------+---------+--------+------------+------------+=========+
//! ```
//!
//! The fixed 12-byte header makes truncation detectable (a short read
//! mid-header or mid-payload is [`WireError::Truncated`], never a hang),
//! the magic catches peers speaking a different protocol, the length
//! bound ([`MAX_FRAME`]) caps memory a malicious or corrupt peer can make
//! us allocate, and the FNV-1a checksum catches in-flight corruption
//! that still delivers the right number of bytes.

use crate::error::WireError;
use std::io::{Read, Write};

/// First magic byte of every frame.
pub const MAGIC: [u8; 2] = [0xC9, 0x57];

/// Protocol version this build speaks.
pub const VERSION: u8 = 1;

/// Header size in bytes.
pub const HEADER_LEN: usize = 12;

/// Largest allowed payload. Control-plane messages are small; anything
/// bigger is a protocol error, not a workload.
pub const MAX_FRAME: u64 = 16 * 1024 * 1024;

/// Total on-the-wire size of a frame carrying `payload_len` payload
/// bytes (exposed so byte counters report framed sizes).
#[must_use]
pub fn framed_len_of(payload_len: usize) -> u64 {
    (HEADER_LEN + payload_len) as u64
}

/// FNV-1a over the payload — cheap, allocation-free corruption check.
#[must_use]
pub fn checksum(payload: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &byte in payload {
        hash ^= u32::from(byte);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Encodes `payload` as one frame into `out` (header + payload).
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(0); // flags, reserved
    out.extend_from_slice(
        &u32::try_from(payload.len())
            .unwrap_or(u32::MAX)
            .to_be_bytes(),
    );
    out.extend_from_slice(&checksum(payload).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Writes `payload` as one frame.
///
/// # Errors
///
/// [`WireError::TooLarge`] if the payload exceeds [`MAX_FRAME`];
/// otherwise I/O failures classified by [`WireError::from_io`].
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() as u64 > MAX_FRAME {
        return Err(WireError::TooLarge {
            announced: payload.len() as u64,
            max: MAX_FRAME,
        });
    }
    let frame = encode_frame(payload);
    w.write_all(&frame).map_err(|e| WireError::from_io(0, &e))?;
    w.flush().map_err(|e| WireError::from_io(0, &e))
}

/// Reads exactly `buf.len()` bytes, reporting how many arrived before a
/// clean EOF (for precise truncation errors).
fn read_exact_counting<R: Read>(
    r: &mut R,
    buf: &mut [u8],
) -> Result<(), (usize, Option<std::io::Error>)> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err((filled, None)),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err((filled, Some(e))),
        }
    }
    Ok(())
}

/// Outcome of [`read_frame_or_eof`]: a payload, or a clean end-of-stream
/// before any byte of a new frame arrived.
#[derive(Debug)]
pub enum FrameOrEof {
    /// A complete, verified payload.
    Frame(Vec<u8>),
    /// The stream ended cleanly between frames.
    Eof,
}

/// Reads one frame, treating clean EOF *before the first header byte* as
/// end-of-stream rather than an error — the server side of a
/// connection loop wants exactly this.
///
/// # Errors
///
/// All [`WireError`] frame variants: truncation (EOF mid-frame),
/// bad magic/version, an oversized announcement, checksum mismatch, and
/// classified I/O errors (including timeouts from a socket read
/// deadline).
pub fn read_frame_or_eof<R: Read>(r: &mut R) -> Result<FrameOrEof, WireError> {
    let mut header = [0u8; HEADER_LEN];
    if let Err((got, io)) = read_exact_counting(r, &mut header) {
        return match io {
            Some(e) => Err(WireError::from_io(0, &e)),
            None if got == 0 => Ok(FrameOrEof::Eof),
            None => Err(WireError::Truncated {
                expected: HEADER_LEN as u64,
                got: got as u64,
            }),
        };
    }
    if header[0..2] != MAGIC {
        return Err(WireError::BadMagic {
            seen: [header[0], header[1]],
        });
    }
    if header[2] != VERSION {
        return Err(WireError::BadVersion { seen: header[2] });
    }
    let len = u64::from(u32::from_be_bytes([
        header[4], header[5], header[6], header[7],
    ]));
    let announced = u32::from_be_bytes([header[8], header[9], header[10], header[11]]);
    if len > MAX_FRAME {
        return Err(WireError::TooLarge {
            announced: len,
            max: MAX_FRAME,
        });
    }
    let mut payload = vec![0u8; usize::try_from(len).expect("len <= MAX_FRAME fits usize")];
    if let Err((got, io)) = read_exact_counting(r, &mut payload) {
        return match io {
            Some(e) => Err(WireError::from_io(0, &e)),
            None => Err(WireError::Truncated {
                expected: len,
                got: got as u64,
            }),
        };
    }
    let computed = checksum(&payload);
    if computed != announced {
        return Err(WireError::Corrupt {
            announced,
            computed,
        });
    }
    Ok(FrameOrEof::Frame(payload))
}

/// Reads one frame; a clean EOF anywhere is an error (the client side of
/// a call, which expects exactly one response).
///
/// # Errors
///
/// As [`read_frame_or_eof`], plus [`WireError::Closed`] on clean EOF
/// before the header.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, WireError> {
    match read_frame_or_eof(r)? {
        FrameOrEof::Frame(payload) => Ok(payload),
        FrameOrEof::Eof => Err(WireError::Closed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello wire").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello wire");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"");
        assert!(matches!(
            read_frame_or_eof(&mut cursor).unwrap(),
            FrameOrEof::Eof
        ));
    }

    #[test]
    fn truncated_payload_is_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"0123456789").unwrap();
        buf.truncate(HEADER_LEN + 4);
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(
            err,
            WireError::Truncated {
                expected: 10,
                got: 4
            }
        );
    }

    #[test]
    fn truncated_header_is_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abc").unwrap();
        buf.truncate(5);
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, WireError::Truncated { got: 5, .. }));
    }

    #[test]
    fn clean_eof_on_client_read_is_closed() {
        let err = read_frame(&mut Cursor::new(Vec::new())).unwrap_err();
        assert_eq!(err, WireError::Closed);
    }

    #[test]
    fn corruption_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, WireError::Corrupt { .. }), "{err:?}");
    }

    #[test]
    fn wrong_magic_and_version() {
        let mut buf = encode_frame(b"x");
        buf[0] = 0;
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)).unwrap_err(),
            WireError::BadMagic { seen: [0, 0x57] }
        ));
        let mut buf = encode_frame(b"x");
        buf[2] = 9;
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)).unwrap_err(),
            WireError::BadVersion { seen: 9 }
        ));
    }

    #[test]
    fn oversized_announcement_rejected_without_allocation() {
        let mut buf = encode_frame(b"x");
        buf[4..8].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)).unwrap_err(),
            WireError::TooLarge { .. }
        ));
    }

    #[test]
    fn checksum_is_stable() {
        // FNV-1a reference value for "hello".
        assert_eq!(checksum(b"hello"), 0x4F9F_2CAB);
        assert_eq!(checksum(b""), 0x811c_9dc5);
    }
}
