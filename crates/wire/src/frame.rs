//! The frame layer: how one message travels a byte stream.
//!
//! Layout (all integers big-endian):
//!
//! ```text
//! +--------+--------+---------+--------+------------+------------+=========+
//! | magic0 | magic1 | version | flags  |  len: u32  |  crc: u32  | payload |
//! |  0xC9  |  0x57  |  0x01   |  0x00  | payload sz | fnv1a(pay) | len B   |
//! +--------+--------+---------+--------+------------+------------+=========+
//! ```
//!
//! The fixed 12-byte header makes truncation detectable (a short read
//! mid-header or mid-payload is [`WireError::Truncated`], never a hang),
//! the magic catches peers speaking a different protocol, the length
//! bound ([`MAX_FRAME`]) caps memory a malicious or corrupt peer can make
//! us allocate, and the FNV-1a checksum catches in-flight corruption
//! that still delivers the right number of bytes.

use crate::error::WireError;
use cpms_obs::TraceContext;
use std::io::{Read, Write};

/// First magic byte of every frame.
pub const MAGIC: [u8; 2] = [0xC9, 0x57];

/// Protocol version this build speaks.
pub const VERSION: u8 = 1;

/// Header size in bytes.
pub const HEADER_LEN: usize = 12;

/// Flags-byte bit: the payload is prefixed with a trace extension
/// (`[ext_version][ext_len][ext bytes…]`, checksummed with the body).
pub const FLAG_TRACE: u8 = 0x01;

/// Flags-byte bit: the sender understands frame extensions. Senders set
/// it on every frame; a peer attaches [`FLAG_TRACE`] extensions only
/// after seeing it, so extension-less builds (which never read the
/// flags byte) keep receiving plain frames.
pub const FLAG_TRACE_CAPABLE: u8 = 0x02;

/// Version byte of the trace extension this build writes.
pub const TRACE_EXT_VERSION: u8 = 1;

/// Largest allowed payload. Control-plane messages are small; anything
/// bigger is a protocol error, not a workload.
pub const MAX_FRAME: u64 = 16 * 1024 * 1024;

/// Total on-the-wire size of a frame carrying `payload_len` payload
/// bytes (exposed so byte counters report framed sizes).
#[must_use]
pub fn framed_len_of(payload_len: usize) -> u64 {
    (HEADER_LEN + payload_len) as u64
}

/// FNV-1a over the payload — cheap, allocation-free corruption check.
#[must_use]
pub fn checksum(payload: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &byte in payload {
        hash ^= u32::from(byte);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Encodes `payload` as one plain (extension-less, zero-flags) frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    encode_frame_ext(payload, 0, None)
}

/// Encodes `payload` as one frame with explicit `flags` and an optional
/// trace-context extension. Attaching a context sets [`FLAG_TRACE`] and
/// prefixes the checksummed payload area with
/// `[TRACE_EXT_VERSION][ext_len][context bytes]`.
pub fn encode_frame_ext(payload: &[u8], flags: u8, trace: Option<&TraceContext>) -> Vec<u8> {
    let ext = trace.map(TraceContext::to_bytes);
    let ext_overhead = ext.map_or(0, |e| 2 + e.len());
    let body_len = ext_overhead + payload.len();
    let mut out = Vec::with_capacity(HEADER_LEN + body_len);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(if ext.is_some() {
        flags | FLAG_TRACE
    } else {
        flags & !FLAG_TRACE
    });
    out.extend_from_slice(&u32::try_from(body_len).unwrap_or(u32::MAX).to_be_bytes());
    // Checksum covers extension + payload; computed over the assembled
    // body below, then patched into the header.
    out.extend_from_slice(&[0u8; 4]);
    if let Some(ext) = ext {
        out.push(TRACE_EXT_VERSION);
        out.push(u8::try_from(ext.len()).expect("context encoding fits one byte"));
        out.extend_from_slice(&ext);
    }
    out.extend_from_slice(payload);
    let crc = checksum(&out[HEADER_LEN..]);
    out[8..12].copy_from_slice(&crc.to_be_bytes());
    out
}

/// Writes `payload` as one plain frame.
///
/// # Errors
///
/// [`WireError::TooLarge`] if the payload exceeds [`MAX_FRAME`];
/// otherwise I/O failures classified by [`WireError::from_io`].
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), WireError> {
    write_frame_ext(w, payload, 0, None)
}

/// Writes `payload` as one frame with explicit `flags` and an optional
/// trace-context extension (see [`encode_frame_ext`]).
///
/// # Errors
///
/// As [`write_frame`].
pub fn write_frame_ext<W: Write>(
    w: &mut W,
    payload: &[u8],
    flags: u8,
    trace: Option<&TraceContext>,
) -> Result<(), WireError> {
    let ext_overhead = if trace.is_some() {
        2 + cpms_obs::CONTEXT_WIRE_LEN as u64
    } else {
        0
    };
    if payload.len() as u64 + ext_overhead > MAX_FRAME {
        return Err(WireError::TooLarge {
            announced: payload.len() as u64 + ext_overhead,
            max: MAX_FRAME,
        });
    }
    let frame = encode_frame_ext(payload, flags, trace);
    w.write_all(&frame).map_err(|e| WireError::from_io(0, &e))?;
    w.flush().map_err(|e| WireError::from_io(0, &e))
}

/// Reads exactly `buf.len()` bytes, reporting how many arrived before a
/// clean EOF (for precise truncation errors).
fn read_exact_counting<R: Read>(
    r: &mut R,
    buf: &mut [u8],
) -> Result<(), (usize, Option<std::io::Error>)> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err((filled, None)),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err((filled, Some(e))),
        }
    }
    Ok(())
}

/// Outcome of [`read_frame_or_eof`]: a payload, or a clean end-of-stream
/// before any byte of a new frame arrived.
#[derive(Debug)]
pub enum FrameOrEof {
    /// A complete, verified payload.
    Frame(Vec<u8>),
    /// The stream ended cleanly between frames.
    Eof,
}

/// A verified frame with its flags byte and any trace extension
/// decoded: what [`read_frame_ext_or_eof`] yields.
#[derive(Debug)]
pub struct TracedFrame {
    /// The message payload (extension stripped).
    pub payload: Vec<u8>,
    /// The header flags byte as received.
    pub flags: u8,
    /// The carried trace context, if a valid one was attached.
    pub trace: Option<TraceContext>,
}

impl TracedFrame {
    /// Whether the sender advertised frame-extension capability.
    #[must_use]
    pub fn peer_traces(&self) -> bool {
        self.flags & FLAG_TRACE_CAPABLE != 0
    }
}

/// Outcome of [`read_frame_ext_or_eof`].
#[derive(Debug)]
pub enum TracedFrameOrEof {
    /// A complete, verified frame.
    Frame(TracedFrame),
    /// The stream ended cleanly between frames.
    Eof,
}

/// Reads one frame, treating clean EOF *before the first header byte* as
/// end-of-stream rather than an error — the server side of a
/// connection loop wants exactly this. The flags byte and trace
/// extension are decoded and stripped: an unknown extension version or
/// a semantically invalid context degrades to an untraced payload,
/// while a structurally broken extension (too short for its own
/// framing) is the typed [`WireError::BadExtension`].
///
/// # Errors
///
/// All [`WireError`] frame variants: truncation (EOF mid-frame),
/// bad magic/version, an oversized announcement, checksum mismatch,
/// a malformed extension area, and classified I/O errors (including
/// timeouts from a socket read deadline).
pub fn read_frame_ext_or_eof<R: Read>(r: &mut R) -> Result<TracedFrameOrEof, WireError> {
    let mut header = [0u8; HEADER_LEN];
    if let Err((got, io)) = read_exact_counting(r, &mut header) {
        return match io {
            Some(e) => Err(WireError::from_io(0, &e)),
            None if got == 0 => Ok(TracedFrameOrEof::Eof),
            None => Err(WireError::Truncated {
                expected: HEADER_LEN as u64,
                got: got as u64,
            }),
        };
    }
    if header[0..2] != MAGIC {
        return Err(WireError::BadMagic {
            seen: [header[0], header[1]],
        });
    }
    if header[2] != VERSION {
        return Err(WireError::BadVersion { seen: header[2] });
    }
    let flags = header[3];
    let len = u64::from(u32::from_be_bytes([
        header[4], header[5], header[6], header[7],
    ]));
    let announced = u32::from_be_bytes([header[8], header[9], header[10], header[11]]);
    if len > MAX_FRAME {
        return Err(WireError::TooLarge {
            announced: len,
            max: MAX_FRAME,
        });
    }
    let mut payload = vec![0u8; usize::try_from(len).expect("len <= MAX_FRAME fits usize")];
    if let Err((got, io)) = read_exact_counting(r, &mut payload) {
        return match io {
            Some(e) => Err(WireError::from_io(0, &e)),
            None => Err(WireError::Truncated {
                expected: len,
                got: got as u64,
            }),
        };
    }
    let computed = checksum(&payload);
    if computed != announced {
        return Err(WireError::Corrupt {
            announced,
            computed,
        });
    }
    let mut trace = None;
    if flags & FLAG_TRACE != 0 {
        if payload.len() < 2 {
            return Err(WireError::BadExtension {
                detail: format!(
                    "flagged frame too short for an extension header ({} bytes)",
                    payload.len()
                ),
            });
        }
        let ext_version = payload[0];
        let ext_len = usize::from(payload[1]);
        if 2 + ext_len > payload.len() {
            return Err(WireError::BadExtension {
                detail: format!(
                    "extension announces {ext_len} bytes but only {} remain",
                    payload.len() - 2
                ),
            });
        }
        if ext_version == TRACE_EXT_VERSION {
            // An invalid context degrades to untraced: the frame is
            // structurally fine, the semantics just aren't usable.
            trace = TraceContext::from_bytes(&payload[2..2 + ext_len]);
        }
        payload.drain(..2 + ext_len);
    }
    Ok(TracedFrameOrEof::Frame(TracedFrame {
        payload,
        flags,
        trace,
    }))
}

/// Reads one frame as [`read_frame_ext_or_eof`] but discards the flags
/// byte and trace extension, yielding just the payload.
///
/// # Errors
///
/// As [`read_frame_ext_or_eof`].
pub fn read_frame_or_eof<R: Read>(r: &mut R) -> Result<FrameOrEof, WireError> {
    match read_frame_ext_or_eof(r)? {
        TracedFrameOrEof::Frame(frame) => Ok(FrameOrEof::Frame(frame.payload)),
        TracedFrameOrEof::Eof => Ok(FrameOrEof::Eof),
    }
}

/// Reads one frame; a clean EOF anywhere is an error (the client side of
/// a call, which expects exactly one response).
///
/// # Errors
///
/// As [`read_frame_or_eof`], plus [`WireError::Closed`] on clean EOF
/// before the header.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, WireError> {
    match read_frame_or_eof(r)? {
        FrameOrEof::Frame(payload) => Ok(payload),
        FrameOrEof::Eof => Err(WireError::Closed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello wire").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello wire");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"");
        assert!(matches!(
            read_frame_or_eof(&mut cursor).unwrap(),
            FrameOrEof::Eof
        ));
    }

    #[test]
    fn truncated_payload_is_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"0123456789").unwrap();
        buf.truncate(HEADER_LEN + 4);
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(
            err,
            WireError::Truncated {
                expected: 10,
                got: 4
            }
        );
    }

    #[test]
    fn truncated_header_is_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abc").unwrap();
        buf.truncate(5);
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, WireError::Truncated { got: 5, .. }));
    }

    #[test]
    fn clean_eof_on_client_read_is_closed() {
        let err = read_frame(&mut Cursor::new(Vec::new())).unwrap_err();
        assert_eq!(err, WireError::Closed);
    }

    #[test]
    fn corruption_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, WireError::Corrupt { .. }), "{err:?}");
    }

    #[test]
    fn wrong_magic_and_version() {
        let mut buf = encode_frame(b"x");
        buf[0] = 0;
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)).unwrap_err(),
            WireError::BadMagic { seen: [0, 0x57] }
        ));
        let mut buf = encode_frame(b"x");
        buf[2] = 9;
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)).unwrap_err(),
            WireError::BadVersion { seen: 9 }
        ));
    }

    #[test]
    fn oversized_announcement_rejected_without_allocation() {
        let mut buf = encode_frame(b"x");
        buf[4..8].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)).unwrap_err(),
            WireError::TooLarge { .. }
        ));
    }

    #[test]
    fn checksum_is_stable() {
        // FNV-1a reference value for "hello".
        assert_eq!(checksum(b"hello"), 0x4F9F_2CAB);
        assert_eq!(checksum(b""), 0x811c_9dc5);
    }

    #[test]
    fn traced_frame_round_trip() {
        let ctx = TraceContext::root(true).child();
        let mut buf = Vec::new();
        write_frame_ext(&mut buf, b"payload", FLAG_TRACE_CAPABLE, Some(&ctx)).unwrap();
        let mut cursor = Cursor::new(buf);
        match read_frame_ext_or_eof(&mut cursor).unwrap() {
            TracedFrameOrEof::Frame(frame) => {
                assert_eq!(frame.payload, b"payload");
                assert_eq!(frame.trace, Some(ctx));
                assert!(frame.peer_traces());
                assert_ne!(frame.flags & FLAG_TRACE, 0);
            }
            TracedFrameOrEof::Eof => panic!("expected a frame"),
        }
    }

    #[test]
    fn plain_reader_strips_extensions_transparently() {
        let ctx = TraceContext::root(false);
        let mut buf = Vec::new();
        write_frame_ext(&mut buf, b"legacy view", 0, Some(&ctx)).unwrap();
        // A caller using the extension-less API still sees just the
        // payload — never the extension bytes.
        assert_eq!(read_frame(&mut Cursor::new(buf)).unwrap(), b"legacy view");
    }

    #[test]
    fn untraced_frames_read_back_without_a_context() {
        let mut buf = Vec::new();
        write_frame_ext(&mut buf, b"plain", FLAG_TRACE_CAPABLE, None).unwrap();
        match read_frame_ext_or_eof(&mut Cursor::new(buf)).unwrap() {
            TracedFrameOrEof::Frame(frame) => {
                assert_eq!(frame.payload, b"plain");
                assert_eq!(frame.trace, None);
                assert!(frame.peer_traces());
            }
            TracedFrameOrEof::Eof => panic!("expected a frame"),
        }
    }

    #[test]
    fn unknown_extension_version_degrades_to_untraced() {
        let ctx = TraceContext::root(true);
        let mut buf = encode_frame_ext(b"future", 0, Some(&ctx));
        // Bump the extension version byte and re-checksum: a frame from
        // a future build we cannot interpret.
        buf[HEADER_LEN] = TRACE_EXT_VERSION + 1;
        let crc = checksum(&buf[HEADER_LEN..]);
        buf[8..12].copy_from_slice(&crc.to_be_bytes());
        match read_frame_ext_or_eof(&mut Cursor::new(buf)).unwrap() {
            TracedFrameOrEof::Frame(frame) => {
                assert_eq!(frame.payload, b"future");
                assert_eq!(frame.trace, None, "unknown version is skipped, not fatal");
            }
            TracedFrameOrEof::Eof => panic!("expected a frame"),
        }
    }

    #[test]
    fn garbage_extension_area_is_a_typed_error() {
        // FLAG_TRACE set but the payload area cannot hold the announced
        // extension: ext_len says 200 bytes, only 3 follow.
        let mut body = vec![TRACE_EXT_VERSION, 200, 1, 2, 3];
        let mut buf = Vec::with_capacity(HEADER_LEN + body.len());
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION);
        buf.push(FLAG_TRACE);
        buf.extend_from_slice(&u32::try_from(body.len()).unwrap().to_be_bytes());
        buf.extend_from_slice(&checksum(&body).to_be_bytes());
        buf.append(&mut body);
        let err = read_frame_ext_or_eof(&mut Cursor::new(buf)).unwrap_err();
        assert!(
            matches!(err, WireError::BadExtension { .. }),
            "typed error, got {err:?}"
        );
        assert!(
            err.is_retryable(),
            "corruption-like: retry may get a clean frame"
        );
    }

    #[test]
    fn invalid_context_bytes_degrade_to_untraced() {
        // Structurally valid extension of the right length, but the
        // context is all zeros (no trace id) — semantically invalid.
        let mut body = vec![
            TRACE_EXT_VERSION,
            u8::try_from(cpms_obs::CONTEXT_WIRE_LEN).unwrap(),
        ];
        body.extend_from_slice(&[0u8; cpms_obs::CONTEXT_WIRE_LEN]);
        body.extend_from_slice(b"still fine");
        let mut buf = Vec::with_capacity(HEADER_LEN + body.len());
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION);
        buf.push(FLAG_TRACE);
        buf.extend_from_slice(&u32::try_from(body.len()).unwrap().to_be_bytes());
        buf.extend_from_slice(&checksum(&body).to_be_bytes());
        buf.append(&mut body);
        match read_frame_ext_or_eof(&mut Cursor::new(buf)).unwrap() {
            TracedFrameOrEof::Frame(frame) => {
                assert_eq!(frame.payload, b"still fine");
                assert_eq!(frame.trace, None);
            }
            TracedFrameOrEof::Eof => panic!("expected a frame"),
        }
    }
}
