//! Object identity: checksums, chunk geometry, and deterministic bodies.
//!
//! Every stored object is described by an [`ObjectMeta`]: its content id,
//! byte size, whole-object FNV-1a checksum, and the chunk size it is
//! shipped in. Chunk geometry is derived, never stored per chunk — chunk
//! `i` of an object is always `body[i * chunk_size ..][.. chunk_len(i)]`,
//! so sender and receiver agree on framing from the meta alone.

use cpms_model::ContentId;
use serde::{Deserialize, Serialize};

/// Default shipping chunk size in bytes (4 KiB, one page).
pub const DEFAULT_CHUNK_SIZE: u32 = 4096;

/// FNV-1a 64-bit over `bytes` — the same hash family `cpms-wire` frames
/// use, applied here per chunk and per whole object.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Lower-hex encodes `bytes` (chunk payloads ride inside JSON wire
/// messages as hex strings; the vendored serde stand-in has no efficient
/// byte-array representation).
#[must_use]
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit(u32::from(b >> 4), 16).expect("nibble < 16"));
        out.push(char::from_digit(u32::from(b & 0xF), 16).expect("nibble < 16"));
    }
    out
}

/// Decodes a lower/upper-hex string back into bytes.
///
/// # Errors
///
/// A description of the malformation (odd length, non-hex digit).
pub fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err(format!("odd-length hex string ({} chars)", s.len()));
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char)
            .to_digit(16)
            .ok_or_else(|| format!("non-hex digit {:?}", pair[0] as char))?;
        let lo = (pair[1] as char)
            .to_digit(16)
            .ok_or_else(|| format!("non-hex digit {:?}", pair[1] as char))?;
        out.push(u8::try_from(hi * 16 + lo).expect("two nibbles fit a byte"));
    }
    Ok(out)
}

/// The durable description of one stored object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectMeta {
    /// Which content object this is a copy of.
    pub content: ContentId,
    /// Whole-object size in bytes.
    pub size: u64,
    /// FNV-1a 64 over the whole body.
    pub checksum: u64,
    /// Shipping chunk size in bytes (> 0).
    pub chunk_size: u32,
    /// Monotone version, bumped on each content update.
    pub version: u64,
}

impl ObjectMeta {
    /// Describes `body` with the given identity and chunk size.
    ///
    /// # Panics
    ///
    /// If `chunk_size` is zero.
    #[must_use]
    pub fn for_body(content: ContentId, body: &[u8], chunk_size: u32, version: u64) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        ObjectMeta {
            content,
            size: body.len() as u64,
            checksum: fnv64(body),
            chunk_size,
            version,
        }
    }

    /// Number of chunks the object ships as (zero-byte objects ship as
    /// zero chunks).
    #[must_use]
    pub fn chunk_count(&self) -> u32 {
        u32::try_from(self.size.div_ceil(u64::from(self.chunk_size.max(1)))).unwrap_or(u32::MAX)
    }

    /// Length of chunk `index`, or `None` if out of range. Every chunk is
    /// full-size except possibly the last.
    #[must_use]
    pub fn chunk_len(&self, index: u32) -> Option<u32> {
        if index >= self.chunk_count() {
            return None;
        }
        let start = u64::from(index) * u64::from(self.chunk_size);
        let len = (self.size - start).min(u64::from(self.chunk_size));
        Some(u32::try_from(len).expect("chunk length fits chunk_size"))
    }

    /// The byte range of chunk `index` within the body.
    #[must_use]
    pub fn chunk_range(&self, index: u32) -> Option<std::ops::Range<usize>> {
        let len = self.chunk_len(index)?;
        let start = usize::try_from(u64::from(index) * u64::from(self.chunk_size)).ok()?;
        Some(start..start + len as usize)
    }
}

/// A deterministic object body for `content` of the given size: the byte
/// stream only depends on (id, size), so a controller and a broker that
/// never exchanged the bytes can still agree on what "content 7, 4 KiB"
/// looks like. This is how workload-spec objects (which declare sizes but
/// carry no payload) become real, checksummable bytes.
#[must_use]
pub fn synthetic_body(content: ContentId, size: u64) -> Vec<u8> {
    let size = usize::try_from(size).expect("object sizes fit in memory");
    let mut out = Vec::with_capacity(size);
    // splitmix64 keyed by the content id; 8 bytes per draw.
    let mut state = 0x9E37_79B9_7F4A_7C15_u64 ^ (u64::from(content.0) << 17);
    while out.len() < size {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        for byte in z.to_le_bytes() {
            if out.len() == size {
                break;
            }
            out.push(byte);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_and_is_stable() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"abc"), fnv64(b"abd"));
        assert_eq!(fnv64(b"abc"), fnv64(b"abc"));
    }

    #[test]
    fn hex_roundtrip() {
        for body in [&b""[..], &b"\x00\xff\x10"[..], &b"hello world"[..]] {
            assert_eq!(hex_decode(&hex_encode(body)).unwrap(), body);
        }
        assert!(hex_decode("abc").is_err(), "odd length");
        assert!(hex_decode("zz").is_err(), "non-hex");
        assert_eq!(
            hex_decode("DEADbeef").unwrap(),
            vec![0xDE, 0xAD, 0xBE, 0xEF]
        );
    }

    #[test]
    fn chunk_geometry() {
        let meta = ObjectMeta::for_body(ContentId(1), &[7u8; 10], 4, 0);
        assert_eq!(meta.chunk_count(), 3);
        assert_eq!(meta.chunk_len(0), Some(4));
        assert_eq!(meta.chunk_len(2), Some(2));
        assert_eq!(meta.chunk_len(3), None);
        assert_eq!(meta.chunk_range(2), Some(8..10));

        let empty = ObjectMeta::for_body(ContentId(1), &[], 4, 0);
        assert_eq!(empty.chunk_count(), 0);

        let exact = ObjectMeta::for_body(ContentId(1), &[0u8; 8], 4, 0);
        assert_eq!(exact.chunk_count(), 2);
        assert_eq!(exact.chunk_len(1), Some(4));
    }

    #[test]
    fn synthetic_bodies_are_deterministic_and_distinct() {
        let a = synthetic_body(ContentId(1), 1000);
        let b = synthetic_body(ContentId(1), 1000);
        let c = synthetic_body(ContentId(2), 1000);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 1000);
        assert_eq!(synthetic_body(ContentId(1), 0).len(), 0);
        // Prefix property: a shorter body of the same id is a prefix, so
        // declared-size changes do not shuffle all bytes.
        let short = synthetic_body(ContentId(1), 100);
        assert_eq!(&a[..100], &short[..]);
    }
}
