//! cpms-store: the per-node durable content store and the wire-streamed
//! content-shipping pipeline.
//!
//! The paper's management plane (§3) decides *where* content should live;
//! this crate is the machinery that makes those decisions true on disk.
//! Each web-server node hosts a [`ContentStore`] — a chunked object
//! repository with FNV-checksummed objects, an atomic
//! stage → commit → gc transfer lifecycle, an on-disk manifest, and
//! quota/disk-usage accounting. Between nodes, content moves over
//! `cpms-wire` through the ship protocol ([`ShipRequest`] /
//! [`ShipReply`]): resumable chunked transfers with per-chunk checksum
//! validation, bounded-retry resume after connection loss, optional
//! [`TokenBucket`] bandwidth throttling, and a bounded-concurrency
//! [`TransferScheduler`] for controller-side fan-out.
//!
//! The load-bearing invariant the rest of the system builds on:
//! **commit before publish**. An object only becomes visible (readable,
//! inventoried, counted) after every chunk is staged and the whole-body
//! checksum verifies — so a URL-table generation that routes a lookup to
//! a node is only ever published after that node's store has committed
//! the bytes, and no lookup can resolve to a node lacking the content.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod object;
mod sched;
mod ship;
mod store;
mod throttle;

pub use object::{fnv64, hex_decode, hex_encode, synthetic_body, ObjectMeta, DEFAULT_CHUNK_SIZE};
pub use sched::TransferScheduler;
pub use ship::{
    apply, ShipError, ShipMetrics, ShipOutcome, ShipPort, ShipReply, ShipRequest, Shipper,
    StoreClient, StoreService, SHIP_DEADLINE,
};
pub use store::{ContentStore, StoreError, StoreStats};
pub use throttle::TokenBucket;
