//! The content-shipping protocol: resumable chunked transfer over
//! `cpms-wire`.
//!
//! The wire vocabulary is [`ShipRequest`] / [`ShipReply`]: `Begin` opens
//! (or resumes) a staged transfer, `Chunk` ships one checksummed piece,
//! `Commit` verifies and atomically installs, plus `Fetch`/`Meta` (pull
//! side), `Verify`, `Inventory`, `Stat`, and `Gc` for the anti-entropy
//! auditor and the console. Every message is idempotent, so the protocol
//! is safe over an at-least-once lossy transport: a duplicated `Chunk`
//! re-stages identical bytes, a replayed `Commit` after a lost ack finds
//! the committed object and succeeds.
//!
//! The sending half is [`Shipper`]: it drives a [`ShipPort`] (any
//! request/reply funnel to a remote store — a raw wire [`StoreClient`] or
//! a broker dispatch adapter), re-sends individual rejected chunks
//! (bounded per-chunk retries), resumes whole transfers after connection
//! loss (bounded resume count, restarting from the receiver's reported
//! progress), and optionally throttles through a
//! [`TokenBucket`](crate::throttle::TokenBucket).

use crate::object::{fnv64, hex_decode, hex_encode, ObjectMeta};
use crate::store::{ContentStore, StoreError, StoreStats};
use crate::throttle::TokenBucket;
use cpms_model::{ContentId, UrlPath};
use cpms_obs::{Counter, Gauge, HistogramRecorder, MetricsRegistry};
use cpms_wire::{Client, RetryPolicy, Transport, WireError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default per-RPC deadline for store calls.
pub const SHIP_DEADLINE: Duration = Duration::from_secs(2);

/// One request to a remote content store.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ShipRequest {
    /// Open or resume a staged transfer.
    Begin {
        /// Destination path.
        path: UrlPath,
        /// The object being shipped.
        meta: ObjectMeta,
        /// Whether to replace an existing different object.
        overwrite: bool,
    },
    /// Ship one chunk of an open transfer.
    Chunk {
        /// The transfer id from `Begun`.
        transfer: u64,
        /// Chunk index.
        index: u32,
        /// Hex-encoded chunk bytes.
        data: String,
        /// FNV-1a 64 of the raw bytes.
        checksum: u64,
    },
    /// Verify and atomically install a fully staged transfer.
    Commit {
        /// The transfer id.
        transfer: u64,
        /// Destination path (cross-checked against the staging record).
        path: UrlPath,
        /// Whole-object checksum.
        checksum: u64,
    },
    /// Drop a staged transfer.
    Abort {
        /// The transfer id.
        transfer: u64,
    },
    /// Read one chunk of a committed object (pull side).
    Fetch {
        /// The object's path.
        path: UrlPath,
        /// Chunk index.
        index: u32,
    },
    /// Read a committed object's manifest record.
    Meta {
        /// The object's path.
        path: UrlPath,
    },
    /// Re-checksum a committed object against its manifest.
    Verify {
        /// The object's path.
        path: UrlPath,
    },
    /// List every committed object (the anti-entropy audit's raw data).
    Inventory,
    /// Report store accounting.
    Stat,
    /// Sweep abandoned staged transfers.
    Gc,
    /// Delete a committed object (the repair half of anti-entropy).
    Delete {
        /// The object's path.
        path: UrlPath,
    },
}

impl ShipRequest {
    /// The request's short verb — span names and log labels.
    #[must_use]
    pub fn verb(&self) -> &'static str {
        match self {
            ShipRequest::Begin { .. } => "begin",
            ShipRequest::Chunk { .. } => "chunk",
            ShipRequest::Commit { .. } => "commit",
            ShipRequest::Abort { .. } => "abort",
            ShipRequest::Fetch { .. } => "fetch",
            ShipRequest::Meta { .. } => "meta",
            ShipRequest::Verify { .. } => "verify",
            ShipRequest::Inventory => "inventory",
            ShipRequest::Stat => "stat",
            ShipRequest::Gc => "gc",
            ShipRequest::Delete { .. } => "delete",
        }
    }
}

/// A remote content store's reply.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ShipReply {
    /// Transfer opened/resumed: id plus already-staged chunk indices.
    Begun {
        /// Transfer id (`0` = the object is already committed).
        transfer: u64,
        /// Chunks the receiver already has.
        have: Vec<u32>,
    },
    /// Chunk staged.
    ChunkOk,
    /// Object committed (or already was, identically).
    Committed(ObjectMeta),
    /// Abort result: whether a transfer was dropped.
    Aborted(bool),
    /// One chunk of a committed object.
    ChunkData {
        /// Hex-encoded bytes.
        data: String,
        /// FNV-1a 64 of the raw bytes.
        checksum: u64,
    },
    /// The manifest record.
    MetaIs(ObjectMeta),
    /// Verification passed.
    Verified(ObjectMeta),
    /// The full committed inventory.
    InventoryIs(Vec<(UrlPath, ObjectMeta)>),
    /// Store accounting.
    Stats(StoreStats),
    /// Gc result.
    Swept {
        /// Transfers released.
        transfers: u64,
        /// Bytes released.
        bytes: u64,
    },
    /// Object deleted.
    Deleted(ObjectMeta),
    /// The operation failed store-side.
    Err(StoreError),
}

/// Executes one ship request against a local store — shared by the
/// standalone [`StoreService`] and by broker services that embed a
/// content store behind their own agent protocol.
#[must_use]
pub fn apply(store: &ContentStore, request: &ShipRequest) -> ShipReply {
    fn ok_or<T>(r: Result<T, StoreError>, f: impl FnOnce(T) -> ShipReply) -> ShipReply {
        match r {
            Ok(v) => f(v),
            Err(e) => ShipReply::Err(e),
        }
    }
    match request {
        ShipRequest::Begin {
            path,
            meta,
            overwrite,
        } => ok_or(store.begin(path, *meta, *overwrite), |(transfer, have)| {
            ShipReply::Begun { transfer, have }
        }),
        ShipRequest::Chunk {
            transfer,
            index,
            data,
            checksum,
        } => match hex_decode(data) {
            Ok(bytes) => ok_or(
                store.stage_chunk(*transfer, *index, &bytes, *checksum),
                |()| ShipReply::ChunkOk,
            ),
            Err(detail) => ShipReply::Err(StoreError::BadChunk {
                path: "/".parse().expect("root path literal"),
                index: *index,
                detail,
            }),
        },
        ShipRequest::Commit {
            transfer,
            path,
            checksum,
        } => ok_or(
            store.commit(*transfer, path, *checksum),
            ShipReply::Committed,
        ),
        ShipRequest::Abort { transfer } => ShipReply::Aborted(store.abort(*transfer)),
        ShipRequest::Fetch { path, index } => {
            ok_or(store.read_chunk(path, *index), |(bytes, checksum)| {
                ShipReply::ChunkData {
                    data: hex_encode(&bytes),
                    checksum,
                }
            })
        }
        ShipRequest::Meta { path } => match store.meta(path) {
            Some(meta) => ShipReply::MetaIs(meta),
            None => ShipReply::Err(StoreError::NotFound { path: path.clone() }),
        },
        ShipRequest::Verify { path } => ok_or(store.verify(path), ShipReply::Verified),
        ShipRequest::Inventory => ShipReply::InventoryIs(store.inventory()),
        ShipRequest::Stat => ShipReply::Stats(store.stats()),
        ShipRequest::Gc => {
            let (transfers, bytes) = store.gc();
            ShipReply::Swept { transfers, bytes }
        }
        ShipRequest::Delete { path } => ok_or(store.delete(path), ShipReply::Deleted),
    }
}

/// A standalone wire service hosting one content store (the data-plane
/// daemon; brokers embed the same [`apply`] behind their agent protocol).
#[derive(Debug)]
pub struct StoreService {
    store: Arc<ContentStore>,
}

impl StoreService {
    /// Serves `store` over the ship protocol.
    #[must_use]
    pub fn new(store: Arc<ContentStore>) -> Self {
        StoreService { store }
    }

    /// The served store.
    #[must_use]
    pub fn store(&self) -> &Arc<ContentStore> {
        &self.store
    }
}

impl cpms_wire::Service for StoreService {
    fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        let reply = match std::str::from_utf8(request)
            .map_err(|e| format!("payload is not UTF-8: {e}"))
            .and_then(|text| serde_json::from_str::<ShipRequest>(text).map_err(|e| e.to_string()))
        {
            Ok(req) => apply(&self.store, &req),
            Err(detail) => ShipReply::Err(StoreError::Io {
                detail: format!("undecodable ship request: {detail}"),
            }),
        };
        serde_json::to_string(&reply)
            .expect("ship replies always serialize")
            .into_bytes()
    }
}

/// The sending side's funnel to one remote store: a single
/// request/response exchange. Implemented by [`StoreClient`] (raw wire)
/// and by broker handles (ship requests tunneled through the agent
/// protocol).
pub trait ShipPort {
    /// Sends one ship request and returns the remote store's reply.
    ///
    /// # Errors
    ///
    /// Transport-level failures only; store-level failures arrive as
    /// [`ShipReply::Err`].
    fn ship(&self, request: &ShipRequest) -> Result<ShipReply, WireError>;

    /// The destination, for error labels.
    fn peer(&self) -> String {
        "store".to_string()
    }
}

/// A retrying wire client for a [`StoreService`].
#[derive(Debug)]
pub struct StoreClient {
    client: Client,
}

impl StoreClient {
    /// Wraps a transport with the default store deadline/retry policy.
    #[must_use]
    pub fn new(transport: Arc<dyn Transport>) -> Self {
        StoreClient {
            client: Client::new(transport)
                .with_deadline(SHIP_DEADLINE)
                .with_retry(RetryPolicy {
                    seed: 0x5704E_u64,
                    ..RetryPolicy::default()
                }),
        }
    }

    /// Replaces the wrapped client (deadline/retry tuning).
    #[must_use]
    pub fn with_client(client: Client) -> Self {
        StoreClient { client }
    }

    /// The wrapped wire client (stats, metrics attachment).
    #[must_use]
    pub fn client(&self) -> &Client {
        &self.client
    }
}

impl ShipPort for StoreClient {
    fn ship(&self, request: &ShipRequest) -> Result<ShipReply, WireError> {
        self.client.call(request)
    }

    fn peer(&self) -> String {
        format!("store over {}", self.client.transport_kind())
    }
}

/// Errors from driving a transfer end to end.
#[derive(Debug)]
#[non_exhaustive]
pub enum ShipError {
    /// The transport failed and resumes were exhausted.
    Wire(WireError),
    /// The remote store refused the operation.
    Store(StoreError),
    /// The remote answered with an unexpected reply variant.
    Protocol {
        /// What arrived.
        detail: String,
    },
    /// The transfer kept failing across the resume budget.
    Exhausted {
        /// The object being shipped.
        path: UrlPath,
        /// Resume attempts spent.
        resumes: u32,
        /// The last underlying failure, rendered.
        last: String,
    },
}

impl fmt::Display for ShipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShipError::Wire(e) => write!(f, "transfer transport failed: {e}"),
            ShipError::Store(e) => write!(f, "remote store refused: {e}"),
            ShipError::Protocol { detail } => write!(f, "ship protocol violation: {detail}"),
            ShipError::Exhausted {
                path,
                resumes,
                last,
            } => write!(
                f,
                "shipping {path} failed after {resumes} resume(s): {last}"
            ),
        }
    }
}

impl std::error::Error for ShipError {}

impl ShipError {
    /// Whether a fresh `Begin` (resume) could plausibly succeed: wire
    /// losses and vanished staging state are resumable; quota, conflict,
    /// and codec failures are not.
    #[must_use]
    pub fn is_resumable(&self) -> bool {
        match self {
            ShipError::Wire(e) => !matches!(e.root(), WireError::Codec { .. }),
            ShipError::Store(StoreError::NoSuchTransfer { .. }) => true,
            ShipError::Store(_) | ShipError::Protocol { .. } | ShipError::Exhausted { .. } => false,
        }
    }
}

/// Transfer-pipeline metric handles, recorded into a shared registry so
/// shipping shows up on the same stats surface as the proxy and the
/// management ops.
#[derive(Debug, Clone)]
pub struct ShipMetrics {
    bytes: Arc<Counter>,
    chunks: Arc<Counter>,
    chunk_retries: Arc<Counter>,
    resumes: Arc<Counter>,
    transfers: Arc<Counter>,
    failed: Arc<Counter>,
    inflight: Arc<Gauge>,
    transfer_ns: HistogramRecorder,
}

impl ShipMetrics {
    /// Registers the shipping metric family in `registry`.
    #[must_use]
    pub fn attach(registry: &Arc<MetricsRegistry>) -> Self {
        ShipMetrics {
            bytes: registry.counter("ship_bytes_total"),
            chunks: registry.counter("ship_chunks_total"),
            chunk_retries: registry.counter("ship_chunk_retries_total"),
            resumes: registry.counter("ship_resumes_total"),
            transfers: registry.counter("ship_transfers_total"),
            failed: registry.counter("ship_failed_transfers_total"),
            inflight: registry.gauge("ship_inflight"),
            transfer_ns: registry
                .histogram_with_shards("ship_transfer_ns", 1)
                .recorder(0),
        }
    }
}

/// What one completed push looked like.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShipOutcome {
    /// The committed object.
    pub meta: ObjectMeta,
    /// Chunks actually sent.
    pub chunks_sent: u64,
    /// Chunks skipped because the receiver already had them (resume).
    pub chunks_skipped: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Whole-transfer resumes.
    pub resumes: u32,
    /// Individual chunk re-sends (wire failure or rejection).
    pub chunk_retries: u32,
}

/// Drives push and pull transfers over a [`ShipPort`].
#[derive(Debug, Default)]
pub struct Shipper {
    /// Per-chunk attempts before the whole transfer resumes (≥ 1).
    chunk_attempts: u32,
    /// Whole-transfer resume budget after connection loss.
    max_resumes: u32,
    throttle: Option<Arc<TokenBucket>>,
    metrics: Option<ShipMetrics>,
}

impl Shipper {
    /// A shipper with default bounds: 3 attempts per chunk, 8 resumes.
    #[must_use]
    pub fn new() -> Self {
        Shipper {
            chunk_attempts: 3,
            max_resumes: 8,
            throttle: None,
            metrics: None,
        }
    }

    /// Sets the per-chunk and whole-transfer retry bounds.
    #[must_use]
    pub fn with_limits(mut self, chunk_attempts: u32, max_resumes: u32) -> Self {
        self.chunk_attempts = chunk_attempts.max(1);
        self.max_resumes = max_resumes;
        self
    }

    /// Throttles transfer bandwidth through `bucket` (shared across
    /// shippers for a global cap).
    #[must_use]
    pub fn with_throttle(mut self, bucket: Arc<TokenBucket>) -> Self {
        self.throttle = Some(bucket);
        self
    }

    /// Records transfer counters/latency into `metrics`.
    #[must_use]
    pub fn with_metrics(mut self, metrics: ShipMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    fn throttle_take(&self, bytes: u64) {
        if let Some(bucket) = &self.throttle {
            bucket.take(bytes);
        }
    }

    /// Ships `body` to the remote store as `path`, resuming through
    /// connection loss and re-sending rejected chunks, until the remote
    /// store confirms a committed object with the right checksum.
    ///
    /// # Errors
    ///
    /// [`ShipError::Store`] for non-resumable remote refusals (quota,
    /// conflicts), [`ShipError::Exhausted`] when the resume budget runs
    /// out, [`ShipError::Protocol`] on nonsense replies.
    pub fn push(
        &self,
        port: &dyn ShipPort,
        path: &UrlPath,
        content: ContentId,
        version: u64,
        body: &[u8],
        overwrite: bool,
    ) -> Result<ShipOutcome, ShipError> {
        self.push_meta(
            port,
            path,
            ObjectMeta::for_body(content, body, crate::object::DEFAULT_CHUNK_SIZE, version),
            body,
            overwrite,
        )
    }

    /// [`Shipper::push`] with explicit chunk geometry.
    ///
    /// # Errors
    ///
    /// See [`Shipper::push`].
    ///
    /// # Panics
    ///
    /// If `meta` does not describe `body`.
    pub fn push_meta(
        &self,
        port: &dyn ShipPort,
        path: &UrlPath,
        meta: ObjectMeta,
        body: &[u8],
        overwrite: bool,
    ) -> Result<ShipOutcome, ShipError> {
        assert_eq!(meta.size, body.len() as u64, "meta must describe body");
        assert_eq!(meta.checksum, fnv64(body), "meta must describe body");
        let start = Instant::now();
        if let Some(m) = &self.metrics {
            m.inflight.add(1);
        }
        let mut outcome = ShipOutcome {
            meta,
            chunks_sent: 0,
            chunks_skipped: 0,
            bytes_sent: 0,
            resumes: 0,
            chunk_retries: 0,
        };
        let result = loop {
            match self.push_attempt(port, path, meta, body, overwrite, &mut outcome) {
                Ok(committed) => {
                    outcome.meta = committed;
                    break Ok(());
                }
                Err(e) if e.is_resumable() && outcome.resumes < self.max_resumes => {
                    outcome.resumes += 1;
                    if let Some(m) = &self.metrics {
                        m.resumes.inc();
                    }
                }
                Err(e) if e.is_resumable() => {
                    break Err(ShipError::Exhausted {
                        path: path.clone(),
                        resumes: outcome.resumes,
                        last: e.to_string(),
                    });
                }
                Err(e) => break Err(e),
            }
        };
        if let Some(m) = &self.metrics {
            m.inflight.sub(1);
            m.transfer_ns
                .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
            match &result {
                Ok(()) => m.transfers.inc(),
                Err(_) => m.failed.inc(),
            }
        }
        result.map(|()| outcome)
    }

    /// One full pass: begin (resume), send missing chunks, commit.
    fn push_attempt(
        &self,
        port: &dyn ShipPort,
        path: &UrlPath,
        meta: ObjectMeta,
        body: &[u8],
        overwrite: bool,
        outcome: &mut ShipOutcome,
    ) -> Result<ObjectMeta, ShipError> {
        let begun = port
            .ship(&ShipRequest::Begin {
                path: path.clone(),
                meta,
                overwrite,
            })
            .map_err(ShipError::Wire)?;
        let (transfer, have) = match begun {
            ShipReply::Begun { transfer, have } => (transfer, have),
            ShipReply::Err(e) => return Err(ShipError::Store(e)),
            other => {
                return Err(ShipError::Protocol {
                    detail: format!("Begin answered {other:?} by {}", port.peer()),
                })
            }
        };
        let have: std::collections::HashSet<u32> = have.into_iter().collect();
        for index in 0..meta.chunk_count() {
            if have.contains(&index) {
                outcome.chunks_skipped += 1;
                continue;
            }
            let range = meta.chunk_range(index).expect("index in range");
            let chunk = &body[range];
            self.send_chunk(port, path, transfer, index, chunk, outcome)?;
        }
        let committed = port
            .ship(&ShipRequest::Commit {
                transfer,
                path: path.clone(),
                checksum: meta.checksum,
            })
            .map_err(ShipError::Wire)?;
        match committed {
            ShipReply::Committed(m) => Ok(m),
            ShipReply::Err(e) => Err(ShipError::Store(e)),
            other => Err(ShipError::Protocol {
                detail: format!("Commit answered {other:?} by {}", port.peer()),
            }),
        }
    }

    /// Sends one chunk with bounded re-sends for wire failures and
    /// checksum rejections.
    fn send_chunk(
        &self,
        port: &dyn ShipPort,
        path: &UrlPath,
        transfer: u64,
        index: u32,
        chunk: &[u8],
        outcome: &mut ShipOutcome,
    ) -> Result<(), ShipError> {
        let checksum = fnv64(chunk);
        let request = ShipRequest::Chunk {
            transfer,
            index,
            data: hex_encode(chunk),
            checksum,
        };
        let mut last: Option<ShipError> = None;
        for attempt in 0..self.chunk_attempts {
            if attempt > 0 {
                outcome.chunk_retries += 1;
                if let Some(m) = &self.metrics {
                    m.chunk_retries.inc();
                }
            }
            self.throttle_take(chunk.len() as u64);
            match port.ship(&request) {
                Ok(ShipReply::ChunkOk) => {
                    outcome.chunks_sent += 1;
                    outcome.bytes_sent += chunk.len() as u64;
                    if let Some(m) = &self.metrics {
                        m.chunks.inc();
                        m.bytes.add(chunk.len() as u64);
                    }
                    return Ok(());
                }
                Ok(ShipReply::Err(e @ StoreError::ChunkRejected { .. })) => {
                    // Poisoned in flight: re-send the honest bytes.
                    last = Some(ShipError::Store(e));
                }
                Ok(ShipReply::Err(e)) => return Err(ShipError::Store(e)),
                Ok(other) => {
                    return Err(ShipError::Protocol {
                        detail: format!("Chunk answered {other:?} by {}", port.peer()),
                    })
                }
                Err(wire) => {
                    let e = ShipError::Wire(wire);
                    if !e.is_resumable() {
                        return Err(e);
                    }
                    last = Some(e);
                }
            }
        }
        // Out of per-chunk attempts: surface the last failure. If it is
        // resumable the outer loop re-begins and skips staged progress.
        Err(last.unwrap_or(ShipError::Protocol {
            detail: format!("chunk {index} of {path} ran out of attempts"),
        }))
    }

    /// Pulls a committed object from the remote store, verifying every
    /// chunk and the whole body. Corrupted chunks are re-fetched.
    ///
    /// # Errors
    ///
    /// [`ShipError::Store`] (e.g. not found), [`ShipError::Wire`] /
    /// [`ShipError::Exhausted`] on persistent transport failure.
    pub fn pull(
        &self,
        port: &dyn ShipPort,
        path: &UrlPath,
    ) -> Result<(ObjectMeta, Vec<u8>), ShipError> {
        let meta = match port
            .ship(&ShipRequest::Meta { path: path.clone() })
            .map_err(ShipError::Wire)?
        {
            ShipReply::MetaIs(m) => m,
            ShipReply::Err(e) => return Err(ShipError::Store(e)),
            other => {
                return Err(ShipError::Protocol {
                    detail: format!("Meta answered {other:?} by {}", port.peer()),
                })
            }
        };
        let mut body = Vec::with_capacity(usize::try_from(meta.size).unwrap_or(0));
        for index in 0..meta.chunk_count() {
            body.extend_from_slice(&self.fetch_chunk(port, path, &meta, index)?);
        }
        let got = fnv64(&body);
        if got != meta.checksum {
            return Err(ShipError::Store(StoreError::ChecksumMismatch {
                path: path.clone(),
                expected: meta.checksum,
                got,
            }));
        }
        Ok((meta, body))
    }

    fn fetch_chunk(
        &self,
        port: &dyn ShipPort,
        path: &UrlPath,
        meta: &ObjectMeta,
        index: u32,
    ) -> Result<Vec<u8>, ShipError> {
        let expected_len = meta.chunk_len(index).expect("index in range") as usize;
        let request = ShipRequest::Fetch {
            path: path.clone(),
            index,
        };
        let mut last: Option<ShipError> = None;
        let attempts = self.chunk_attempts.max(1) + self.max_resumes;
        for attempt in 0..attempts {
            if attempt > 0 {
                if let Some(m) = &self.metrics {
                    m.chunk_retries.inc();
                }
            }
            self.throttle_take(expected_len as u64);
            match port.ship(&request) {
                Ok(ShipReply::ChunkData { data, checksum }) => {
                    let bytes = match hex_decode(&data) {
                        Ok(b) => b,
                        Err(detail) => {
                            last = Some(ShipError::Protocol { detail });
                            continue;
                        }
                    };
                    if bytes.len() != expected_len || fnv64(&bytes) != checksum {
                        // Corrupted in flight: re-fetch.
                        last = Some(ShipError::Store(StoreError::ChunkRejected {
                            path: path.clone(),
                            index,
                            expected: checksum,
                            got: fnv64(&bytes),
                        }));
                        continue;
                    }
                    if let Some(m) = &self.metrics {
                        m.chunks.inc();
                        m.bytes.add(bytes.len() as u64);
                    }
                    return Ok(bytes);
                }
                Ok(ShipReply::Err(e)) => return Err(ShipError::Store(e)),
                Ok(other) => {
                    return Err(ShipError::Protocol {
                        detail: format!("Fetch answered {other:?} by {}", port.peer()),
                    })
                }
                Err(wire) => {
                    let e = ShipError::Wire(wire);
                    if !e.is_resumable() {
                        return Err(e);
                    }
                    last = Some(e);
                }
            }
        }
        Err(ShipError::Exhausted {
            path: path.clone(),
            resumes: attempts,
            last: last.map(|e| e.to_string()).unwrap_or_default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::synthetic_body;
    use cpms_model::NodeId;
    use cpms_wire::{FaultPlan, FaultyTransport, InProcServer};

    fn p(s: &str) -> UrlPath {
        s.parse().unwrap()
    }

    fn spawn_store(node: u16, capacity: u64) -> (Arc<ContentStore>, StoreClient) {
        let store = Arc::new(ContentStore::in_memory(NodeId(node), capacity));
        let (transport, server) = InProcServer::spawn_named(
            StoreService::new(Arc::clone(&store)),
            &format!("store-{node}"),
        );
        // Leak the server handle: test stores live for the test body.
        std::mem::forget(server);
        (store, StoreClient::new(Arc::new(transport)))
    }

    #[test]
    fn push_and_pull_roundtrip() {
        let (store, client) = spawn_store(0, 1 << 20);
        let body = synthetic_body(ContentId(1), 50_000);
        let shipper = Shipper::new();
        let outcome = shipper
            .push(&client, &p("/obj"), ContentId(1), 0, &body, false)
            .unwrap();
        assert_eq!(outcome.meta.size, 50_000);
        assert_eq!(outcome.bytes_sent, 50_000);
        assert_eq!(outcome.resumes, 0);
        assert_eq!(store.read(&p("/obj")).unwrap(), body);

        let (meta, pulled) = shipper.pull(&client, &p("/obj")).unwrap();
        assert_eq!(meta, outcome.meta);
        assert_eq!(pulled, body);

        // Idempotent re-push sends nothing.
        let again = shipper
            .push(&client, &p("/obj"), ContentId(1), 0, &body, false)
            .unwrap();
        assert_eq!(again.chunks_sent, 0);
        assert_eq!(again.chunks_skipped, outcome.chunks_sent);
    }

    #[test]
    fn push_survives_lossy_transport() {
        let store = Arc::new(ContentStore::in_memory(NodeId(0), 1 << 20));
        let (transport, server) =
            InProcServer::spawn_named(StoreService::new(Arc::clone(&store)), "store-lossy");
        std::mem::forget(server);
        let lossy = FaultyTransport::new(Arc::new(transport), FaultPlan::lossy(42, 0.15));
        let client = StoreClient::new(Arc::new(lossy));
        let body = synthetic_body(ContentId(2), 40_000);
        let outcome = Shipper::new()
            .push(&client, &p("/lossy"), ContentId(2), 0, &body, false)
            .unwrap();
        assert_eq!(store.read(&p("/lossy")).unwrap(), body);
        assert_eq!(store.stats().rejected_chunks, 0, "loss ≠ corruption");
        // Committed exactly once despite duplicates/replays.
        assert_eq!(store.stats().objects, 1);
        let _ = outcome;
    }

    #[test]
    fn quota_refusal_is_not_resumable() {
        let (_store, client) = spawn_store(0, 100);
        let body = synthetic_body(ContentId(3), 500);
        let err = Shipper::new()
            .push(&client, &p("/big"), ContentId(3), 0, &body, false)
            .unwrap_err();
        assert!(matches!(err, ShipError::Store(StoreError::DiskFull { .. })));
    }

    #[test]
    fn metrics_and_throttle_observe_transfer() {
        let (_store, client) = spawn_store(0, 1 << 20);
        let registry = Arc::new(MetricsRegistry::new());
        let shipper = Shipper::new()
            .with_metrics(ShipMetrics::attach(&registry))
            .with_throttle(Arc::new(TokenBucket::new(10 << 20, 1 << 20)));
        let body = synthetic_body(ContentId(4), 20_000);
        shipper
            .push(&client, &p("/m"), ContentId(4), 0, &body, false)
            .unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("ship_bytes_total"), Some(20_000));
        assert_eq!(snap.counter("ship_transfers_total"), Some(1));
        assert_eq!(snap.gauge("ship_inflight"), Some(0));
        assert_eq!(snap.histogram("ship_transfer_ns").unwrap().count, 1);
    }
}
