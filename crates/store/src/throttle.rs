//! Token-bucket bandwidth throttling for content transfers.
//!
//! Shipping a replica must not starve the request path (the paper's
//! replication cost is paid in the background); a [`TokenBucket`] caps
//! the byte rate a [`Shipper`](crate::ship::Shipper) pushes or pulls.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A classic token bucket: `rate` bytes/second refill, `burst` bytes of
/// depth. [`TokenBucket::take`] blocks the calling transfer thread until
/// the requested bytes are available. Interior-locked, shared freely
/// across transfer threads (a cluster-wide egress cap).
#[derive(Debug)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    state: Mutex<BucketState>,
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket refilling at `bytes_per_sec` with `burst_bytes` of depth.
    ///
    /// # Panics
    ///
    /// If either parameter is zero.
    #[must_use]
    pub fn new(bytes_per_sec: u64, burst_bytes: u64) -> Self {
        assert!(bytes_per_sec > 0, "rate must be positive");
        assert!(burst_bytes > 0, "burst must be positive");
        TokenBucket {
            rate: bytes_per_sec as f64,
            burst: burst_bytes as f64,
            state: Mutex::new(BucketState {
                tokens: burst_bytes as f64,
                last: Instant::now(),
            }),
        }
    }

    /// The configured rate in bytes per second.
    #[must_use]
    pub fn rate(&self) -> u64 {
        self.rate as u64
    }

    /// Blocks until `bytes` tokens are available, then spends them.
    /// Requests larger than the burst are clamped to the burst (they
    /// would otherwise never be satisfiable).
    pub fn take(&self, bytes: u64) {
        let need = (bytes as f64).min(self.burst);
        loop {
            let wait = {
                let mut state = self.state.lock().expect("bucket lock never poisoned");
                let now = Instant::now();
                let elapsed = now.duration_since(state.last).as_secs_f64();
                state.tokens = (state.tokens + elapsed * self.rate).min(self.burst);
                state.last = now;
                if state.tokens >= need {
                    state.tokens -= need;
                    return;
                }
                (need - state.tokens) / self.rate
            };
            std::thread::sleep(Duration::from_secs_f64(wait.min(0.050)));
        }
    }

    /// Tokens currently available (observability).
    #[must_use]
    pub fn available(&self) -> u64 {
        let mut state = self.state.lock().expect("bucket lock never poisoned");
        let now = Instant::now();
        let elapsed = now.duration_since(state.last).as_secs_f64();
        state.tokens = (state.tokens + elapsed * self.rate).min(self.burst);
        state.last = now;
        state.tokens as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_spends_immediately() {
        let bucket = TokenBucket::new(1_000_000, 10_000);
        let start = Instant::now();
        bucket.take(10_000);
        assert!(start.elapsed() < Duration::from_millis(50), "burst is free");
    }

    #[test]
    fn sustained_rate_is_enforced() {
        // 100 KB/s, tiny burst: taking 10 KB beyond the burst must take
        // roughly 100ms.
        let bucket = TokenBucket::new(100_000, 1_000);
        bucket.take(1_000); // drain the burst
        let start = Instant::now();
        for _ in 0..10 {
            bucket.take(1_000);
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(60),
            "throttled: {elapsed:?}"
        );
    }

    #[test]
    fn oversized_take_clamps_to_burst() {
        let bucket = TokenBucket::new(1_000_000, 1_000);
        let start = Instant::now();
        bucket.take(1 << 30); // would never fit; clamped to the burst
        assert!(start.elapsed() < Duration::from_secs(1));
    }
}
