//! The per-node content repository.
//!
//! A [`ContentStore`] holds one node's object bodies plus a manifest of
//! [`ObjectMeta`] records, with quota accounting and an atomic
//! **stage → commit → gc** ingest lifecycle:
//!
//! - [`ContentStore::begin`] opens (or resumes) a staged transfer and
//!   reports which chunks are already present, so an interrupted ship
//!   restarts where it left off instead of from byte zero;
//! - [`ContentStore::stage_chunk`] verifies each chunk's checksum before
//!   accepting it — a poisoned chunk is rejected, counted, and must be
//!   re-sent;
//! - [`ContentStore::commit`] assembles the chunks, verifies the
//!   whole-object checksum, and only then makes the object visible in the
//!   manifest (and durable, for disk-backed stores). Until commit, the
//!   object does not exist: readers never observe a partial body.
//! - [`ContentStore::gc`] sweeps staged transfers that made no progress
//!   since the previous sweep (abandoned mid-flight ships).
//!
//! Two media: `in_memory` (tests, in-process clusters) and `open` (a real
//! directory: object files plus a `manifest.json` rewritten atomically
//! via tmp-file + rename).

use crate::object::{fnv64, ObjectMeta, DEFAULT_CHUNK_SIZE};
use cpms_model::{ContentId, NodeId, UrlPath};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Errors from store and shipping operations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum StoreError {
    /// No committed object at the path.
    NotFound {
        /// The missing path.
        path: UrlPath,
    },
    /// Committing/staging would exceed the node's quota.
    DiskFull {
        /// The path being stored.
        path: UrlPath,
        /// Bytes that would be needed.
        needed: u64,
        /// Bytes actually free.
        free: u64,
    },
    /// An object already exists at the path (`overwrite = false`) with
    /// different content.
    AlreadyExists {
        /// The conflicting path.
        path: UrlPath,
    },
    /// A whole-object checksum did not match its manifest/announcement.
    ChecksumMismatch {
        /// The object's path.
        path: UrlPath,
        /// The checksum that was promised.
        expected: u64,
        /// The checksum actually computed over the bytes.
        got: u64,
    },
    /// A shipped chunk failed its per-chunk checksum and was rejected.
    ChunkRejected {
        /// The object's path.
        path: UrlPath,
        /// Which chunk.
        index: u32,
        /// The checksum the sender announced.
        expected: u64,
        /// The checksum of the bytes that arrived.
        got: u64,
    },
    /// A chunk was malformed (bad index, wrong length, undecodable hex).
    BadChunk {
        /// The object's path.
        path: UrlPath,
        /// Which chunk.
        index: u32,
        /// What was wrong.
        detail: String,
    },
    /// Commit was attempted before every chunk arrived.
    Incomplete {
        /// The object's path.
        path: UrlPath,
        /// Chunks still missing.
        missing: u64,
    },
    /// No staged transfer with that id (expired, swept, or never begun).
    NoSuchTransfer {
        /// The unknown transfer id.
        transfer: u64,
    },
    /// A filesystem failure on a disk-backed store.
    Io {
        /// The OS error, rendered.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound { path } => write!(f, "no object at {path}"),
            StoreError::DiskFull { path, needed, free } => {
                write!(
                    f,
                    "quota exceeded staging {path}: need {needed}B, {free}B free"
                )
            }
            StoreError::AlreadyExists { path } => write!(f, "object already exists at {path}"),
            StoreError::ChecksumMismatch {
                path,
                expected,
                got,
            } => write!(
                f,
                "checksum mismatch on {path}: expected {expected:#018x}, got {got:#018x}"
            ),
            StoreError::ChunkRejected {
                path,
                index,
                expected,
                got,
            } => write!(
                f,
                "chunk {index} of {path} rejected: expected {expected:#018x}, got {got:#018x}"
            ),
            StoreError::BadChunk {
                path,
                index,
                detail,
            } => write!(f, "bad chunk {index} of {path}: {detail}"),
            StoreError::Incomplete { path, missing } => {
                write!(f, "commit of {path} with {missing} chunk(s) missing")
            }
            StoreError::NoSuchTransfer { transfer } => {
                write!(f, "no staged transfer {transfer}")
            }
            StoreError::Io { detail } => write!(f, "store I/O failed: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl StoreError {
    fn io(e: &std::io::Error) -> Self {
        StoreError::Io {
            detail: e.to_string(),
        }
    }
}

/// Point-in-time store accounting (the console `store` command's row).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// The node this store belongs to.
    pub node: NodeId,
    /// Committed objects.
    pub objects: u64,
    /// Total chunks across committed objects.
    pub chunks: u64,
    /// Bytes committed.
    pub committed_bytes: u64,
    /// Quota in bytes.
    pub capacity_bytes: u64,
    /// In-flight staged transfers.
    pub staged_transfers: u64,
    /// Bytes reserved by staged transfers.
    pub staged_bytes: u64,
    /// Lifetime committed objects (including overwritten ones).
    pub committed_total: u64,
    /// Transfers that resumed from partially staged state.
    pub resumed_transfers: u64,
    /// Chunks rejected for checksum mismatch.
    pub rejected_chunks: u64,
    /// Whole-object verification failures (commit or audit).
    pub verify_failures: u64,
    /// Staged transfers swept by gc.
    pub gc_transfers: u64,
    /// Bytes released by gc.
    pub gc_bytes: u64,
    /// Whether the store is disk-backed (survives restart).
    pub durable: bool,
}

impl StoreStats {
    /// Bytes free under the quota (committed + staged reservations).
    #[must_use]
    pub fn free_bytes(&self) -> u64 {
        self.capacity_bytes
            .saturating_sub(self.committed_bytes + self.staged_bytes)
    }
}

/// Where object bodies live.
#[derive(Debug)]
enum Medium {
    Memory(HashMap<UrlPath, Vec<u8>>),
    Disk { root: PathBuf },
}

impl Medium {
    fn object_file(root: &Path, path: &UrlPath) -> PathBuf {
        // Hex of the URL path: collision-free, filesystem-safe, reversible.
        root.join("objects")
            .join(crate::object::hex_encode(path.as_str().as_bytes()))
    }

    fn read(&self, path: &UrlPath) -> Result<Vec<u8>, StoreError> {
        match self {
            Medium::Memory(map) => map
                .get(path)
                .cloned()
                .ok_or_else(|| StoreError::NotFound { path: path.clone() }),
            Medium::Disk { root } => {
                std::fs::read(Self::object_file(root, path)).map_err(|e| match e.kind() {
                    std::io::ErrorKind::NotFound => StoreError::NotFound { path: path.clone() },
                    _ => StoreError::io(&e),
                })
            }
        }
    }

    fn write(&mut self, path: &UrlPath, body: &[u8]) -> Result<(), StoreError> {
        match self {
            Medium::Memory(map) => {
                map.insert(path.clone(), body.to_vec());
                Ok(())
            }
            Medium::Disk { root } => {
                let file = Self::object_file(root, path);
                let tmp = file.with_extension("tmp");
                std::fs::write(&tmp, body).map_err(|e| StoreError::io(&e))?;
                std::fs::rename(&tmp, &file).map_err(|e| StoreError::io(&e))
            }
        }
    }

    fn remove(&mut self, path: &UrlPath) -> Result<(), StoreError> {
        match self {
            Medium::Memory(map) => {
                map.remove(path);
                Ok(())
            }
            Medium::Disk { root } => match std::fs::remove_file(Self::object_file(root, path)) {
                Ok(()) => Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
                Err(e) => Err(StoreError::io(&e)),
            },
        }
    }

    fn rename(&mut self, from: &UrlPath, to: &UrlPath) -> Result<(), StoreError> {
        match self {
            Medium::Memory(map) => {
                if let Some(body) = map.remove(from) {
                    map.insert(to.clone(), body);
                }
                Ok(())
            }
            Medium::Disk { root } => {
                match std::fs::rename(Self::object_file(root, from), Self::object_file(root, to)) {
                    Ok(()) => Ok(()),
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
                    Err(e) => Err(StoreError::io(&e)),
                }
            }
        }
    }

    fn durable(&self) -> bool {
        matches!(self, Medium::Disk { .. })
    }
}

/// One in-flight staged transfer.
#[derive(Debug)]
struct Staged {
    path: UrlPath,
    meta: ObjectMeta,
    chunks: Vec<Option<Vec<u8>>>,
    /// Bytes reserved against the quota (the full object size, reserved
    /// at `begin` so concurrent ships cannot jointly overshoot).
    reserved: u64,
    overwrite: bool,
    /// Progress flag for the two-phase gc: cleared by each sweep, set by
    /// any chunk/commit activity. A transfer idle across two sweeps is
    /// abandoned.
    touched: bool,
}

impl Staged {
    fn received(&self) -> u64 {
        self.chunks.iter().flatten().map(|c| c.len() as u64).sum()
    }

    fn missing(&self) -> u64 {
        self.chunks.iter().filter(|c| c.is_none()).count() as u64
    }
}

#[derive(Debug)]
struct Inner {
    medium: Medium,
    manifest: BTreeMap<UrlPath, ObjectMeta>,
    staged: HashMap<u64, Staged>,
    next_transfer: u64,
    capacity: u64,
    committed_bytes: u64,
    staged_bytes: u64,
    committed_total: u64,
    resumed_transfers: u64,
    rejected_chunks: u64,
    verify_failures: u64,
    gc_transfers: u64,
    gc_bytes: u64,
}

impl Inner {
    fn free(&self) -> u64 {
        self.capacity
            .saturating_sub(self.committed_bytes + self.staged_bytes)
    }

    fn persist_manifest(&self) -> Result<(), StoreError> {
        let Medium::Disk { root } = &self.medium else {
            return Ok(());
        };
        let records: Vec<(UrlPath, ObjectMeta)> =
            self.manifest.iter().map(|(p, m)| (p.clone(), *m)).collect();
        let json = serde_json::to_string(&records).expect("manifest always serializes");
        let file = root.join("manifest.json");
        let tmp = root.join("manifest.json.tmp");
        std::fs::write(&tmp, json).map_err(|e| StoreError::io(&e))?;
        std::fs::rename(&tmp, &file).map_err(|e| StoreError::io(&e))
    }

    /// Installs a fully verified body as the committed object at `path`.
    /// The single place committed state changes on ingest: callers have
    /// already verified the checksum.
    fn install(&mut self, path: &UrlPath, meta: ObjectMeta, body: &[u8]) -> Result<(), StoreError> {
        let replaced = self.manifest.get(path).map(|m| m.size).unwrap_or(0);
        self.medium.write(path, body)?;
        self.manifest.insert(path.clone(), meta);
        self.committed_bytes = self.committed_bytes - replaced + meta.size;
        self.committed_total += 1;
        self.persist_manifest()
    }
}

/// One node's content repository. Interior-locked: shared freely between
/// a broker service thread and an origin server.
#[derive(Debug)]
pub struct ContentStore {
    node: NodeId,
    inner: Mutex<Inner>,
}

impl ContentStore {
    /// An in-memory store for `node` with a byte quota.
    #[must_use]
    pub fn in_memory(node: NodeId, capacity: u64) -> Self {
        ContentStore {
            node,
            inner: Mutex::new(Inner {
                medium: Medium::Memory(HashMap::new()),
                manifest: BTreeMap::new(),
                staged: HashMap::new(),
                next_transfer: 1,
                capacity,
                committed_bytes: 0,
                staged_bytes: 0,
                committed_total: 0,
                resumed_transfers: 0,
                rejected_chunks: 0,
                verify_failures: 0,
                gc_transfers: 0,
                gc_bytes: 0,
            }),
        }
    }

    /// Opens (or creates) a disk-backed store rooted at `root`. Reloads
    /// the manifest if present; manifest records whose object file is
    /// missing or truncated are dropped (crash between body write and
    /// manifest rewrite loses at most the manifest record, never serves
    /// a partial body).
    ///
    /// # Errors
    ///
    /// Filesystem failures creating the layout or reading the manifest.
    pub fn open(node: NodeId, root: impl Into<PathBuf>, capacity: u64) -> Result<Self, StoreError> {
        let root = root.into();
        std::fs::create_dir_all(root.join("objects")).map_err(|e| StoreError::io(&e))?;
        let mut manifest = BTreeMap::new();
        let mut committed_bytes = 0_u64;
        let manifest_file = root.join("manifest.json");
        if manifest_file.exists() {
            let json = std::fs::read_to_string(&manifest_file).map_err(|e| StoreError::io(&e))?;
            let records: Vec<(UrlPath, ObjectMeta)> =
                serde_json::from_str(&json).map_err(|e| StoreError::Io {
                    detail: format!("corrupt manifest: {e}"),
                })?;
            for (path, meta) in records {
                let ok = std::fs::metadata(Medium::object_file(&root, &path))
                    .map(|m| m.len() == meta.size)
                    .unwrap_or(false);
                if ok {
                    committed_bytes += meta.size;
                    manifest.insert(path, meta);
                }
            }
        }
        let store = ContentStore {
            node,
            inner: Mutex::new(Inner {
                medium: Medium::Disk { root },
                manifest,
                staged: HashMap::new(),
                next_transfer: 1,
                capacity,
                committed_bytes,
                staged_bytes: 0,
                committed_total: 0,
                resumed_transfers: 0,
                rejected_chunks: 0,
                verify_failures: 0,
                gc_transfers: 0,
                gc_bytes: 0,
            }),
        };
        store.lock().persist_manifest()?;
        Ok(store)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .expect("content store lock never poisoned")
    }

    /// The node this store belongs to.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Opens a staged transfer for `path` described by `meta`, returning
    /// `(transfer_id, have)` where `have` lists chunk indices already
    /// staged. Three idempotent cases:
    ///
    /// - the identical object is already **committed** → transfer id `0`
    ///   (the committed sentinel) with every chunk reported present, so a
    ///   re-ship after a lost commit-ack sends nothing;
    /// - a staged transfer for the same path and checksum exists →
    ///   **resume**: the same transfer id and its progress are returned;
    /// - a staged transfer for the same path but different content exists
    ///   → it is aborted and a fresh transfer opened.
    ///
    /// # Errors
    ///
    /// [`StoreError::AlreadyExists`] for a different committed object
    /// without `overwrite`; [`StoreError::DiskFull`] if the reservation
    /// does not fit.
    pub fn begin(
        &self,
        path: &UrlPath,
        meta: ObjectMeta,
        overwrite: bool,
    ) -> Result<(u64, Vec<u32>), StoreError> {
        let mut inner = self.lock();
        if let Some(existing) = inner.manifest.get(path) {
            if existing.checksum == meta.checksum && existing.size == meta.size {
                return Ok((0, (0..meta.chunk_count()).collect()));
            }
            if !overwrite {
                return Err(StoreError::AlreadyExists { path: path.clone() });
            }
        }
        if let Some((&id, staged)) = inner.staged.iter().find(|(_, s)| &s.path == path) {
            if staged.meta.checksum == meta.checksum && staged.meta.size == meta.size {
                let have: Vec<u32> = staged
                    .chunks
                    .iter()
                    .enumerate()
                    .filter_map(|(i, c)| c.as_ref().map(|_| i as u32))
                    .collect();
                let resumed = !have.is_empty();
                let staged = inner.staged.get_mut(&id).expect("just found");
                staged.touched = true;
                staged.overwrite = overwrite;
                if resumed {
                    inner.resumed_transfers += 1;
                }
                return Ok((id, have));
            }
            let stale = inner.staged.remove(&id).expect("just found");
            inner.staged_bytes -= stale.reserved;
        }
        let replaced = if overwrite {
            inner.manifest.get(path).map(|m| m.size).unwrap_or(0)
        } else {
            0
        };
        let free = inner.free() + replaced;
        if meta.size > free {
            return Err(StoreError::DiskFull {
                path: path.clone(),
                needed: meta.size,
                free,
            });
        }
        let id = inner.next_transfer;
        inner.next_transfer += 1;
        inner.staged_bytes += meta.size;
        inner.staged.insert(
            id,
            Staged {
                path: path.clone(),
                meta,
                chunks: vec![None; meta.chunk_count() as usize],
                reserved: meta.size,
                overwrite,
                touched: true,
            },
        );
        Ok((id, Vec::new()))
    }

    /// Stages one chunk of an open transfer after verifying its checksum
    /// and length. Idempotent for re-sent chunks that match what is
    /// already staged.
    ///
    /// # Errors
    ///
    /// [`StoreError::ChunkRejected`] on checksum mismatch (the chunk is
    /// discarded and counted — the sender must re-send);
    /// [`StoreError::BadChunk`] on bad index/length;
    /// [`StoreError::NoSuchTransfer`] if the transfer is gone (the sender
    /// should re-`begin` and resume).
    pub fn stage_chunk(
        &self,
        transfer: u64,
        index: u32,
        data: &[u8],
        checksum: u64,
    ) -> Result<(), StoreError> {
        let mut inner = self.lock();
        let staged = inner
            .staged
            .get_mut(&transfer)
            .ok_or(StoreError::NoSuchTransfer { transfer })?;
        staged.touched = true;
        let path = staged.path.clone();
        let Some(expected_len) = staged.meta.chunk_len(index) else {
            return Err(StoreError::BadChunk {
                path,
                index,
                detail: format!(
                    "index out of range (object has {})",
                    staged.meta.chunk_count()
                ),
            });
        };
        if data.len() != expected_len as usize {
            return Err(StoreError::BadChunk {
                path,
                index,
                detail: format!("length {} != expected {expected_len}", data.len()),
            });
        }
        let got = fnv64(data);
        if got != checksum {
            inner.rejected_chunks += 1;
            return Err(StoreError::ChunkRejected {
                path,
                index,
                expected: checksum,
                got,
            });
        }
        let staged = inner.staged.get_mut(&transfer).expect("still held");
        staged.chunks[index as usize] = Some(data.to_vec());
        Ok(())
    }

    /// Commits a staged transfer: assembles the chunks, verifies the
    /// whole-object checksum against both the staged meta and the
    /// caller-announced `checksum`, and atomically installs the object.
    /// Idempotent: committing a transfer that already committed (id `0`
    /// sentinel or a re-sent commit after a lost ack) succeeds if the
    /// committed object matches `checksum`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Incomplete`] with the missing-chunk count,
    /// [`StoreError::ChecksumMismatch`] (the staged transfer is kept so
    /// poisoned chunks can be re-sent — every staged chunk passed its own
    /// check, so this means the announcement itself was wrong),
    /// [`StoreError::NoSuchTransfer`] for an unknown id with no matching
    /// committed object.
    pub fn commit(
        &self,
        transfer: u64,
        path: &UrlPath,
        checksum: u64,
    ) -> Result<ObjectMeta, StoreError> {
        let mut inner = self.lock();
        let already = inner.manifest.get(path).copied();
        let Some(staged) = inner.staged.get_mut(&transfer) else {
            // Lost-ack replay or committed-sentinel commit.
            return match already {
                Some(meta) if meta.checksum == checksum => Ok(meta),
                _ => Err(StoreError::NoSuchTransfer { transfer }),
            };
        };
        if &staged.path != path {
            return Err(StoreError::BadChunk {
                path: path.clone(),
                index: 0,
                detail: format!("transfer {transfer} stages {}, not {path}", staged.path),
            });
        }
        staged.touched = true;
        let missing = staged.missing();
        if missing > 0 {
            return Err(StoreError::Incomplete {
                path: path.clone(),
                missing,
            });
        }
        if let Some(existing) = already {
            if !staged.overwrite {
                // The object appeared (e.g. a concurrent ship won) after
                // this transfer began; identical content is fine.
                if existing.checksum == staged.meta.checksum {
                    let reserved = staged.reserved;
                    inner.staged.remove(&transfer);
                    inner.staged_bytes -= reserved;
                    return Ok(existing);
                }
                return Err(StoreError::AlreadyExists { path: path.clone() });
            }
        }
        let body: Vec<u8> = staged
            .chunks
            .iter()
            .flatten()
            .flat_map(|c| c.iter().copied())
            .collect();
        let got = fnv64(&body);
        if got != checksum || got != staged.meta.checksum {
            inner.verify_failures += 1;
            return Err(StoreError::ChecksumMismatch {
                path: path.clone(),
                expected: checksum,
                got,
            });
        }
        let staged = inner.staged.remove(&transfer).expect("still held");
        inner.staged_bytes -= staged.reserved;
        inner.install(path, staged.meta, &body)?;
        Ok(staged.meta)
    }

    /// Drops a staged transfer, releasing its reservation. Returns whether
    /// anything was aborted.
    pub fn abort(&self, transfer: u64) -> bool {
        let mut inner = self.lock();
        match inner.staged.remove(&transfer) {
            Some(s) => {
                inner.staged_bytes -= s.reserved;
                true
            }
            None => false,
        }
    }

    /// Stores a whole body locally in one step (the local fast path:
    /// publish on the same process, seeding tests). Same quota and
    /// overwrite rules as the staged path.
    ///
    /// # Errors
    ///
    /// [`StoreError::AlreadyExists`] / [`StoreError::DiskFull`] / I/O.
    pub fn put(
        &self,
        path: &UrlPath,
        content: ContentId,
        version: u64,
        body: &[u8],
        overwrite: bool,
    ) -> Result<ObjectMeta, StoreError> {
        let meta = ObjectMeta::for_body(content, body, DEFAULT_CHUNK_SIZE, version);
        let mut inner = self.lock();
        let replaced = match inner.manifest.get(path) {
            Some(m) if !overwrite => {
                if m.checksum == meta.checksum && m.size == meta.size {
                    return Ok(*m);
                }
                return Err(StoreError::AlreadyExists { path: path.clone() });
            }
            Some(m) => m.size,
            None => 0,
        };
        let free = inner.free() + replaced;
        if meta.size > free {
            return Err(StoreError::DiskFull {
                path: path.clone(),
                needed: meta.size,
                free,
            });
        }
        inner.install(path, meta, body)?;
        Ok(meta)
    }

    /// Reads a committed object's body.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] / I/O.
    pub fn read(&self, path: &UrlPath) -> Result<Vec<u8>, StoreError> {
        let inner = self.lock();
        if !inner.manifest.contains_key(path) {
            return Err(StoreError::NotFound { path: path.clone() });
        }
        inner.medium.read(path)
    }

    /// Reads one chunk of a committed object, returning the bytes and
    /// their FNV checksum (the serving half of a pull-style fetch).
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] / [`StoreError::BadChunk`] / I/O.
    pub fn read_chunk(&self, path: &UrlPath, index: u32) -> Result<(Vec<u8>, u64), StoreError> {
        let inner = self.lock();
        let meta = inner
            .manifest
            .get(path)
            .ok_or_else(|| StoreError::NotFound { path: path.clone() })?;
        let range = meta
            .chunk_range(index)
            .ok_or_else(|| StoreError::BadChunk {
                path: path.clone(),
                index,
                detail: format!("index out of range (object has {})", meta.chunk_count()),
            })?;
        let body = inner.medium.read(path)?;
        let chunk = body
            .get(range)
            .ok_or_else(|| StoreError::Io {
                detail: "object shorter than manifest size".to_string(),
            })?
            .to_vec();
        let sum = fnv64(&chunk);
        Ok((chunk, sum))
    }

    /// The manifest record for `path`, if committed.
    #[must_use]
    pub fn meta(&self, path: &UrlPath) -> Option<ObjectMeta> {
        self.lock().manifest.get(path).copied()
    }

    /// Whether a committed object exists at `path`.
    #[must_use]
    pub fn contains(&self, path: &UrlPath) -> bool {
        self.lock().manifest.contains_key(path)
    }

    /// Every committed object, sorted by path (the `Inventory` RPC body).
    #[must_use]
    pub fn inventory(&self) -> Vec<(UrlPath, ObjectMeta)> {
        self.lock()
            .manifest
            .iter()
            .map(|(p, m)| (p.clone(), *m))
            .collect()
    }

    /// Deletes a committed object.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] / I/O.
    pub fn delete(&self, path: &UrlPath) -> Result<ObjectMeta, StoreError> {
        let mut inner = self.lock();
        let meta = inner
            .manifest
            .remove(path)
            .ok_or_else(|| StoreError::NotFound { path: path.clone() })?;
        inner.committed_bytes -= meta.size;
        inner.medium.remove(path)?;
        inner.persist_manifest()?;
        Ok(meta)
    }

    /// Renames a committed object.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] / [`StoreError::AlreadyExists`] / I/O.
    pub fn rename(&self, from: &UrlPath, to: &UrlPath) -> Result<(), StoreError> {
        let mut inner = self.lock();
        if inner.manifest.contains_key(to) {
            return Err(StoreError::AlreadyExists { path: to.clone() });
        }
        let meta = inner
            .manifest
            .remove(from)
            .ok_or_else(|| StoreError::NotFound { path: from.clone() })?;
        inner.medium.rename(from, to)?;
        inner.manifest.insert(to.clone(), meta);
        inner.persist_manifest()
    }

    /// Bumps a committed object's version (a content update that keeps
    /// the same bytes), returning the new version.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] / I/O.
    pub fn touch(&self, path: &UrlPath) -> Result<u64, StoreError> {
        let mut inner = self.lock();
        let meta = inner
            .manifest
            .get_mut(path)
            .ok_or_else(|| StoreError::NotFound { path: path.clone() })?;
        meta.version += 1;
        let version = meta.version;
        inner.persist_manifest()?;
        Ok(version)
    }

    /// Re-reads a committed object and verifies its size and checksum
    /// against the manifest.
    ///
    /// # Errors
    ///
    /// [`StoreError::ChecksumMismatch`] on corruption (counted in
    /// `verify_failures`), [`StoreError::NotFound`] / I/O.
    pub fn verify(&self, path: &UrlPath) -> Result<ObjectMeta, StoreError> {
        let mut inner = self.lock();
        let meta = *inner
            .manifest
            .get(path)
            .ok_or_else(|| StoreError::NotFound { path: path.clone() })?;
        let body = inner.medium.read(path)?;
        let got = fnv64(&body);
        if body.len() as u64 != meta.size || got != meta.checksum {
            inner.verify_failures += 1;
            return Err(StoreError::ChecksumMismatch {
                path: path.clone(),
                expected: meta.checksum,
                got,
            });
        }
        Ok(meta)
    }

    /// Verifies every committed object, returning the failures.
    #[must_use]
    pub fn verify_all(&self) -> Vec<(UrlPath, StoreError)> {
        let paths: Vec<UrlPath> = self.lock().manifest.keys().cloned().collect();
        paths
            .into_iter()
            .filter_map(|p| self.verify(&p).err().map(|e| (p, e)))
            .collect()
    }

    /// Sweeps staged transfers that made no progress since the previous
    /// sweep (two-phase mark/sweep: no clocks). Returns `(transfers,
    /// bytes)` released.
    pub fn gc(&self) -> (u64, u64) {
        let mut inner = self.lock();
        let dead: Vec<u64> = inner
            .staged
            .iter()
            .filter_map(|(&id, s)| (!s.touched).then_some(id))
            .collect();
        let mut bytes = 0;
        for id in &dead {
            let s = inner.staged.remove(id).expect("collected above");
            inner.staged_bytes -= s.reserved;
            bytes += s.reserved;
        }
        for s in inner.staged.values_mut() {
            s.touched = false;
        }
        inner.gc_transfers += dead.len() as u64;
        inner.gc_bytes += bytes;
        (dead.len() as u64, bytes)
    }

    /// Point-in-time accounting.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let inner = self.lock();
        StoreStats {
            node: self.node,
            objects: inner.manifest.len() as u64,
            chunks: inner
                .manifest
                .values()
                .map(|m| u64::from(m.chunk_count()))
                .sum(),
            committed_bytes: inner.committed_bytes,
            capacity_bytes: inner.capacity,
            staged_transfers: inner.staged.len() as u64,
            staged_bytes: inner.staged_bytes,
            committed_total: inner.committed_total,
            resumed_transfers: inner.resumed_transfers,
            rejected_chunks: inner.rejected_chunks,
            verify_failures: inner.verify_failures,
            gc_transfers: inner.gc_transfers,
            gc_bytes: inner.gc_bytes,
            durable: inner.medium.durable(),
        }
    }

    /// Bytes staged so far for an in-flight transfer shipping `path`
    /// (observability: "how far along is the transfer?").
    #[must_use]
    pub fn staged_progress(&self, path: &UrlPath) -> Option<u64> {
        let inner = self.lock();
        inner
            .staged
            .values()
            .find(|s| &s.path == path)
            .map(Staged::received)
    }

    /// Corrupts a committed object's bytes in place (failure injection
    /// for audit tests; memory and disk media alike).
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] / I/O.
    pub fn corrupt_for_test(&self, path: &UrlPath) -> Result<(), StoreError> {
        let mut inner = self.lock();
        if !inner.manifest.contains_key(path) {
            return Err(StoreError::NotFound { path: path.clone() });
        }
        let mut body = inner.medium.read(path)?;
        if body.is_empty() {
            body.push(0xEE);
        } else {
            body[0] ^= 0xFF;
        }
        inner.medium.write(path, &body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::synthetic_body;

    fn p(s: &str) -> UrlPath {
        s.parse().unwrap()
    }

    fn ship(store: &ContentStore, path: &UrlPath, meta: ObjectMeta, body: &[u8]) -> ObjectMeta {
        let (id, have) = store.begin(path, meta, false).unwrap();
        for i in 0..meta.chunk_count() {
            if have.contains(&i) {
                continue;
            }
            let range = meta.chunk_range(i).unwrap();
            let chunk = &body[range];
            store.stage_chunk(id, i, chunk, fnv64(chunk)).unwrap();
        }
        store.commit(id, path, meta.checksum).unwrap()
    }

    #[test]
    fn stage_commit_read_roundtrip() {
        let store = ContentStore::in_memory(NodeId(0), 1 << 20);
        let body = synthetic_body(ContentId(1), 10_000);
        let meta = ObjectMeta::for_body(ContentId(1), &body, 1024, 0);
        let committed = ship(&store, &p("/a"), meta, &body);
        assert_eq!(committed, meta);
        assert_eq!(store.read(&p("/a")).unwrap(), body);
        assert_eq!(store.meta(&p("/a")), Some(meta));
        let stats = store.stats();
        assert_eq!(stats.objects, 1);
        assert_eq!(stats.committed_bytes, 10_000);
        assert_eq!(stats.staged_transfers, 0);
        assert_eq!(stats.staged_bytes, 0);
        assert_eq!(stats.rejected_chunks, 0);
    }

    #[test]
    fn poisoned_chunk_rejected_and_resendable() {
        let store = ContentStore::in_memory(NodeId(0), 1 << 20);
        let body = synthetic_body(ContentId(2), 3000);
        let meta = ObjectMeta::for_body(ContentId(2), &body, 1000, 0);
        let (id, _) = store.begin(&p("/x"), meta, false).unwrap();
        let chunk = &body[0..1000];
        let mut poisoned = chunk.to_vec();
        poisoned[5] ^= 0xFF;
        let err = store
            .stage_chunk(id, 0, &poisoned, fnv64(chunk))
            .unwrap_err();
        assert!(matches!(err, StoreError::ChunkRejected { index: 0, .. }));
        assert_eq!(store.stats().rejected_chunks, 1);
        // The honest re-send lands.
        store.stage_chunk(id, 0, chunk, fnv64(chunk)).unwrap();
        for i in 1..3 {
            let r = meta.chunk_range(i).unwrap();
            store
                .stage_chunk(id, i, &body[r], fnv64(&body[meta.chunk_range(i).unwrap()]))
                .unwrap();
        }
        store.commit(id, &p("/x"), meta.checksum).unwrap();
        assert_eq!(store.read(&p("/x")).unwrap(), body);
    }

    #[test]
    fn commit_is_atomic_and_incomplete_rejected() {
        let store = ContentStore::in_memory(NodeId(0), 1 << 20);
        let body = synthetic_body(ContentId(3), 2048);
        let meta = ObjectMeta::for_body(ContentId(3), &body, 1024, 0);
        let (id, _) = store.begin(&p("/partial"), meta, false).unwrap();
        let r = meta.chunk_range(0).unwrap();
        store
            .stage_chunk(id, 0, &body[r], fnv64(&body[meta.chunk_range(0).unwrap()]))
            .unwrap();
        let err = store.commit(id, &p("/partial"), meta.checksum).unwrap_err();
        assert!(matches!(err, StoreError::Incomplete { missing: 1, .. }));
        // Uncommitted means invisible.
        assert!(!store.contains(&p("/partial")));
        assert!(store.read(&p("/partial")).is_err());
        assert_eq!(store.stats().staged_transfers, 1);
    }

    #[test]
    fn begin_resumes_partial_transfer() {
        let store = ContentStore::in_memory(NodeId(0), 1 << 20);
        let body = synthetic_body(ContentId(4), 4096);
        let meta = ObjectMeta::for_body(ContentId(4), &body, 1024, 0);
        let (id, have) = store.begin(&p("/r"), meta, false).unwrap();
        assert!(have.is_empty());
        for i in [0u32, 2] {
            let r = meta.chunk_range(i).unwrap();
            store
                .stage_chunk(id, i, &body[r.clone()], fnv64(&body[r]))
                .unwrap();
        }
        // "Connection lost": a fresh begin resumes the same transfer.
        let (id2, have2) = store.begin(&p("/r"), meta, false).unwrap();
        assert_eq!(id2, id);
        assert_eq!(have2, vec![0, 2]);
        assert_eq!(store.stats().resumed_transfers, 1);
        for i in [1u32, 3] {
            let r = meta.chunk_range(i).unwrap();
            store
                .stage_chunk(id, i, &body[r.clone()], fnv64(&body[r]))
                .unwrap();
        }
        store.commit(id, &p("/r"), meta.checksum).unwrap();
        assert_eq!(store.read(&p("/r")).unwrap(), body);
    }

    #[test]
    fn begin_of_committed_object_returns_sentinel() {
        let store = ContentStore::in_memory(NodeId(0), 1 << 20);
        let body = synthetic_body(ContentId(5), 100);
        let meta = ObjectMeta::for_body(ContentId(5), &body, 64, 0);
        ship(&store, &p("/done"), meta, &body);
        let (id, have) = store.begin(&p("/done"), meta, false).unwrap();
        assert_eq!(id, 0);
        assert_eq!(have.len(), meta.chunk_count() as usize);
        // Lost-ack commit replay succeeds.
        assert_eq!(store.commit(0, &p("/done"), meta.checksum).unwrap(), meta);
        // Different content without overwrite is refused.
        let other = ObjectMeta::for_body(ContentId(6), b"other", 64, 0);
        assert!(matches!(
            store.begin(&p("/done"), other, false),
            Err(StoreError::AlreadyExists { .. })
        ));
    }

    #[test]
    fn quota_reserved_at_begin() {
        let store = ContentStore::in_memory(NodeId(0), 1000);
        let a = ObjectMeta::for_body(ContentId(1), &[1u8; 600], 512, 0);
        let b = ObjectMeta::for_body(ContentId(2), &[2u8; 600], 512, 0);
        let (_, _) = store.begin(&p("/a"), a, false).unwrap();
        let err = store.begin(&p("/b"), b, false).unwrap_err();
        assert!(matches!(
            err,
            StoreError::DiskFull {
                needed: 600,
                free: 400,
                ..
            }
        ));
        // Aborting releases the reservation.
        assert!(store.abort(1));
        store.begin(&p("/b"), b, false).unwrap();
    }

    #[test]
    fn put_delete_rename_touch_accounting() {
        let store = ContentStore::in_memory(NodeId(0), 1000);
        let meta = store
            .put(&p("/a"), ContentId(1), 0, &[9u8; 300], false)
            .unwrap();
        assert_eq!(meta.size, 300);
        assert!(matches!(
            store.put(&p("/a"), ContentId(2), 0, &[1u8; 10], false),
            Err(StoreError::AlreadyExists { .. })
        ));
        assert!(matches!(
            store.put(&p("/b"), ContentId(3), 0, &[1u8; 800], false),
            Err(StoreError::DiskFull { .. })
        ));
        store.rename(&p("/a"), &p("/b")).unwrap();
        assert!(store.contains(&p("/b")) && !store.contains(&p("/a")));
        assert_eq!(store.touch(&p("/b")).unwrap(), 1);
        assert_eq!(store.meta(&p("/b")).unwrap().version, 1);
        store.delete(&p("/b")).unwrap();
        assert_eq!(store.stats().committed_bytes, 0);
        assert!(matches!(
            store.delete(&p("/b")),
            Err(StoreError::NotFound { .. })
        ));
    }

    #[test]
    fn overwrite_put_replaces_and_reaccounts() {
        let store = ContentStore::in_memory(NodeId(0), 1000);
        store
            .put(&p("/a"), ContentId(1), 0, &[1u8; 900], false)
            .unwrap();
        store
            .put(&p("/a"), ContentId(1), 1, &[2u8; 950], true)
            .unwrap();
        assert_eq!(store.stats().committed_bytes, 950);
        assert!(matches!(
            store.put(&p("/a"), ContentId(1), 2, &[3u8; 1100], true),
            Err(StoreError::DiskFull { .. })
        ));
    }

    #[test]
    fn verify_detects_corruption() {
        let store = ContentStore::in_memory(NodeId(0), 1 << 20);
        store
            .put(&p("/ok"), ContentId(1), 0, b"healthy", false)
            .unwrap();
        store.verify(&p("/ok")).unwrap();
        store.corrupt_for_test(&p("/ok")).unwrap();
        let err = store.verify(&p("/ok")).unwrap_err();
        assert!(matches!(err, StoreError::ChecksumMismatch { .. }));
        assert_eq!(store.stats().verify_failures, 1);
        let failures = store.verify_all();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, p("/ok"));
    }

    #[test]
    fn gc_sweeps_only_idle_transfers() {
        let store = ContentStore::in_memory(NodeId(0), 1 << 20);
        let meta = ObjectMeta::for_body(ContentId(1), &[0u8; 100], 64, 0);
        let (id, _) = store.begin(&p("/idle"), meta, false).unwrap();
        // First sweep: the transfer was touched by begin → survives.
        assert_eq!(store.gc(), (0, 0));
        // Second sweep: no progress since → swept.
        assert_eq!(store.gc(), (1, 100));
        assert!(!store.abort(id), "already swept");
        assert_eq!(store.stats().staged_bytes, 0);
        assert_eq!(store.stats().gc_transfers, 1);

        // An active transfer keeps surviving.
        let meta2 = ObjectMeta::for_body(ContentId(2), &[1u8; 128], 64, 0);
        let (id2, _) = store.begin(&p("/busy"), meta2, false).unwrap();
        store.gc();
        store
            .stage_chunk(id2, 0, &[1u8; 64], fnv64(&[1u8; 64]))
            .unwrap();
        assert_eq!(store.gc(), (0, 0), "chunk activity marked it live");
        assert_eq!(store.gc(), (1, 128), "idle since last sweep");
    }

    #[test]
    fn disk_store_survives_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "cpms-store-test-{}-{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let body = synthetic_body(ContentId(7), 5000);
        {
            let store = ContentStore::open(NodeId(1), &dir, 1 << 20).unwrap();
            let meta = ObjectMeta::for_body(ContentId(7), &body, 1024, 0);
            ship(&store, &p("/site/page.html"), meta, &body);
            assert!(store.stats().durable);
        }
        {
            let store = ContentStore::open(NodeId(1), &dir, 1 << 20).unwrap();
            assert_eq!(store.read(&p("/site/page.html")).unwrap(), body);
            assert_eq!(store.stats().objects, 1);
            assert_eq!(store.stats().committed_bytes, 5000);
            store.verify(&p("/site/page.html")).unwrap();
            // Truncate the object file behind the manifest's back: the
            // next open drops the record instead of serving a torso.
            store.delete(&p("/site/page.html")).unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_ships_respect_quota() {
        let store = std::sync::Arc::new(ContentStore::in_memory(NodeId(0), 10_000));
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let store = std::sync::Arc::clone(&store);
                scope.spawn(move || {
                    let body = synthetic_body(ContentId(t), 2000);
                    let meta = ObjectMeta::for_body(ContentId(t), &body, 512, 0);
                    let path: UrlPath = format!("/f{t}").parse().unwrap();
                    if let Ok((id, _)) = store.begin(&path, meta, false) {
                        for i in 0..meta.chunk_count() {
                            let r = meta.chunk_range(i).unwrap();
                            store
                                .stage_chunk(id, i, &body[r.clone()], fnv64(&body[r]))
                                .unwrap();
                        }
                        store.commit(id, &path, meta.checksum).unwrap();
                    }
                });
            }
        });
        let stats = store.stats();
        assert!(stats.committed_bytes <= 10_000, "quota held: {stats:?}");
        assert_eq!(stats.committed_bytes, stats.objects * 2000);
        assert_eq!(stats.objects, 5, "exactly floor(10000/2000) ships won");
    }
}
