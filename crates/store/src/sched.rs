//! A bounded-concurrency transfer scheduler for the controller.
//!
//! Publishing to N nodes or rebalancing a batch of replicas fans out N
//! independent ship jobs; the [`TransferScheduler`] runs them on scoped
//! threads with a concurrency cap so a wide publish cannot open an
//! unbounded number of simultaneous transfers.

use cpms_obs::{ScopedTrace, TraceContext};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Runs transfer jobs with at most `limit` in flight at once.
#[derive(Debug)]
pub struct TransferScheduler {
    limit: usize,
    slots: Mutex<usize>,
    freed: Condvar,
    inflight: AtomicU64,
    started_total: AtomicU64,
}

impl TransferScheduler {
    /// A scheduler allowing `limit` concurrent transfers (min 1).
    #[must_use]
    pub fn new(limit: usize) -> Self {
        let limit = limit.max(1);
        TransferScheduler {
            limit,
            slots: Mutex::new(limit),
            freed: Condvar::new(),
            inflight: AtomicU64::new(0),
            started_total: AtomicU64::new(0),
        }
    }

    /// The concurrency cap.
    #[must_use]
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Transfers running right now (the console's "in-flight" column).
    #[must_use]
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Transfers started over the scheduler's lifetime.
    #[must_use]
    pub fn started_total(&self) -> u64 {
        self.started_total.load(Ordering::Relaxed)
    }

    fn acquire(&self) {
        let mut slots = self.slots.lock().expect("scheduler lock never poisoned");
        while *slots == 0 {
            slots = self
                .freed
                .wait(slots)
                .expect("scheduler lock never poisoned");
        }
        *slots -= 1;
        self.inflight.fetch_add(1, Ordering::Relaxed);
        self.started_total.fetch_add(1, Ordering::Relaxed);
    }

    fn release(&self) {
        let mut slots = self.slots.lock().expect("scheduler lock never poisoned");
        *slots += 1;
        self.inflight.fetch_sub(1, Ordering::Relaxed);
        self.freed.notify_one();
    }

    /// Runs `job` once per item concurrently (capped), returning results
    /// in item order. Blocks until every job finishes.
    pub fn run<T, R, F>(&self, items: Vec<T>, job: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        if items.len() <= 1 {
            // Inline fast path: no thread spawn for single-target ops.
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| {
                    self.acquire();
                    let r = job(i, item);
                    self.release();
                    r
                })
                .collect();
        }
        let job = &job;
        // Worker threads start with an empty trace-context thread-local;
        // carry the caller's context across the spawn so fan-out RPCs
        // stay children of the publishing span instead of rooting their
        // own traces.
        let ctx = TraceContext::current();
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .into_iter()
                .enumerate()
                .map(|(i, item)| {
                    scope.spawn(move || {
                        let _trace = ctx.map(ScopedTrace::activate);
                        self.acquire();
                        let r = job(i, item);
                        self.release();
                        r
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("transfer job panicked"))
                .collect()
        })
    }
}

impl Default for TransferScheduler {
    /// Four concurrent transfers, matching a small management plane.
    fn default() -> Self {
        TransferScheduler::new(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn results_keep_item_order() {
        let sched = TransferScheduler::new(3);
        let out = sched.run((0..16).collect(), |i, item: u32| {
            // Later items finish first.
            std::thread::sleep(Duration::from_millis(u64::from(16 - item)));
            (i, item * 2)
        });
        for (i, (idx, doubled)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*doubled, (i as u32) * 2);
        }
        assert_eq!(sched.started_total(), 16);
        assert_eq!(sched.inflight(), 0);
    }

    #[test]
    fn concurrency_is_capped() {
        let sched = TransferScheduler::new(2);
        let running = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        sched.run((0..12).collect::<Vec<u32>>(), |_, _| {
            let now = running.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(5));
            running.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "cap held");
    }

    #[test]
    fn single_item_runs_inline() {
        let sched = TransferScheduler::new(4);
        let here = std::thread::current().id();
        let out = sched.run(vec![7u32], |_, item| (std::thread::current().id(), item));
        assert_eq!(out[0].0, here);
        assert_eq!(out[0].1, 7);
    }

    #[test]
    fn fanout_workers_inherit_trace_context() {
        let sched = TransferScheduler::new(4);
        let ctx = TraceContext::root(true);
        let _trace = ScopedTrace::activate(ctx);
        let seen = sched.run((0..6).collect::<Vec<u32>>(), |_, _| TraceContext::current());
        for worker_ctx in seen {
            assert_eq!(worker_ctx.map(|c| c.trace), Some(ctx.trace));
        }
    }
}
