#![allow(clippy::needless_range_loop)]
//! Property tests for the distributor's connection-splicing machinery.

use cpms_dispatch::mapping::{ConnKey, ConnState, MappingTable, SeqTranslation};
use cpms_dispatch::pool::{ConnectionPool, PoolError};
use cpms_dispatch::relay::{Distributor, Flags, Packet};
use cpms_model::NodeId;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// Sequence translation is a bijection: translating any sequence number
    /// client→server and back (via the ACK path) recovers the original, at
    /// every wrap point.
    #[test]
    fn seq_translation_roundtrips(
        client_seq in any::<u32>(),
        prefork_seq in any::<u32>(),
        dist_seq in any::<u32>(),
        server_seq in any::<u32>(),
        probe in any::<u32>(),
    ) {
        let tr = SeqTranslation::at_binding(client_seq, prefork_seq, dist_seq, server_seq);
        // c2s then the server acks that byte; ack_s2c maps it back.
        prop_assert_eq!(tr.ack_s2c(tr.seq_c2s(probe)), probe);
        // s2c then the client acks; ack_c2s maps it back.
        prop_assert_eq!(tr.ack_c2s(tr.seq_s2c(probe)), probe);
    }

    /// The binding anchors are exact: the client's next byte lands on the
    /// pre-forked connection's next byte, and the server's next byte lands
    /// on the distributor's next byte.
    #[test]
    fn binding_anchors_are_exact(
        client_seq in any::<u32>(),
        prefork_seq in any::<u32>(),
        dist_seq in any::<u32>(),
        server_seq in any::<u32>(),
    ) {
        let tr = SeqTranslation::at_binding(client_seq, prefork_seq, dist_seq, server_seq);
        prop_assert_eq!(tr.seq_c2s(client_seq), prefork_seq);
        prop_assert_eq!(tr.seq_s2c(server_seq), dist_seq);
    }

    /// The pool never double-allocates a slot, never exceeds its size, and
    /// checkout/release counts always reconcile.
    #[test]
    fn pool_never_double_allocates(
        nodes in 1usize..4,
        per_node in 1u32..5,
        ops in prop::collection::vec((0u16..4, any::<bool>()), 1..200),
    ) {
        let mut pool = ConnectionPool::prefork(nodes, per_node);
        let mut held: Vec<Vec<cpms_dispatch::mapping::PreforkId>> = vec![Vec::new(); nodes];
        for (node_raw, is_checkout) in ops {
            let node = NodeId(node_raw % nodes as u16);
            if is_checkout {
                match pool.checkout(node) {
                    Ok(id) => {
                        prop_assert!(!held[node.index()].contains(&id), "double allocation");
                        held[node.index()].push(id);
                    }
                    Err(PoolError::Exhausted(_)) => {
                        prop_assert_eq!(held[node.index()].len(), per_node as usize);
                    }
                    Err(e) => prop_assert!(false, "unexpected error {e}"),
                }
            } else if let Some(id) = held[node.index()].pop() {
                pool.release(id).unwrap();
            }
            for n in 0..nodes {
                let node = NodeId(n as u16);
                prop_assert_eq!(
                    pool.available(node) + pool.in_use(node),
                    per_node as usize
                );
                prop_assert_eq!(pool.in_use(node), held[n].len());
            }
        }
    }

    /// The mapping table's state machine matches a reference model under
    /// arbitrary event sequences: states agree, and entries are deleted
    /// exactly at close.
    #[test]
    fn mapping_state_machine_matches_model(
        events in prop::collection::vec((0u16..6, 0u8..6), 1..300),
    ) {
        let mut table = MappingTable::new();
        let mut model: HashMap<u16, ConnState> = HashMap::new();

        for (port, event) in events {
            let key = ConnKey { client_ip: 7, client_port: port };
            let model_state = model.get(&port).copied();
            match event {
                0 => { // SYN
                    let r = table.on_syn(key, 42, false);
                    match model_state {
                        None => {
                            prop_assert!(r.is_ok());
                            model.insert(port, ConnState::SynReceived);
                        }
                        Some(ConnState::SynReceived) => prop_assert!(r.is_ok()),
                        Some(_) => prop_assert!(r.is_err()),
                    }
                }
                1 => { // handshake ACK
                    let r = table.on_handshake_ack(key);
                    if model_state == Some(ConnState::SynReceived) {
                        prop_assert!(r.is_ok());
                        model.insert(port, ConnState::Established);
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                2 => { // client FIN
                    let r = table.on_client_fin(key);
                    match model_state {
                        Some(ConnState::Established) | Some(ConnState::SynReceived) => {
                            prop_assert!(r.is_ok());
                            model.insert(port, ConnState::FinReceived);
                        }
                        _ => prop_assert!(r.is_err()),
                    }
                }
                3 => { // FIN acked
                    let r = table.on_fin_acked(key);
                    if model_state == Some(ConnState::FinReceived) {
                        prop_assert!(r.is_ok());
                        model.insert(port, ConnState::HalfClosed);
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                4 => { // last ACK
                    let r = table.on_last_ack(key);
                    if model_state == Some(ConnState::HalfClosed) {
                        prop_assert!(r.is_ok());
                        model.remove(&port);
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                _ => { // abort
                    table.abort(key);
                    model.remove(&port);
                }
            }
            // State agreement after every event.
            match model.get(&port) {
                Some(state) => {
                    prop_assert_eq!(table.get(key).map(|e| e.state()), Some(*state))
                }
                None => prop_assert!(table.get(key).is_none()),
            }
        }
        prop_assert_eq!(table.len(), model.len());
    }

    /// Relayed payload bytes are preserved verbatim — header rewriting
    /// never touches the payload length or flags (except the documented
    /// HTTP/1.0 FIN case).
    #[test]
    fn relay_preserves_payload_and_flags(
        payload in 0u32..100_000,
        seq in any::<u32>(),
        http10 in any::<bool>(),
    ) {
        let mut d = Distributor::new(1, 1);
        let k = ConnKey { client_ip: 1, client_port: 1 };
        d.accept_syn(k, seq, http10).unwrap();
        d.complete_handshake(k).unwrap();
        d.bind(k, NodeId(0), seq.wrapping_add(1)).unwrap();

        let pkt = Packet {
            seq: seq.wrapping_add(1),
            ack: 0,
            flags: Flags { syn: false, ack: false, fin: false },
            payload,
        };
        let (_, out) = d.relay_to_server(k, pkt).unwrap();
        prop_assert_eq!(out.payload, payload);
        prop_assert_eq!(out.flags, pkt.flags);

        let back = d.relay_to_client(k, pkt, false).unwrap();
        prop_assert_eq!(back.payload, payload);
        prop_assert!(!back.flags.fin);

        let last = d.relay_to_client(k, pkt, true).unwrap();
        prop_assert_eq!(last.flags.fin, http10, "FIN forced only for HTTP/1.0");
    }
}
