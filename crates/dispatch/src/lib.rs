//! # cpms-dispatch
//!
//! Request routing for the distributed web server — §2 of the paper.
//!
//! Two layers live here:
//!
//! 1. **Routing policies** ([`Router`]): the decision logic that picks a
//!    back-end node per request. This includes the paper's **content-aware
//!    distributor** ([`ContentAwareRouter`]) and the baselines it is
//!    compared against — layer-4 routing with *Weighted Least Connections*
//!    ([`WeightedLeastConnections`], the paper's previous work \[2\]),
//!    round-robin, and DNS-style client-sticky routing. The live
//!    multi-worker distributor uses [`LiveRouter`] — the same
//!    content-aware policy reading *published snapshots* of the URL table
//!    through a per-worker cache (see [`cpms_urltable::snapshot`]).
//!
//! 2. **Connection-splicing mechanics**: the kernel-module machinery of
//!    §2.2 reproduced as a deterministic state machine — the
//!    [`mapping::MappingTable`] (per-connection TCP state:
//!    `SYN_RECEIVED → ESTABLISHED → FIN_RECEIVED → HALF_CLOSED → CLOSED`),
//!    the pre-forked persistent [`pool::ConnectionPool`], sequence-number
//!    translation and header rewriting in [`relay::Distributor`], and the
//!    primary/backup fault-tolerance scheme in [`failover`].
//!
//! The policies are consumed by the simulator (`cpms-sim`) and by the live
//! TCP proxy (`cpms-httpd`); the splicing state machine is exercised by
//! unit/property tests and by the live proxy's connection handling.
//!
//! # Example: routing decisions
//!
//! ```
//! use cpms_dispatch::{ClusterState, ContentAwareRouter, Router, RoutingRequest};
//! use cpms_model::{ContentId, ContentKind, NodeId, UrlPath};
//! use cpms_urltable::{UrlEntry, UrlTable};
//!
//! let mut table = UrlTable::new();
//! let path: UrlPath = "/a.html".parse().unwrap();
//! table.insert(
//!     path.clone(),
//!     UrlEntry::new(ContentId(0), ContentKind::StaticHtml, 100)
//!         .with_locations([NodeId(2)]),
//! ).unwrap();
//!
//! let mut router = ContentAwareRouter::new(64);
//! let state = ClusterState::new(vec![1.0; 4]);
//! let req = RoutingRequest { client: 0, path: &path, kind: ContentKind::StaticHtml };
//! let decision = router.route(&req, &state, &table).unwrap();
//! assert_eq!(decision.node, NodeId(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod content_aware;
pub mod failover;
pub mod l4;
pub mod live;
pub mod mapping;
pub mod pool;
pub mod redirect;
pub mod relay;
pub mod router;

pub use content_aware::ContentAwareRouter;
pub use l4::{RandomRouter, RoundRobin, WeightedLeastConnections};
pub use live::LiveRouter;
pub use redirect::HttpRedirectRouter;
pub use router::{ClusterState, DnsRoundRobin, RouteDecision, Router, RoutingRequest};
