//! The distributor's connection **mapping table** and per-connection TCP
//! state machine (§2.2).
//!
//! > "After receiving the SYN packet, the distributor first creates an
//! > entry (indexed by the source IP address and port number) in an
//! > internal table (termed mapping table) for this connection then records
//! > the TCP state information (e.g., sequence number, ACK number, etc.) in
//! > the entry."
//!
//! Close handling follows the paper exactly: a client FIN moves the entry
//! to `FIN_RECEIVED`; the distributor ACKs it and the entry becomes
//! `HALF_CLOSED`; when the last relayed packet is ACKed the entry becomes
//! `CLOSED`, is deleted, and the bound pre-forked connection returns to the
//! available list.

use cpms_model::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Key of a mapping-table entry: the client's source address and port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConnKey {
    /// Client IPv4 address (opaque here).
    pub client_ip: u32,
    /// Client TCP source port.
    pub client_port: u16,
}

impl fmt::Display for ConnKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ip = self.client_ip;
        write!(
            f,
            "{}.{}.{}.{}:{}",
            ip >> 24,
            (ip >> 16) & 0xff,
            (ip >> 8) & 0xff,
            ip & 0xff,
            self.client_port
        )
    }
}

/// TCP state of one client connection as tracked by the distributor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConnState {
    /// SYN received, SYN-ACK sent, waiting for the client's ACK.
    SynReceived,
    /// Three-way handshake complete; data may flow.
    Established,
    /// Client FIN received, not yet ACKed by the distributor.
    FinReceived,
    /// FIN ACKed; draining the last relayed data.
    HalfClosed,
    /// Fully closed; the entry is deleted and the pre-forked connection
    /// released.
    Closed,
}

/// Identity of a pre-forked persistent backend connection (see
/// [`crate::pool::ConnectionPool`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PreforkId {
    /// The backend node the connection goes to.
    pub node: NodeId,
    /// Slot index within that node's pool.
    pub slot: u32,
}

/// Sequence-number translation offsets binding a client connection to a
/// pre-forked backend connection.
///
/// Packets relayed client→server have their sequence numbers shifted by
/// `c2s` and their ACK numbers by the negation of `s2c`; server→client
/// packets the reverse. All arithmetic wraps mod 2³².
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SeqTranslation {
    /// Offset added to client sequence numbers toward the server.
    pub c2s: u32,
    /// Offset added to server sequence numbers toward the client.
    pub s2c: u32,
}

impl SeqTranslation {
    /// Computes offsets at binding time from the two connections' current
    /// sequence positions.
    ///
    /// * `client_seq` — next byte the client will send (client ISN + bytes),
    /// * `prefork_our_seq` — next byte the distributor would send on the
    ///   pre-forked connection toward the server,
    /// * `client_expected_seq` — next byte the client expects from the
    ///   distributor (the distributor's ISN + bytes sent),
    /// * `server_seq` — next byte the server will send on the pre-forked
    ///   connection.
    pub fn at_binding(
        client_seq: u32,
        prefork_our_seq: u32,
        client_expected_seq: u32,
        server_seq: u32,
    ) -> Self {
        SeqTranslation {
            c2s: prefork_our_seq.wrapping_sub(client_seq),
            s2c: client_expected_seq.wrapping_sub(server_seq),
        }
    }

    /// Translates a client→server sequence number.
    pub fn seq_c2s(&self, seq: u32) -> u32 {
        seq.wrapping_add(self.c2s)
    }

    /// Translates a client→server ACK number (acknowledging server bytes).
    pub fn ack_c2s(&self, ack: u32) -> u32 {
        ack.wrapping_sub(self.s2c)
    }

    /// Translates a server→client sequence number.
    pub fn seq_s2c(&self, seq: u32) -> u32 {
        seq.wrapping_add(self.s2c)
    }

    /// Translates a server→client ACK number (acknowledging client bytes).
    pub fn ack_s2c(&self, ack: u32) -> u32 {
        ack.wrapping_sub(self.c2s)
    }
}

/// One mapping-table entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappingEntry {
    state: ConnState,
    /// Client's initial sequence number (from its SYN).
    pub client_isn: u32,
    /// The ISN the distributor chose for its SYN-ACK.
    pub distributor_isn: u32,
    /// The bound pre-forked connection, once content-based binding happened.
    pub binding: Option<PreforkId>,
    /// Sequence translation, valid once bound.
    pub translation: SeqTranslation,
    /// Whether the client speaks HTTP/1.0 (distributor must set FIN on the
    /// last relayed packet itself).
    pub http10: bool,
}

impl MappingEntry {
    /// Current TCP state.
    pub fn state(&self) -> ConnState {
        self.state
    }
}

/// Errors from mapping-table transitions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MappingError {
    /// No entry exists for the connection.
    UnknownConnection(ConnKey),
    /// The event is not legal in the entry's current state.
    InvalidTransition {
        /// The connection.
        key: ConnKey,
        /// Its current state.
        state: ConnState,
        /// The event that was attempted.
        event: &'static str,
    },
    /// Binding attempted twice.
    AlreadyBound(ConnKey),
    /// Data relay attempted before a binding exists.
    NotBound(ConnKey),
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::UnknownConnection(k) => write!(f, "unknown connection {k}"),
            MappingError::InvalidTransition { key, state, event } => {
                write!(f, "invalid event `{event}` for {key} in state {state:?}")
            }
            MappingError::AlreadyBound(k) => write!(f, "connection {k} already bound"),
            MappingError::NotBound(k) => write!(f, "connection {k} has no backend binding"),
        }
    }
}

impl std::error::Error for MappingError {}

/// The mapping table: all client connections currently tracked by the
/// distributor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MappingTable {
    entries: HashMap<ConnKey, MappingEntry>,
    isn_counter: u32,
    /// Total entries ever created (for reports).
    created: u64,
    /// Total entries fully closed.
    closed: u64,
}

/// Wire shape for [`MappingTable`]: struct-keyed maps don't serialize as
/// JSON objects, so entries travel as a (sorted, deterministic) pair list.
#[derive(Serialize, Deserialize)]
struct MappingTableWire {
    entries: Vec<(ConnKey, MappingEntry)>,
    isn_counter: u32,
    created: u64,
    closed: u64,
}

impl Serialize for MappingTable {
    fn to_value(&self) -> serde::value::Value {
        let mut entries: Vec<(ConnKey, MappingEntry)> =
            self.entries.iter().map(|(k, v)| (*k, v.clone())).collect();
        entries.sort_by_key(|(k, _)| *k);
        MappingTableWire {
            entries,
            isn_counter: self.isn_counter,
            created: self.created,
            closed: self.closed,
        }
        .to_value()
    }
}

impl Deserialize for MappingTable {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::Error> {
        let wire = MappingTableWire::from_value(v)?;
        Ok(MappingTable {
            entries: wire.entries.into_iter().collect(),
            isn_counter: wire.isn_counter,
            created: wire.created,
            closed: wire.closed,
        })
    }
}

impl MappingTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        MappingTable::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no connections are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total connections ever accepted.
    pub fn total_created(&self) -> u64 {
        self.created
    }

    /// Total connections fully closed.
    pub fn total_closed(&self) -> u64 {
        self.closed
    }

    /// The entry for `key`, if any.
    pub fn get(&self, key: ConnKey) -> Option<&MappingEntry> {
        self.entries.get(&key)
    }

    /// Handles a client SYN: creates the entry (state `SynReceived`) and
    /// returns the distributor's ISN for the SYN-ACK. A retransmitted SYN
    /// for an existing `SynReceived` entry returns the same ISN.
    ///
    /// # Errors
    ///
    /// [`MappingError::InvalidTransition`] if the connection is already
    /// past the handshake.
    pub fn on_syn(
        &mut self,
        key: ConnKey,
        client_isn: u32,
        http10: bool,
    ) -> Result<u32, MappingError> {
        if let Some(e) = self.entries.get(&key) {
            return if e.state == ConnState::SynReceived {
                Ok(e.distributor_isn) // SYN retransmission
            } else {
                Err(MappingError::InvalidTransition {
                    key,
                    state: e.state,
                    event: "SYN",
                })
            };
        }
        // Deterministic ISN: counter mixed with the key (a real stack would
        // use a clock + hash; determinism aids testing and replay).
        self.isn_counter = self.isn_counter.wrapping_add(0x1000_61C8);
        let isn = self
            .isn_counter
            .wrapping_add(key.client_ip)
            .wrapping_add(key.client_port as u32);
        self.entries.insert(
            key,
            MappingEntry {
                state: ConnState::SynReceived,
                client_isn,
                distributor_isn: isn,
                binding: None,
                translation: SeqTranslation::default(),
                http10,
            },
        );
        self.created += 1;
        Ok(isn)
    }

    /// Handles the client's handshake ACK: `SynReceived → Established`.
    ///
    /// # Errors
    ///
    /// [`MappingError::UnknownConnection`] or
    /// [`MappingError::InvalidTransition`].
    pub fn on_handshake_ack(&mut self, key: ConnKey) -> Result<(), MappingError> {
        let e = self
            .entries
            .get_mut(&key)
            .ok_or(MappingError::UnknownConnection(key))?;
        match e.state {
            ConnState::SynReceived => {
                e.state = ConnState::Established;
                Ok(())
            }
            state => Err(MappingError::InvalidTransition {
                key,
                state,
                event: "handshake-ACK",
            }),
        }
    }

    /// Binds an established connection to a pre-forked backend connection,
    /// storing the sequence translation. Done once the HTTP request has
    /// been parsed and routed.
    ///
    /// # Errors
    ///
    /// [`MappingError::UnknownConnection`], [`MappingError::AlreadyBound`],
    /// or [`MappingError::InvalidTransition`] if the handshake is not
    /// complete.
    pub fn bind(
        &mut self,
        key: ConnKey,
        prefork: PreforkId,
        translation: SeqTranslation,
    ) -> Result<(), MappingError> {
        let e = self
            .entries
            .get_mut(&key)
            .ok_or(MappingError::UnknownConnection(key))?;
        if e.state != ConnState::Established {
            return Err(MappingError::InvalidTransition {
                key,
                state: e.state,
                event: "bind",
            });
        }
        if e.binding.is_some() {
            return Err(MappingError::AlreadyBound(key));
        }
        e.binding = Some(prefork);
        e.translation = translation;
        Ok(())
    }

    /// The binding of `key`, if routed.
    ///
    /// # Errors
    ///
    /// [`MappingError::UnknownConnection`] or [`MappingError::NotBound`].
    pub fn binding(&self, key: ConnKey) -> Result<(PreforkId, SeqTranslation), MappingError> {
        let e = self
            .entries
            .get(&key)
            .ok_or(MappingError::UnknownConnection(key))?;
        match e.binding {
            Some(p) => Ok((p, e.translation)),
            None => Err(MappingError::NotBound(key)),
        }
    }

    /// Handles a client FIN: `Established/SynReceived → FinReceived`. The
    /// caller then ACKs the FIN via [`MappingTable::on_fin_acked`].
    ///
    /// # Errors
    ///
    /// [`MappingError::UnknownConnection`] or
    /// [`MappingError::InvalidTransition`].
    pub fn on_client_fin(&mut self, key: ConnKey) -> Result<(), MappingError> {
        let e = self
            .entries
            .get_mut(&key)
            .ok_or(MappingError::UnknownConnection(key))?;
        match e.state {
            ConnState::Established | ConnState::SynReceived => {
                e.state = ConnState::FinReceived;
                Ok(())
            }
            state => Err(MappingError::InvalidTransition {
                key,
                state,
                event: "FIN",
            }),
        }
    }

    /// Records that the distributor ACKed the client's FIN:
    /// `FinReceived → HalfClosed`.
    ///
    /// # Errors
    ///
    /// [`MappingError::UnknownConnection`] or
    /// [`MappingError::InvalidTransition`].
    pub fn on_fin_acked(&mut self, key: ConnKey) -> Result<(), MappingError> {
        let e = self
            .entries
            .get_mut(&key)
            .ok_or(MappingError::UnknownConnection(key))?;
        match e.state {
            ConnState::FinReceived => {
                e.state = ConnState::HalfClosed;
                Ok(())
            }
            state => Err(MappingError::InvalidTransition {
                key,
                state,
                event: "FIN-ACK",
            }),
        }
    }

    /// Records that the last relayed packet was ACKed by the client:
    /// `HalfClosed → Closed`. The entry is deleted; the caller must release
    /// the returned pre-forked connection back to the pool.
    ///
    /// # Errors
    ///
    /// [`MappingError::UnknownConnection`] or
    /// [`MappingError::InvalidTransition`].
    pub fn on_last_ack(&mut self, key: ConnKey) -> Result<Option<PreforkId>, MappingError> {
        let e = self
            .entries
            .get_mut(&key)
            .ok_or(MappingError::UnknownConnection(key))?;
        match e.state {
            ConnState::HalfClosed => {
                let binding = e.binding;
                self.entries.remove(&key);
                self.closed += 1;
                Ok(binding)
            }
            state => Err(MappingError::InvalidTransition {
                key,
                state,
                event: "last-ACK",
            }),
        }
    }

    /// Force-closes an entry (client abort / RST). Returns the binding to
    /// release, if any. Idempotent: unknown keys return `None`.
    pub fn abort(&mut self, key: ConnKey) -> Option<PreforkId> {
        self.entries.remove(&key).map(|e| {
            self.closed += 1;
            e.binding
        })?
    }

    /// Iterates over live entries (for failover state replication).
    pub fn iter(&self) -> impl Iterator<Item = (ConnKey, &MappingEntry)> {
        self.entries.iter().map(|(k, e)| (*k, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(port: u16) -> ConnKey {
        ConnKey {
            client_ip: 0xC0A8_0001,
            client_port: port,
        }
    }

    fn prefork() -> PreforkId {
        PreforkId {
            node: NodeId(3),
            slot: 7,
        }
    }

    #[test]
    fn full_lifecycle_http11() {
        let mut t = MappingTable::new();
        let k = key(1234);
        let isn = t.on_syn(k, 1000, false).unwrap();
        assert_eq!(t.get(k).unwrap().state(), ConnState::SynReceived);
        assert_eq!(t.get(k).unwrap().distributor_isn, isn);

        t.on_handshake_ack(k).unwrap();
        assert_eq!(t.get(k).unwrap().state(), ConnState::Established);

        let tr = SeqTranslation::at_binding(1001, 5000, isn.wrapping_add(1), 9000);
        t.bind(k, prefork(), tr).unwrap();
        assert_eq!(t.binding(k).unwrap().0, prefork());

        t.on_client_fin(k).unwrap();
        assert_eq!(t.get(k).unwrap().state(), ConnState::FinReceived);
        t.on_fin_acked(k).unwrap();
        assert_eq!(t.get(k).unwrap().state(), ConnState::HalfClosed);
        let released = t.on_last_ack(k).unwrap();
        assert_eq!(released, Some(prefork()));
        assert!(t.get(k).is_none(), "entry deleted after close");
        assert_eq!(t.total_created(), 1);
        assert_eq!(t.total_closed(), 1);
    }

    #[test]
    fn syn_retransmission_returns_same_isn() {
        let mut t = MappingTable::new();
        let k = key(1);
        let isn1 = t.on_syn(k, 42, false).unwrap();
        let isn2 = t.on_syn(k, 42, false).unwrap();
        assert_eq!(isn1, isn2);
        assert_eq!(t.total_created(), 1);
    }

    #[test]
    fn distinct_connections_get_distinct_isns() {
        let mut t = MappingTable::new();
        let isn1 = t.on_syn(key(1), 0, false).unwrap();
        let isn2 = t.on_syn(key(2), 0, false).unwrap();
        assert_ne!(isn1, isn2);
    }

    #[test]
    fn invalid_transitions_rejected() {
        let mut t = MappingTable::new();
        let k = key(9);
        assert!(matches!(
            t.on_handshake_ack(k),
            Err(MappingError::UnknownConnection(_))
        ));
        t.on_syn(k, 0, false).unwrap();
        // bind before handshake completes
        assert!(matches!(
            t.bind(k, prefork(), SeqTranslation::default()),
            Err(MappingError::InvalidTransition { .. })
        ));
        t.on_handshake_ack(k).unwrap();
        // double handshake ack
        assert!(matches!(
            t.on_handshake_ack(k),
            Err(MappingError::InvalidTransition { .. })
        ));
        t.bind(k, prefork(), SeqTranslation::default()).unwrap();
        assert!(matches!(
            t.bind(k, prefork(), SeqTranslation::default()),
            Err(MappingError::AlreadyBound(_))
        ));
        // fin-ack without fin
        assert!(matches!(
            t.on_fin_acked(k),
            Err(MappingError::InvalidTransition { .. })
        ));
        // last-ack without half-close
        assert!(matches!(
            t.on_last_ack(k),
            Err(MappingError::InvalidTransition { .. })
        ));
    }

    #[test]
    fn abort_releases_binding() {
        let mut t = MappingTable::new();
        let k = key(5);
        t.on_syn(k, 0, false).unwrap();
        t.on_handshake_ack(k).unwrap();
        t.bind(k, prefork(), SeqTranslation::default()).unwrap();
        assert_eq!(t.abort(k), Some(prefork()));
        assert!(t.is_empty());
        assert_eq!(t.abort(k), None, "abort is idempotent");
    }

    #[test]
    fn abort_unbound_returns_none() {
        let mut t = MappingTable::new();
        let k = key(6);
        t.on_syn(k, 0, false).unwrap();
        assert_eq!(t.abort(k), None);
        assert_eq!(t.total_closed(), 1);
    }

    #[test]
    fn seq_translation_directions() {
        // Client ISN 1000 (next seq 1001); prefork "our" side next seq 5001;
        // distributor ISN 8000 (client expects 8001); server next seq 9001.
        let tr = SeqTranslation::at_binding(1001, 5001, 8001, 9001);
        // A client packet with seq 1001 must appear to the server as 5001.
        assert_eq!(tr.seq_c2s(1001), 5001);
        // A server packet with seq 9001 must appear to the client as 8001.
        assert_eq!(tr.seq_s2c(9001), 8001);
        // Client ACKing 8101 (100 bytes of response) = server byte 9101.
        assert_eq!(tr.ack_c2s(8101), 9101);
        // Server ACKing 5051 (50 bytes of request) = client byte 1051.
        assert_eq!(tr.ack_s2c(5051), 1051);
    }

    #[test]
    fn seq_translation_wraps() {
        let tr = SeqTranslation::at_binding(u32::MAX - 1, 10, 5, u32::MAX - 5);
        // near-wrap client seq maps across the boundary consistently
        let s = tr.seq_c2s(u32::MAX - 1);
        assert_eq!(s, 10);
        assert_eq!(tr.seq_c2s(u32::MAX), 11);
        assert_eq!(tr.seq_s2c(u32::MAX - 5), 5);
    }

    #[test]
    fn fin_during_handshake_allowed() {
        let mut t = MappingTable::new();
        let k = key(7);
        t.on_syn(k, 0, false).unwrap();
        t.on_client_fin(k).unwrap();
        t.on_fin_acked(k).unwrap();
        assert_eq!(t.on_last_ack(k).unwrap(), None);
        assert!(t.is_empty());
    }

    #[test]
    fn conn_key_display() {
        let k = ConnKey {
            client_ip: 0x0A00_0001,
            client_port: 8080,
        };
        assert_eq!(k.to_string(), "10.0.0.1:8080");
    }
}
