//! The HTTP-redirection alternative the paper rejects (§2.1).
//!
//! > "HTTP redirection might be used for content-aware routing. However,
//! > we do not prefer HTTP redirection because this mechanism is quite
//! > heavy-weight. Not only does it necessitate the use of one additional
//! > connection, which introduces an extra round-trip latency, but also
//! > the routing decision is performed at the application level…"
//!
//! [`HttpRedirectRouter`] makes the same content-aware decision as
//! [`crate::ContentAwareRouter`] but delivers it as a `302` instead of a
//! splice: the client receives the redirect, opens a **new** TCP
//! connection to the chosen node, and resends the request. The extra cost
//! is client-visible latency (two extra round trips: the redirect
//! response, then the fresh handshake) rather than dispatcher work — and
//! the response then flows directly from the node, bypassing the
//! dispatcher. This is exactly the trade the paper analyzes, packaged as
//! an ablation.

use crate::router::{ClusterState, RouteDecision, Router, RoutingRequest};
use cpms_model::SimDuration;
use cpms_urltable::{LookupCache, UrlTable};

/// Application-level processing of the redirect at the dispatcher:
/// user-space accept + parse + 302 serialization, rather than the kernel
/// module's in-stack handling.
pub const REDIRECT_DECISION_COST: SimDuration = SimDuration::from_micros(120);

/// Content-aware routing delivered by HTTP `302` redirects.
#[derive(Debug)]
pub struct HttpRedirectRouter {
    cache: LookupCache,
    client_rtt: SimDuration,
    lookups: u64,
    misses: u64,
}

impl HttpRedirectRouter {
    /// Creates the router. `client_rtt` is the client↔cluster round-trip
    /// time; redirection charges two extra round trips per request (the
    /// 302 itself, then the new connection's handshake).
    pub fn new(cache_entries: u64, client_rtt: SimDuration) -> Self {
        HttpRedirectRouter {
            cache: LookupCache::new(cache_entries),
            client_rtt,
            lookups: 0,
            misses: 0,
        }
    }

    /// Total routing lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups that found no record.
    pub fn unroutable(&self) -> u64 {
        self.misses
    }

    /// The extra client-visible latency each redirected request pays.
    pub fn redirect_latency(&self) -> SimDuration {
        self.client_rtt.mul_f64(2.0)
    }
}

impl Router for HttpRedirectRouter {
    fn name(&self) -> &'static str {
        "http-redirect"
    }

    fn is_content_aware(&self) -> bool {
        true
    }

    fn route(
        &mut self,
        req: &RoutingRequest<'_>,
        state: &ClusterState,
        table: &UrlTable,
    ) -> Option<RouteDecision> {
        self.lookups += 1;
        let entry = match self.cache.lookup(table, req.path) {
            Some(e) => e,
            None => {
                self.misses += 1;
                return None;
            }
        };
        let node = entry
            .locations()
            .iter()
            .copied()
            .filter(|n| state.is_alive(*n))
            .min_by(|a, b| {
                state
                    .normalized_load(*a)
                    .partial_cmp(&state.normalized_load(*b))
                    .expect("loads are finite")
            })?;
        Some(
            RouteDecision::new(node, REDIRECT_DECISION_COST)
                .with_client_latency(self.redirect_latency())
                .with_direct_response(true),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpms_model::{ContentId, ContentKind, NodeId, UrlPath};
    use cpms_urltable::UrlEntry;

    fn setup() -> (UrlTable, ClusterState, UrlPath) {
        let mut table = UrlTable::new();
        let path: UrlPath = "/a.html".parse().unwrap();
        table
            .insert(
                path.clone(),
                UrlEntry::new(ContentId(0), ContentKind::StaticHtml, 100)
                    .with_locations([NodeId(1)]),
            )
            .unwrap();
        (table, ClusterState::new(vec![1.0; 3]), path)
    }

    #[test]
    fn charges_two_round_trips_to_the_client() {
        let (table, state, path) = setup();
        let mut r = HttpRedirectRouter::new(64, SimDuration::from_millis(40));
        let req = RoutingRequest {
            client: 0,
            path: &path,
            kind: ContentKind::StaticHtml,
        };
        let d = r.route(&req, &state, &table).unwrap();
        assert_eq!(d.node, NodeId(1));
        assert_eq!(d.client_latency, SimDuration::from_millis(80));
        assert!(d.direct_response, "response bypasses the dispatcher");
        assert_eq!(d.cost, REDIRECT_DECISION_COST);
    }

    #[test]
    fn is_content_aware_and_counts_misses() {
        let (table, state, _) = setup();
        let mut r = HttpRedirectRouter::new(64, SimDuration::from_millis(1));
        assert!(r.is_content_aware());
        let missing: UrlPath = "/missing".parse().unwrap();
        let req = RoutingRequest {
            client: 0,
            path: &missing,
            kind: ContentKind::StaticHtml,
        };
        assert!(r.route(&req, &state, &table).is_none());
        assert_eq!(r.unroutable(), 1);
        assert_eq!(r.lookups(), 1);
    }

    #[test]
    fn dead_nodes_not_redirected_to() {
        let (table, mut state, path) = setup();
        let mut r = HttpRedirectRouter::new(64, SimDuration::from_millis(1));
        state.set_alive(NodeId(1), false);
        let req = RoutingRequest {
            client: 0,
            path: &path,
            kind: ContentKind::StaticHtml,
        };
        assert!(r.route(&req, &state, &table).is_none());
    }
}
