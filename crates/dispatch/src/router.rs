//! The routing-policy abstraction shared by the simulator and the live
//! proxy.

use cpms_model::{ContentKind, NodeId, SimDuration, UrlPath};
use cpms_urltable::UrlTable;

/// Live cluster information a router may consult: static capacity weights
/// and the current number of in-flight connections per node (what a TCP
/// connection router tracks in practice).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterState {
    weights: Vec<f64>,
    active: Vec<u32>,
    alive: Vec<bool>,
}

impl ClusterState {
    /// Creates state for nodes with the given capacity weights, all alive
    /// with zero connections.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or contains non-positive values.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "cluster must have at least one node");
        assert!(
            weights.iter().all(|w| *w > 0.0 && w.is_finite()),
            "weights must be positive and finite"
        );
        let n = weights.len();
        ClusterState {
            weights,
            active: vec![0; n],
            alive: vec![true; n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.weights.len()
    }

    /// Static capacity weight of `node`.
    pub fn weight(&self, node: NodeId) -> f64 {
        self.weights[node.index()]
    }

    /// Current in-flight connections on `node`.
    pub fn active_connections(&self, node: NodeId) -> u32 {
        self.active[node.index()]
    }

    /// Whether `node` is up.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// Marks a connection opened on `node`.
    pub fn connection_opened(&mut self, node: NodeId) {
        self.active[node.index()] += 1;
    }

    /// Marks a connection closed on `node`.
    ///
    /// # Panics
    ///
    /// Panics if no connection is open on `node` (accounting bug).
    pub fn connection_closed(&mut self, node: NodeId) {
        let a = &mut self.active[node.index()];
        *a = a.checked_sub(1).expect("connection count underflow");
    }

    /// Marks `node` up or down (failure injection).
    pub fn set_alive(&mut self, node: NodeId, alive: bool) {
        self.alive[node.index()] = alive;
    }

    /// The load figure WLC minimizes: `active / weight`.
    pub fn normalized_load(&self, node: NodeId) -> f64 {
        self.active[node.index()] as f64 / self.weights[node.index()]
    }

    /// Iterator over alive node ids.
    pub fn alive_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, a)| **a)
            .map(|(i, _)| NodeId(i as u16))
    }
}

/// What a router needs to know about one incoming request.
///
/// Content-blind (layer-4 / DNS) routers see only the client identity —
/// they decide *before* the HTTP request is readable (§2.1: "they determine
/// the target server before the client sends out the HTTP request").
/// Content-aware routers additionally use `path`/`kind`.
#[derive(Debug, Clone, Copy)]
pub struct RoutingRequest<'a> {
    /// Client identity (source address surrogate).
    pub client: u32,
    /// The requested URL path.
    pub path: &'a UrlPath,
    /// The content kind (derived from the path by classification).
    pub kind: ContentKind,
}

/// A routing decision: the chosen node plus the costs of getting the
/// request there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// The selected back-end node.
    pub node: NodeId,
    /// Dispatcher processing time for this request (decision + connection
    /// binding; §5.2 measured ~4.32 µs for the table lookup alone).
    pub cost: SimDuration,
    /// Extra client-visible latency this mechanism imposes before the
    /// request reaches the node (zero for spliced/L4 routing; two round
    /// trips for HTTP redirection).
    pub client_latency: SimDuration,
    /// Whether the response flows directly from the node to the client,
    /// bypassing the dispatcher's relay path (true for HTTP redirection
    /// and DNS routing; false for splicing/L4 rewriting).
    pub direct_response: bool,
}

impl RouteDecision {
    /// A spliced/relayed decision with no extra client latency.
    pub fn new(node: NodeId, cost: SimDuration) -> Self {
        RouteDecision {
            node,
            cost,
            client_latency: SimDuration::ZERO,
            direct_response: false,
        }
    }

    /// Adds client-visible mechanism latency (builder-style).
    #[must_use]
    pub fn with_client_latency(mut self, latency: SimDuration) -> Self {
        self.client_latency = latency;
        self
    }

    /// Marks the response as bypassing the dispatcher (builder-style).
    #[must_use]
    pub fn with_direct_response(mut self, direct: bool) -> Self {
        self.direct_response = direct;
        self
    }
}

/// A request-routing policy.
///
/// Implementations must be deterministic given their internal state; any
/// randomness comes from seeded RNGs owned by the policy.
pub trait Router: Send {
    /// The policy's display name for reports.
    fn name(&self) -> &'static str;

    /// Picks a node for `req`, or `None` if no routable node exists (no
    /// location in the table / all nodes down). Content-blind policies
    /// ignore `table`.
    fn route(
        &mut self,
        req: &RoutingRequest<'_>,
        state: &ClusterState,
        table: &UrlTable,
    ) -> Option<RouteDecision>;

    /// Whether the policy reads the HTTP request (layer-7). Content-blind
    /// policies can run on a layer-4 router.
    fn is_content_aware(&self) -> bool {
        false
    }

    /// Notification that a request previously routed to `node` completed.
    /// Default: no-op; policies with internal accounting can override.
    fn on_complete(&mut self, _node: NodeId) {}
}

/// DNS-style round robin: each *client* is bound to one node (a DNS answer
/// cached by the client resolver); all its requests go there regardless of
/// load or content. §2.1 dismisses this approach as content-blind and
/// staleness-prone.
#[derive(Debug, Clone, Default)]
pub struct DnsRoundRobin {
    _priv: (),
}

impl DnsRoundRobin {
    /// Creates the policy.
    pub fn new() -> Self {
        DnsRoundRobin::default()
    }
}

impl Router for DnsRoundRobin {
    fn name(&self) -> &'static str {
        "dns-round-robin"
    }

    fn route(
        &mut self,
        req: &RoutingRequest<'_>,
        state: &ClusterState,
        _table: &UrlTable,
    ) -> Option<RouteDecision> {
        // Hash the client onto the node set; skip dead nodes by probing.
        let n = state.node_count();
        for probe in 0..n {
            let idx = (req.client as usize + probe) % n;
            let node = NodeId(idx as u16);
            if state.is_alive(node) {
                // DNS resolution happened out of band; per-request cost at
                // the cluster is nil, and traffic never touches a
                // dispatcher at all.
                return Some(
                    RouteDecision::new(node, SimDuration::ZERO).with_direct_response(true),
                );
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_state_accounting() {
        let mut s = ClusterState::new(vec![1.0, 2.0]);
        s.connection_opened(NodeId(0));
        s.connection_opened(NodeId(0));
        s.connection_opened(NodeId(1));
        assert_eq!(s.active_connections(NodeId(0)), 2);
        assert_eq!(s.normalized_load(NodeId(0)), 2.0);
        assert_eq!(s.normalized_load(NodeId(1)), 0.5);
        s.connection_closed(NodeId(0));
        assert_eq!(s.active_connections(NodeId(0)), 1);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn close_without_open_panics() {
        let mut s = ClusterState::new(vec![1.0]);
        s.connection_closed(NodeId(0));
    }

    #[test]
    fn alive_nodes_iteration() {
        let mut s = ClusterState::new(vec![1.0, 1.0, 1.0]);
        s.set_alive(NodeId(1), false);
        let alive: Vec<NodeId> = s.alive_nodes().collect();
        assert_eq!(alive, vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn dns_rr_is_client_sticky() {
        let mut r = DnsRoundRobin::new();
        let s = ClusterState::new(vec![1.0; 4]);
        let table = UrlTable::new();
        let path: UrlPath = "/x.html".parse().unwrap();
        let req = |client| RoutingRequest {
            client,
            path: &path,
            kind: ContentKind::StaticHtml,
        };
        let d1 = r.route(&req(5), &s, &table).unwrap();
        let d2 = r.route(&req(5), &s, &table).unwrap();
        assert_eq!(d1.node, d2.node, "same client always lands on same node");
        assert_eq!(d1.node, NodeId(1));
        assert!(!r.is_content_aware());
    }

    #[test]
    fn dns_rr_skips_dead_nodes() {
        let mut r = DnsRoundRobin::new();
        let mut s = ClusterState::new(vec![1.0; 4]);
        s.set_alive(NodeId(1), false);
        let table = UrlTable::new();
        let path: UrlPath = "/x.html".parse().unwrap();
        let req = RoutingRequest {
            client: 5,
            path: &path,
            kind: ContentKind::StaticHtml,
        };
        assert_eq!(r.route(&req, &s, &table).unwrap().node, NodeId(2));
        // all dead -> None
        for i in 0..4 {
            s.set_alive(NodeId(i), false);
        }
        assert!(r.route(&req, &s, &table).is_none());
    }
}
