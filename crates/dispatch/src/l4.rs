//! Layer-4 (content-blind) routing policies.
//!
//! These model the TCP connection router of the authors' previous work \[2\],
//! which fronts configurations 1 and 2 in the §5.3 experiments. The paper:
//! "In the TCP connection router, we implemented 'Weight Least Connection'
//! mechanism for load distribution."

use crate::router::{ClusterState, RouteDecision, Router, RoutingRequest};
use cpms_model::{NodeId, SimDuration};
use cpms_urltable::UrlTable;

/// Per-request dispatcher overhead of a layer-4 router: rewriting one
/// connection's packets at kernel level. Cheaper than layer-7 since no HTTP
/// parse or table lookup happens.
pub const L4_DECISION_COST: SimDuration = SimDuration::from_micros(20);

/// Plain round robin over alive nodes.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates the policy.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Router for RoundRobin {
    fn name(&self) -> &'static str {
        "l4-round-robin"
    }

    fn route(
        &mut self,
        _req: &RoutingRequest<'_>,
        state: &ClusterState,
        _table: &UrlTable,
    ) -> Option<RouteDecision> {
        let n = state.node_count();
        for probe in 0..n {
            let idx = (self.next + probe) % n;
            let node = NodeId(idx as u16);
            if state.is_alive(node) {
                self.next = (idx + 1) % n;
                return Some(RouteDecision::new(node, L4_DECISION_COST));
            }
        }
        None
    }
}

/// Weighted Least Connections: pick the alive node minimizing
/// `active_connections / weight` — the policy the paper's baseline TCP
/// connection router uses.
#[derive(Debug, Clone, Default)]
pub struct WeightedLeastConnections {
    _priv: (),
}

impl WeightedLeastConnections {
    /// Creates the policy.
    pub fn new() -> Self {
        WeightedLeastConnections::default()
    }
}

impl Router for WeightedLeastConnections {
    fn name(&self) -> &'static str {
        "l4-weighted-least-connections"
    }

    fn route(
        &mut self,
        _req: &RoutingRequest<'_>,
        state: &ClusterState,
        _table: &UrlTable,
    ) -> Option<RouteDecision> {
        state
            .alive_nodes()
            .min_by(|a, b| {
                state
                    .normalized_load(*a)
                    .partial_cmp(&state.normalized_load(*b))
                    .expect("loads are finite")
            })
            .map(|node| RouteDecision::new(node, L4_DECISION_COST))
    }
}

/// Uniform random over alive nodes, from a seeded LCG (kept dependency-free
/// so the policy is `Clone + Send` without RNG plumbing).
#[derive(Debug, Clone)]
pub struct RandomRouter {
    state: u64,
}

impl RandomRouter {
    /// Creates the policy with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomRouter {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1),
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

impl Router for RandomRouter {
    fn name(&self) -> &'static str {
        "l4-random"
    }

    fn route(
        &mut self,
        _req: &RoutingRequest<'_>,
        state: &ClusterState,
        _table: &UrlTable,
    ) -> Option<RouteDecision> {
        let alive: Vec<NodeId> = state.alive_nodes().collect();
        if alive.is_empty() {
            return None;
        }
        let pick = (self.next_u64() % alive.len() as u64) as usize;
        Some(RouteDecision::new(alive[pick], L4_DECISION_COST))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpms_model::{ContentKind, UrlPath};

    fn req(path: &UrlPath) -> RoutingRequest<'_> {
        RoutingRequest {
            client: 0,
            path,
            kind: ContentKind::StaticHtml,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut r = RoundRobin::new();
        let s = ClusterState::new(vec![1.0; 3]);
        let t = UrlTable::new();
        let p: UrlPath = "/x".parse().unwrap();
        let picks: Vec<u16> = (0..6)
            .map(|_| r.route(&req(&p), &s, &t).unwrap().node.0)
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_dead() {
        let mut r = RoundRobin::new();
        let mut s = ClusterState::new(vec![1.0; 3]);
        s.set_alive(NodeId(1), false);
        let t = UrlTable::new();
        let p: UrlPath = "/x".parse().unwrap();
        let picks: Vec<u16> = (0..4)
            .map(|_| r.route(&req(&p), &s, &t).unwrap().node.0)
            .collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn wlc_prefers_lightest_normalized() {
        let mut r = WeightedLeastConnections::new();
        let mut s = ClusterState::new(vec![1.0, 2.0]);
        let t = UrlTable::new();
        let p: UrlPath = "/x".parse().unwrap();
        // node1 has 1 connection but weight 2 => load 0.5; node0 load 0.
        s.connection_opened(NodeId(1));
        assert_eq!(r.route(&req(&p), &s, &t).unwrap().node, NodeId(0));
        // now node0 has 2 connections (load 2.0) vs node1 load 0.5
        s.connection_opened(NodeId(0));
        s.connection_opened(NodeId(0));
        assert_eq!(r.route(&req(&p), &s, &t).unwrap().node, NodeId(1));
    }

    #[test]
    fn wlc_respects_weights_in_steady_state() {
        // Simulate: open connections via WLC without closing; distribution
        // should approach the weight ratio.
        let mut r = WeightedLeastConnections::new();
        let mut s = ClusterState::new(vec![1.0, 3.0]);
        let t = UrlTable::new();
        let p: UrlPath = "/x".parse().unwrap();
        let mut counts = [0u32; 2];
        for _ in 0..400 {
            let d = r.route(&req(&p), &s, &t).unwrap();
            s.connection_opened(d.node);
            counts[d.node.index()] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn random_router_covers_all_alive() {
        let mut r = RandomRouter::new(7);
        let mut s = ClusterState::new(vec![1.0; 4]);
        s.set_alive(NodeId(3), false);
        let t = UrlTable::new();
        let p: UrlPath = "/x".parse().unwrap();
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.route(&req(&p), &s, &t).unwrap().node.index()] = true;
        }
        assert_eq!(seen, [true, true, true, false]);
    }

    #[test]
    fn all_dead_returns_none() {
        let mut s = ClusterState::new(vec![1.0; 2]);
        s.set_alive(NodeId(0), false);
        s.set_alive(NodeId(1), false);
        let t = UrlTable::new();
        let p: UrlPath = "/x".parse().unwrap();
        assert!(RoundRobin::new().route(&req(&p), &s, &t).is_none());
        assert!(WeightedLeastConnections::new()
            .route(&req(&p), &s, &t)
            .is_none());
        assert!(RandomRouter::new(1).route(&req(&p), &s, &t).is_none());
    }

    #[test]
    fn l4_policies_are_content_blind() {
        assert!(!RoundRobin::new().is_content_aware());
        assert!(!WeightedLeastConnections::new().is_content_aware());
        assert!(!RandomRouter::new(1).is_content_aware());
    }
}
