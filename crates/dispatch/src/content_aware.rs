//! The content-aware distributor's routing policy (§2.2).
//!
//! On each request the distributor parses the URL, consults the URL table
//! (through the recently-accessed-entry cache), and picks the best node
//! *among those hosting the object* — we use least normalized load, the
//! natural refinement of the authors' WLC baseline. The measured per-lookup
//! cost (§5.2: ~4.32 µs average at peak on a 350 MHz machine) plus HTTP
//! parse and connection-binding overhead is charged as the decision cost.

use crate::router::{ClusterState, RouteDecision, Router, RoutingRequest};
use cpms_model::SimDuration;
use cpms_urltable::{LookupCache, UrlTable};

/// Per-request overhead of the content-aware distributor: TCP handshake
/// bookkeeping, HTTP request parse, URL-table lookup, connection binding.
/// The lookup alone was measured at ~4.32 µs in §5.2; the figure here is
/// the end-to-end per-request budget of the kernel module (\[24\] reports the
/// total forwarding overhead as "insignificant").
pub const CONTENT_AWARE_DECISION_COST: SimDuration = SimDuration::from_micros(35);

/// The content-aware routing policy.
#[derive(Debug)]
pub struct ContentAwareRouter {
    cache: LookupCache,
    decision_cost: SimDuration,
    lookups: u64,
    misses: u64,
}

impl ContentAwareRouter {
    /// Creates the router with a lookup cache of `cache_entries` recent
    /// records (0 disables caching — the §5.2 ablation).
    pub fn new(cache_entries: u64) -> Self {
        ContentAwareRouter {
            cache: LookupCache::new(cache_entries),
            decision_cost: CONTENT_AWARE_DECISION_COST,
            lookups: 0,
            misses: 0,
        }
    }

    /// Overrides the per-request decision cost (for sensitivity studies).
    #[must_use]
    pub fn with_decision_cost(mut self, cost: SimDuration) -> Self {
        self.decision_cost = cost;
        self
    }

    /// Total routing lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups that found no record (unroutable requests).
    pub fn unroutable(&self) -> u64 {
        self.misses
    }

    /// Hit rate of the recently-accessed-entry cache.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }
}

impl Router for ContentAwareRouter {
    fn name(&self) -> &'static str {
        "content-aware"
    }

    fn is_content_aware(&self) -> bool {
        true
    }

    fn route(
        &mut self,
        req: &RoutingRequest<'_>,
        state: &ClusterState,
        table: &UrlTable,
    ) -> Option<RouteDecision> {
        self.lookups += 1;
        let entry = match self.cache.lookup(table, req.path) {
            Some(e) => e,
            None => {
                self.misses += 1;
                return None;
            }
        };
        let node = entry
            .locations()
            .iter()
            .copied()
            .filter(|n| state.is_alive(*n))
            .min_by(|a, b| {
                state
                    .normalized_load(*a)
                    .partial_cmp(&state.normalized_load(*b))
                    .expect("loads are finite")
            })?;
        Some(RouteDecision::new(node, self.decision_cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpms_model::{ContentId, ContentKind, NodeId, UrlPath};
    use cpms_urltable::UrlEntry;

    fn setup() -> (UrlTable, ClusterState, UrlPath) {
        let mut table = UrlTable::new();
        let path: UrlPath = "/shop/cart.cgi".parse().unwrap();
        table
            .insert(
                path.clone(),
                UrlEntry::new(ContentId(9), ContentKind::Cgi, 512)
                    .with_locations([NodeId(1), NodeId(2)]),
            )
            .unwrap();
        (table, ClusterState::new(vec![1.0; 4]), path)
    }

    fn req(path: &UrlPath) -> RoutingRequest<'_> {
        RoutingRequest {
            client: 0,
            path,
            kind: ContentKind::Cgi,
        }
    }

    #[test]
    fn routes_only_to_hosting_nodes() {
        let (table, state, path) = setup();
        let mut r = ContentAwareRouter::new(16);
        for _ in 0..10 {
            let d = r.route(&req(&path), &state, &table).unwrap();
            assert!(d.node == NodeId(1) || d.node == NodeId(2));
        }
        assert!(r.is_content_aware());
    }

    #[test]
    fn picks_least_loaded_replica() {
        let (table, mut state, path) = setup();
        let mut r = ContentAwareRouter::new(16);
        state.connection_opened(NodeId(1));
        state.connection_opened(NodeId(1));
        let d = r.route(&req(&path), &state, &table).unwrap();
        assert_eq!(d.node, NodeId(2));
    }

    #[test]
    fn unknown_path_is_unroutable() {
        let (table, state, _) = setup();
        let mut r = ContentAwareRouter::new(16);
        let missing: UrlPath = "/nope.html".parse().unwrap();
        assert!(r.route(&req(&missing), &state, &table).is_none());
        assert_eq!(r.unroutable(), 1);
        assert_eq!(r.lookups(), 1);
    }

    #[test]
    fn dead_replicas_skipped() {
        let (table, mut state, path) = setup();
        let mut r = ContentAwareRouter::new(16);
        state.set_alive(NodeId(1), false);
        assert_eq!(
            r.route(&req(&path), &state, &table).unwrap().node,
            NodeId(2)
        );
        state.set_alive(NodeId(2), false);
        assert!(r.route(&req(&path), &state, &table).is_none());
    }

    #[test]
    fn sees_replication_changes() {
        let (mut table, mut state, path) = setup();
        let mut r = ContentAwareRouter::new(16);
        // warm the cache
        r.route(&req(&path), &state, &table).unwrap();
        // auto-replication adds node 3 and the others get busy
        table.add_location(&path, NodeId(3)).unwrap();
        state.connection_opened(NodeId(1));
        state.connection_opened(NodeId(2));
        let d = r.route(&req(&path), &state, &table).unwrap();
        assert_eq!(
            d.node,
            NodeId(3),
            "cache must observe table generation bump"
        );
    }

    #[test]
    fn cache_hit_rate_accumulates() {
        let (table, state, path) = setup();
        let mut r = ContentAwareRouter::new(16);
        for _ in 0..10 {
            r.route(&req(&path), &state, &table).unwrap();
        }
        assert!(r.cache_hit_rate() > 0.8);
    }

    #[test]
    fn decision_cost_override() {
        let (table, state, path) = setup();
        let mut r = ContentAwareRouter::new(16).with_decision_cost(SimDuration::from_micros(99));
        let d = r.route(&req(&path), &state, &table).unwrap();
        assert_eq!(d.cost, SimDuration::from_micros(99));
    }
}
