//! Primary/backup fault tolerance for the distributor (§2.3).
//!
//! > "We implemented the primary/backup(s) mechanism … to achieve fault
//! > tolerance of the distributor. While the *primary* distributor is
//! > providing service normally, the *backup* distributor remains in a
//! > monitor state, continuing to monitor the primary and replicate the
//! > primary's state. If the primary distributor fails, the backup takes
//! > over the job of the primary and creates its own backup."
//!
//! State replication here ships full snapshots of the distributor's data
//! plane (mapping table + connection pool), which both `Clone` and
//! serialize; heartbeats detect primary failure.

use crate::relay::Distributor;
use serde::{Deserialize, Serialize};

/// A heartbeat message from the primary, carrying a monotone sequence
/// number and (periodically) a state snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Heartbeat {
    /// Monotone heartbeat counter.
    pub seq: u64,
    /// Included every `snapshot_every` beats.
    pub snapshot: Option<Distributor>,
}

/// The backup distributor: monitors heartbeats, replicates snapshots, and
/// promotes itself when the primary goes silent.
#[derive(Debug, Clone)]
pub struct BackupDistributor {
    last_snapshot: Option<Distributor>,
    last_seq: u64,
    missed: u32,
    miss_threshold: u32,
}

/// Outcome of a monitoring step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorVerdict {
    /// Primary healthy.
    PrimaryHealthy,
    /// Beats missed but below the threshold.
    Suspicious {
        /// Consecutive missed beats so far.
        missed: u32,
    },
    /// Threshold crossed: the backup should take over.
    PrimaryFailed,
}

impl BackupDistributor {
    /// Creates a backup that declares the primary dead after
    /// `miss_threshold` consecutive missed heartbeats.
    ///
    /// # Panics
    ///
    /// Panics if `miss_threshold` is 0.
    pub fn new(miss_threshold: u32) -> Self {
        assert!(miss_threshold > 0, "threshold must be at least 1");
        BackupDistributor {
            last_snapshot: None,
            last_seq: 0,
            missed: 0,
            miss_threshold,
        }
    }

    /// Processes a received heartbeat: resets the miss counter and applies
    /// any included snapshot. Out-of-order (stale) heartbeats are ignored.
    pub fn on_heartbeat(&mut self, hb: Heartbeat) {
        if hb.seq < self.last_seq {
            return; // stale, reordered message
        }
        self.last_seq = hb.seq;
        self.missed = 0;
        if let Some(snapshot) = hb.snapshot {
            self.last_snapshot = Some(snapshot);
        }
    }

    /// Called on each heartbeat interval in which nothing arrived.
    pub fn on_heartbeat_missed(&mut self) -> MonitorVerdict {
        self.missed += 1;
        if self.missed >= self.miss_threshold {
            MonitorVerdict::PrimaryFailed
        } else {
            MonitorVerdict::Suspicious {
                missed: self.missed,
            }
        }
    }

    /// Whether a takeover would have replicated state to resume from.
    pub fn has_snapshot(&self) -> bool {
        self.last_snapshot.is_some()
    }

    /// Promotes the backup: returns the replicated distributor state to run
    /// as the new primary. The paper's new primary then "creates its own
    /// backup" — callers construct a fresh [`BackupDistributor`] for that.
    ///
    /// Returns `None` if no snapshot was ever received (cold takeover: the
    /// caller starts a fresh distributor and live connections are lost).
    pub fn take_over(self) -> Option<Distributor> {
        self.last_snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ConnKey;
    use cpms_model::NodeId;

    fn key(port: u16) -> ConnKey {
        ConnKey {
            client_ip: 1,
            client_port: port,
        }
    }

    fn primary_with_connections() -> Distributor {
        let mut d = Distributor::new(2, 2);
        for port in [1u16, 2] {
            let k = key(port);
            d.accept_syn(k, 100, false).unwrap();
            d.complete_handshake(k).unwrap();
            d.bind(k, NodeId(0), 101).unwrap();
        }
        d
    }

    #[test]
    fn snapshot_replication_preserves_connections() {
        let primary = primary_with_connections();
        let mut backup = BackupDistributor::new(3);
        backup.on_heartbeat(Heartbeat {
            seq: 1,
            snapshot: Some(primary.clone()),
        });
        assert!(backup.has_snapshot());

        // Primary dies; threshold crossings...
        assert_eq!(
            backup.on_heartbeat_missed(),
            MonitorVerdict::Suspicious { missed: 1 }
        );
        assert_eq!(
            backup.on_heartbeat_missed(),
            MonitorVerdict::Suspicious { missed: 2 }
        );
        assert_eq!(backup.on_heartbeat_missed(), MonitorVerdict::PrimaryFailed);

        let new_primary = backup.take_over().expect("snapshot available");
        // Replicated state matches what the primary had: both live
        // connections and their pool checkouts survive.
        assert_eq!(new_primary.mapping().len(), primary.mapping().len());
        assert_eq!(
            new_primary.pool().in_use(NodeId(0)),
            primary.pool().in_use(NodeId(0))
        );
        // And the new primary can keep serving them: close one out.
        let mut np = new_primary;
        let fin = np.client_fin(key(1), 200).unwrap();
        assert!(fin.flags.ack);
        np.last_ack(key(1), 10, 10).unwrap();
        assert_eq!(np.mapping().len(), 1);
    }

    #[test]
    fn heartbeats_reset_miss_counter() {
        let mut backup = BackupDistributor::new(2);
        backup.on_heartbeat_missed();
        backup.on_heartbeat(Heartbeat {
            seq: 1,
            snapshot: None,
        });
        // counter was reset; one more miss is only suspicious
        assert_eq!(
            backup.on_heartbeat_missed(),
            MonitorVerdict::Suspicious { missed: 1 }
        );
    }

    #[test]
    fn stale_heartbeats_ignored() {
        let mut backup = BackupDistributor::new(2);
        let newer = primary_with_connections();
        backup.on_heartbeat(Heartbeat {
            seq: 10,
            snapshot: Some(newer),
        });
        // A delayed old snapshot (empty distributor) must not clobber state.
        backup.on_heartbeat(Heartbeat {
            seq: 3,
            snapshot: Some(Distributor::new(2, 2)),
        });
        let d = backup.take_over().unwrap();
        assert_eq!(d.mapping().len(), 2, "kept the newer snapshot");
    }

    #[test]
    fn cold_takeover_returns_none() {
        let backup = BackupDistributor::new(1);
        assert!(!backup.has_snapshot());
        assert!(backup.take_over().is_none());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threshold_panics() {
        let _ = BackupDistributor::new(0);
    }
}
