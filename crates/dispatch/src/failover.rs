//! Primary/backup fault tolerance for the distributor (§2.3).
//!
//! > "We implemented the primary/backup(s) mechanism … to achieve fault
//! > tolerance of the distributor. While the *primary* distributor is
//! > providing service normally, the *backup* distributor remains in a
//! > monitor state, continuing to monitor the primary and replicate the
//! > primary's state. If the primary distributor fails, the backup takes
//! > over the job of the primary and creates its own backup."
//!
//! State replication here ships full snapshots of the distributor's data
//! plane (mapping table + connection pool), which both `Clone` and
//! serialize; heartbeats detect primary failure.
//!
//! Heartbeats ride the same `cpms-wire` framing as broker RPCs: a
//! [`HeartbeatSender`] on the primary pushes [`Heartbeat`] messages
//! through any [`cpms_wire::Transport`] to a [`HeartbeatListener`]
//! service wrapping the backup. Each beat also carries the primary's
//! URL-table publication *generation*, so a promoted backup can tell
//! whether its replicated snapshot is stale relative to the last table
//! state the primary acknowledged ([`BackupDistributor::snapshot_is_stale`]).

use crate::relay::Distributor;
use cpms_wire::{Client, RetryPolicy, Transport, WireError};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// A heartbeat message from the primary, carrying a monotone sequence
/// number, the URL-table publication generation at send time, and
/// (periodically) a state snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Heartbeat {
    /// Monotone heartbeat counter.
    pub seq: u64,
    /// URL-table publication generation on the primary when this beat
    /// was sent (see `cpms_urltable::TablePublisher::generation`).
    pub generation: u64,
    /// Included every `snapshot_every` beats.
    pub snapshot: Option<Distributor>,
}

/// The backup's acknowledgement of one heartbeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeartbeatAck {
    /// Echo of the acknowledged sequence number (0 if the beat could not
    /// be decoded).
    pub seq: u64,
}

/// The backup distributor: monitors heartbeats, replicates snapshots, and
/// promotes itself when the primary goes silent.
#[derive(Debug, Clone)]
pub struct BackupDistributor {
    last_snapshot: Option<Distributor>,
    last_seq: u64,
    last_generation: u64,
    snapshot_generation: u64,
    generation_regressions: u64,
    missed: u32,
    miss_threshold: u32,
}

/// Outcome of a monitoring step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorVerdict {
    /// Primary healthy.
    PrimaryHealthy,
    /// Beats missed but below the threshold.
    Suspicious {
        /// Consecutive missed beats so far.
        missed: u32,
    },
    /// Threshold crossed: the backup should take over.
    PrimaryFailed,
}

impl BackupDistributor {
    /// Creates a backup that declares the primary dead after
    /// `miss_threshold` consecutive missed heartbeats.
    ///
    /// # Panics
    ///
    /// Panics if `miss_threshold` is 0.
    pub fn new(miss_threshold: u32) -> Self {
        assert!(miss_threshold > 0, "threshold must be at least 1");
        BackupDistributor {
            last_snapshot: None,
            last_seq: 0,
            last_generation: 0,
            snapshot_generation: 0,
            generation_regressions: 0,
            missed: 0,
            miss_threshold,
        }
    }

    /// Processes a received heartbeat: resets the miss counter and applies
    /// any included snapshot. Out-of-order (stale) heartbeats are ignored.
    pub fn on_heartbeat(&mut self, hb: Heartbeat) {
        if hb.seq < self.last_seq {
            return; // stale, reordered message
        }
        self.last_seq = hb.seq;
        if hb.generation < self.last_generation {
            // A *fresh* beat reporting an older table generation: the
            // primary's URL table went backwards (or a promotion lost
            // publications). Publications must be monotone, so record the
            // anomaly rather than silently clamping.
            self.generation_regressions += 1;
        }
        self.last_generation = self.last_generation.max(hb.generation);
        self.missed = 0;
        if let Some(snapshot) = hb.snapshot {
            self.last_snapshot = Some(snapshot);
            self.snapshot_generation = hb.generation;
        }
    }

    /// The highest URL-table publication generation any heartbeat has
    /// reported.
    pub fn last_seen_generation(&self) -> u64 {
        self.last_generation
    }

    /// The URL-table generation the replicated snapshot was taken at.
    pub fn snapshot_generation(&self) -> u64 {
        self.snapshot_generation
    }

    /// How many in-order heartbeats reported a URL-table generation
    /// *older* than one already acknowledged. Always 0 in a healthy
    /// cluster: publications are monotone, so any regression means the
    /// primary restarted with amnesia or a promotion dropped table
    /// state — the chaos-lab's generation-monotone assertion in
    /// diagnostic-counter form.
    pub fn generation_regressions(&self) -> u64 {
        self.generation_regressions
    }

    /// Whether the primary acknowledged table publications *newer* than
    /// the replicated snapshot. A promoted backup whose snapshot is stale
    /// must refresh its URL table from the controller before routing, or
    /// it may route to copies that moved since the snapshot was taken.
    pub fn snapshot_is_stale(&self) -> bool {
        self.last_snapshot.is_some() && self.last_generation > self.snapshot_generation
    }

    /// Called on each heartbeat interval in which nothing arrived.
    pub fn on_heartbeat_missed(&mut self) -> MonitorVerdict {
        self.missed += 1;
        if self.missed >= self.miss_threshold {
            MonitorVerdict::PrimaryFailed
        } else {
            MonitorVerdict::Suspicious {
                missed: self.missed,
            }
        }
    }

    /// Whether a takeover would have replicated state to resume from.
    pub fn has_snapshot(&self) -> bool {
        self.last_snapshot.is_some()
    }

    /// Promotes the backup: returns the replicated distributor state to run
    /// as the new primary. The paper's new primary then "creates its own
    /// backup" — callers construct a fresh [`BackupDistributor`] for that.
    ///
    /// Returns `None` if no snapshot was ever received (cold takeover: the
    /// caller starts a fresh distributor and live connections are lost).
    pub fn take_over(self) -> Option<Distributor> {
        self.last_snapshot
    }
}

/// Default per-beat deadline. Tight on purpose: a beat that cannot be
/// delivered quickly is as good as lost, and the next one supersedes it.
pub const HEARTBEAT_DEADLINE: Duration = Duration::from_millis(250);

/// The primary-side heartbeat pump: pushes [`Heartbeat`]s to the backup
/// over any [`cpms_wire::Transport`], including a full state snapshot on
/// the first beat and every `snapshot_every` beats after.
///
/// Beats are sent with [`RetryPolicy::no_retry`]: retrying a stale beat
/// is worse than useless, because the next interval's beat carries newer
/// state. A lost beat simply shows up as a miss on the backup's side.
#[derive(Debug)]
pub struct HeartbeatSender {
    client: Client,
    seq: u64,
    snapshot_every: u64,
}

impl HeartbeatSender {
    /// Creates a sender that snapshots every `snapshot_every` beats (the
    /// first beat always carries a snapshot so a fresh backup warms up
    /// immediately).
    ///
    /// # Panics
    ///
    /// Panics if `snapshot_every` is 0.
    pub fn new(transport: Arc<dyn Transport>, snapshot_every: u64) -> Self {
        assert!(snapshot_every > 0, "snapshot_every must be at least 1");
        HeartbeatSender {
            client: Client::new(transport)
                .with_deadline(HEARTBEAT_DEADLINE)
                .with_retry(RetryPolicy::no_retry()),
            seq: 0,
            snapshot_every,
        }
    }

    /// The wire client (stats, metrics attachment).
    pub fn client(&self) -> &Client {
        &self.client
    }

    /// Sends the next heartbeat for `primary`, stamping it with the
    /// primary's current URL-table publication `generation`. Returns the
    /// acknowledged sequence number.
    ///
    /// # Errors
    ///
    /// The wire failure if the beat or its ack was lost; the sequence
    /// number still advances, so the backup sees a gap, not a replay.
    pub fn beat(&mut self, primary: &Distributor, generation: u64) -> Result<u64, WireError> {
        self.seq += 1;
        let snapshot = if self.seq == 1 || self.seq.is_multiple_of(self.snapshot_every) {
            Some(primary.clone())
        } else {
            None
        };
        let hb = Heartbeat {
            seq: self.seq,
            generation,
            snapshot,
        };
        let ack: HeartbeatAck = self.client.call(&hb)?;
        Ok(ack.seq)
    }

    /// Beats sent so far (including lost ones).
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

/// The backup-side wire service: decodes [`Heartbeat`]s, feeds them to a
/// shared [`BackupDistributor`], and acks. Serve it with
/// [`cpms_wire::InProcServer`] or [`cpms_wire::TcpServer`]; the shared
/// handle keeps observing misses and can promote while the listener runs.
#[derive(Debug, Clone)]
pub struct HeartbeatListener {
    backup: Arc<Mutex<BackupDistributor>>,
}

impl HeartbeatListener {
    /// Wraps a backup for serving. Clone the returned listener's
    /// [`handle`][Self::handle] to keep monitoring/promotion access.
    pub fn new(backup: BackupDistributor) -> Self {
        HeartbeatListener {
            backup: Arc::new(Mutex::new(backup)),
        }
    }

    /// The shared backup the listener feeds.
    pub fn handle(&self) -> Arc<Mutex<BackupDistributor>> {
        Arc::clone(&self.backup)
    }
}

impl cpms_wire::Service for HeartbeatListener {
    fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        let seq = std::str::from_utf8(request)
            .ok()
            .and_then(|text| serde_json::from_str::<Heartbeat>(text).ok())
            .map_or(0, |hb| {
                let seq = hb.seq;
                self.backup.lock().on_heartbeat(hb);
                seq
            });
        serde_json::to_string(&HeartbeatAck { seq })
            .expect("acks always serialize")
            .into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ConnKey;
    use cpms_model::NodeId;

    fn key(port: u16) -> ConnKey {
        ConnKey {
            client_ip: 1,
            client_port: port,
        }
    }

    fn primary_with_connections() -> Distributor {
        let mut d = Distributor::new(2, 2);
        for port in [1u16, 2] {
            let k = key(port);
            d.accept_syn(k, 100, false).unwrap();
            d.complete_handshake(k).unwrap();
            d.bind(k, NodeId(0), 101).unwrap();
        }
        d
    }

    #[test]
    fn snapshot_replication_preserves_connections() {
        let primary = primary_with_connections();
        let mut backup = BackupDistributor::new(3);
        backup.on_heartbeat(Heartbeat {
            seq: 1,
            generation: 1,
            snapshot: Some(primary.clone()),
        });
        assert!(backup.has_snapshot());

        // Primary dies; threshold crossings...
        assert_eq!(
            backup.on_heartbeat_missed(),
            MonitorVerdict::Suspicious { missed: 1 }
        );
        assert_eq!(
            backup.on_heartbeat_missed(),
            MonitorVerdict::Suspicious { missed: 2 }
        );
        assert_eq!(backup.on_heartbeat_missed(), MonitorVerdict::PrimaryFailed);

        let new_primary = backup.take_over().expect("snapshot available");
        // Replicated state matches what the primary had: both live
        // connections and their pool checkouts survive.
        assert_eq!(new_primary.mapping().len(), primary.mapping().len());
        assert_eq!(
            new_primary.pool().in_use(NodeId(0)),
            primary.pool().in_use(NodeId(0))
        );
        // And the new primary can keep serving them: close one out.
        let mut np = new_primary;
        let fin = np.client_fin(key(1), 200).unwrap();
        assert!(fin.flags.ack);
        np.last_ack(key(1), 10, 10).unwrap();
        assert_eq!(np.mapping().len(), 1);
    }

    #[test]
    fn heartbeats_reset_miss_counter() {
        let mut backup = BackupDistributor::new(2);
        backup.on_heartbeat_missed();
        backup.on_heartbeat(Heartbeat {
            seq: 1,
            generation: 0,
            snapshot: None,
        });
        // counter was reset; one more miss is only suspicious
        assert_eq!(
            backup.on_heartbeat_missed(),
            MonitorVerdict::Suspicious { missed: 1 }
        );
    }

    #[test]
    fn stale_heartbeats_ignored() {
        let mut backup = BackupDistributor::new(2);
        let newer = primary_with_connections();
        backup.on_heartbeat(Heartbeat {
            seq: 10,
            generation: 5,
            snapshot: Some(newer),
        });
        // A delayed old snapshot (empty distributor) must not clobber state.
        backup.on_heartbeat(Heartbeat {
            seq: 3,
            generation: 2,
            snapshot: Some(Distributor::new(2, 2)),
        });
        let d = backup.take_over().unwrap();
        assert_eq!(d.mapping().len(), 2, "kept the newer snapshot");
    }

    #[test]
    fn cold_takeover_returns_none() {
        let backup = BackupDistributor::new(1);
        assert!(!backup.has_snapshot());
        assert!(backup.take_over().is_none());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threshold_panics() {
        let _ = BackupDistributor::new(0);
    }

    #[test]
    fn generation_tracking_flags_stale_snapshots() {
        let mut backup = BackupDistributor::new(2);
        backup.on_heartbeat(Heartbeat {
            seq: 1,
            generation: 3,
            snapshot: Some(primary_with_connections()),
        });
        assert_eq!(backup.snapshot_generation(), 3);
        assert!(!backup.snapshot_is_stale(), "snapshot matches generation");

        // The primary publishes two more table generations without
        // shipping a fresh snapshot…
        backup.on_heartbeat(Heartbeat {
            seq: 2,
            generation: 5,
            snapshot: None,
        });
        assert_eq!(backup.last_seen_generation(), 5);
        assert!(backup.snapshot_is_stale(), "table moved past the snapshot");

        // …until the next snapshot catches up.
        backup.on_heartbeat(Heartbeat {
            seq: 3,
            generation: 5,
            snapshot: Some(primary_with_connections()),
        });
        assert!(!backup.snapshot_is_stale());
    }

    #[test]
    fn generation_regressions_are_counted_not_clamped_silently() {
        let mut backup = BackupDistributor::new(2);
        backup.on_heartbeat(Heartbeat {
            seq: 1,
            generation: 6,
            snapshot: None,
        });
        assert_eq!(backup.generation_regressions(), 0);

        // A reordered beat (stale seq) is dropped entirely — not a
        // regression, just the wire being a wire.
        backup.on_heartbeat(Heartbeat {
            seq: 0,
            generation: 2,
            snapshot: None,
        });
        assert_eq!(backup.generation_regressions(), 0);

        // A *fresh* beat going backwards is the real anomaly: an amnesiac
        // primary. The high-water mark holds, the counter records it.
        backup.on_heartbeat(Heartbeat {
            seq: 2,
            generation: 4,
            snapshot: None,
        });
        assert_eq!(backup.generation_regressions(), 1);
        assert_eq!(backup.last_seen_generation(), 6);

        // Equal generation (re-announcement) is fine.
        backup.on_heartbeat(Heartbeat {
            seq: 3,
            generation: 6,
            snapshot: None,
        });
        assert_eq!(backup.generation_regressions(), 1);
    }

    #[test]
    fn heartbeats_ride_the_wire() {
        let listener = HeartbeatListener::new(BackupDistributor::new(3));
        let shared = listener.handle();
        let (transport, mut server) = cpms_wire::InProcServer::spawn(listener);
        let mut sender = HeartbeatSender::new(Arc::new(transport), 4);

        let primary = primary_with_connections();
        // Beat 1 always snapshots; beats 2 and 3 are bare.
        for expected in 1..=3u64 {
            let acked = sender.beat(&primary, 7).unwrap();
            assert_eq!(acked, expected);
        }
        assert_eq!(sender.seq(), 3);
        {
            let backup = shared.lock();
            assert!(backup.has_snapshot());
            assert_eq!(backup.last_seen_generation(), 7);
            assert_eq!(backup.snapshot_generation(), 7);
        }

        // Primary dies: the shared handle promotes with replicated state.
        server.stop();
        assert!(sender.beat(&primary, 7).is_err(), "no listener anymore");
        let promoted = shared.lock().clone().take_over().expect("warm snapshot");
        assert_eq!(promoted.mapping().len(), primary.mapping().len());
    }

    #[test]
    fn garbage_beat_is_acked_with_zero_not_applied() {
        let listener = HeartbeatListener::new(BackupDistributor::new(1));
        let shared = listener.handle();
        let (transport, mut server) = cpms_wire::InProcServer::spawn(listener);
        let client = Client::new(Arc::new(transport));
        let raw = client.call_raw(b"{ not a heartbeat").unwrap();
        let ack: HeartbeatAck = serde_json::from_str(std::str::from_utf8(&raw).unwrap()).unwrap();
        assert_eq!(ack.seq, 0);
        assert!(!shared.lock().has_snapshot());
        server.stop();
    }
}
