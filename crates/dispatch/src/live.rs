//! The content-aware routing policy against a *published snapshot* of the
//! URL table — what each worker thread of the live distributor runs.
//!
//! [`ContentAwareRouter`](crate::ContentAwareRouter) serves the simulator,
//! where one single-threaded event loop owns the table and mutates it in
//! place. The live proxy (`cpms-httpd`) is multi-worker: the controller
//! publishes immutable table snapshots through a
//! [`TablePublisher`](cpms_urltable::TablePublisher) and every worker
//! consumes them through its own [`LiveRouter`], which pins a snapshot
//! and keeps a private [`LookupCache`](cpms_urltable::LookupCache) — no
//! shared mutable state on the per-request path.

use cpms_model::{NodeId, UrlPath};
use cpms_urltable::entry::UrlEntry;
use cpms_urltable::{SnapshotHandle, SnapshotReader};
use std::sync::Arc;

/// A per-worker content-aware router over published table snapshots.
///
/// Each request costs one atomic generation load (staleness check), a
/// private-cache lookup, and a replica choice by the caller-supplied load
/// metric — the live twin of the simulator router's least-normalized-load
/// rule, with "load" supplied by the worker (e.g. in-flight request
/// counts).
#[derive(Debug)]
pub struct LiveRouter {
    reader: SnapshotReader,
    lookups: u64,
    misses: u64,
}

impl LiveRouter {
    /// Creates a worker router over `handle` with a private cache of
    /// `cache_entries` recent records.
    pub fn new(handle: &SnapshotHandle, cache_entries: u64) -> Self {
        LiveRouter {
            reader: handle.reader(cache_entries),
            lookups: 0,
            misses: 0,
        }
    }

    /// Routes `path`: looks the record up in the freshest published
    /// snapshot and picks the hosting node minimising `load_of`. Returns
    /// the node and the record (the caller still needs sizes/kind for
    /// relaying and accounting).
    ///
    /// `None` means unroutable — no record, or a record with no location
    /// the caller can serve from (`load_of` may return `u64::MAX` to veto
    /// a node, e.g. one whose backend address is unknown).
    pub fn route(
        &mut self,
        path: &UrlPath,
        load_of: impl Fn(NodeId) -> u64,
    ) -> Option<(NodeId, Arc<UrlEntry>)> {
        self.lookups += 1;
        let Some(entry) = self.reader.lookup(path) else {
            self.misses += 1;
            return None;
        };
        let (_, node) = entry
            .locations()
            .iter()
            .copied()
            .map(|n| (load_of(n), n))
            .filter(|&(load, _)| load != u64::MAX)
            .min_by_key(|&(load, n)| (load, n.0))?;
        Some((node, entry))
    }

    /// Total routing lookups performed by this worker.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups that found no routable record.
    pub fn unroutable(&self) -> u64 {
        self.misses
    }

    /// Hit rate of this worker's private cache.
    pub fn cache_hit_rate(&self) -> f64 {
        self.reader.cache_hit_rate()
    }

    /// The generation of the snapshot this worker currently pins.
    pub fn pinned_generation(&self) -> u64 {
        self.reader.pinned_generation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpms_model::{ContentId, ContentKind};
    use cpms_urltable::{TablePublisher, UrlTable};

    fn p(s: &str) -> UrlPath {
        s.parse().unwrap()
    }

    fn publisher() -> TablePublisher {
        let mut table = UrlTable::new();
        table
            .insert(
                p("/a"),
                UrlEntry::new(ContentId(1), ContentKind::StaticHtml, 64)
                    .with_locations([NodeId(0), NodeId(1)]),
            )
            .unwrap();
        TablePublisher::new(table)
    }

    #[test]
    fn routes_to_least_loaded_replica() {
        let publisher = publisher();
        let mut router = LiveRouter::new(&publisher.handle(), 16);
        let loads = [5u64, 2u64];
        let (node, entry) = router.route(&p("/a"), |n| loads[n.index()]).unwrap();
        assert_eq!(node, NodeId(1));
        assert_eq!(entry.content(), ContentId(1));
    }

    #[test]
    fn vetoed_nodes_are_skipped() {
        let publisher = publisher();
        let mut router = LiveRouter::new(&publisher.handle(), 16);
        let (node, _) = router
            .route(&p("/a"), |n| if n == NodeId(0) { u64::MAX } else { 9 })
            .unwrap();
        assert_eq!(node, NodeId(1));
        assert!(
            router.route(&p("/a"), |_| u64::MAX).is_none(),
            "all replicas vetoed"
        );
    }

    #[test]
    fn observes_publications_through_private_cache() {
        let publisher = publisher();
        let mut router = LiveRouter::new(&publisher.handle(), 16);
        router.route(&p("/a"), |_| 0).unwrap(); // warm the cache
        publisher.update(|t| {
            t.add_location(&p("/a"), NodeId(2)).unwrap();
            t.remove_location(&p("/a"), NodeId(0)).unwrap();
            t.remove_location(&p("/a"), NodeId(1)).unwrap();
        });
        let (node, _) = router.route(&p("/a"), |_| 0).unwrap();
        assert_eq!(node, NodeId(2), "stale cached locations must not win");
    }

    #[test]
    fn counts_unroutable() {
        let publisher = publisher();
        let mut router = LiveRouter::new(&publisher.handle(), 16);
        assert!(router.route(&p("/missing"), |_| 0).is_none());
        assert_eq!(router.unroutable(), 1);
        assert_eq!(router.lookups(), 1);
    }
}
