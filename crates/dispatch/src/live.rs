//! The content-aware routing policy against a *published snapshot* of the
//! URL table — what each worker thread of the live distributor runs.
//!
//! [`ContentAwareRouter`](crate::ContentAwareRouter) serves the simulator,
//! where one single-threaded event loop owns the table and mutates it in
//! place. The live proxy (`cpms-httpd`) is multi-worker: the controller
//! publishes immutable table snapshots through a
//! [`TablePublisher`](cpms_urltable::TablePublisher) and every worker
//! consumes them through its own [`LiveRouter`], which pins a snapshot
//! and keeps a private [`LookupCache`](cpms_urltable::LookupCache) — no
//! shared mutable state on the per-request path.

use cpms_model::{NodeId, UrlPath};
use cpms_obs::{Counter, HistogramRecorder, MetricsRegistry};
use cpms_urltable::entry::UrlEntry;
use cpms_urltable::{SnapshotHandle, SnapshotReader};
use std::sync::Arc;
use std::time::Instant;

/// Metric handles a [`LiveRouter`] records through once attached —
/// resolved from the registry one time, then every route is atomics only
/// (the histogram shard is private to this router's worker).
#[derive(Debug)]
struct RouterMetrics {
    registry: Arc<MetricsRegistry>,
    route_ns: HistogramRecorder,
    lookup_ns: HistogramRecorder,
    requests: Arc<Counter>,
    unroutable: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    repins: Arc<Counter>,
    /// Per-backend selection counters, resolved lazily per node index.
    selections: Vec<Option<Arc<Counter>>>,
    /// Reader totals already folded into the shared counters, so each
    /// sync adds only the delta (counters stay aggregatable across
    /// workers).
    synced_hits: u64,
    synced_misses: u64,
    synced_repins: u64,
}

impl RouterMetrics {
    fn new(registry: &Arc<MetricsRegistry>, shard: usize) -> Self {
        RouterMetrics {
            route_ns: registry.histogram("dispatch_route_ns").recorder(shard),
            lookup_ns: registry.histogram("urltable_lookup_ns").recorder(shard),
            requests: registry.counter("dispatch_requests_total"),
            unroutable: registry.counter("dispatch_unroutable_total"),
            cache_hits: registry.counter("urltable_cache_hits_total"),
            cache_misses: registry.counter("urltable_cache_misses_total"),
            repins: registry.counter("urltable_repins_total"),
            selections: Vec::new(),
            synced_hits: 0,
            synced_misses: 0,
            synced_repins: 0,
            registry: Arc::clone(registry),
        }
    }

    fn selection(&mut self, node: NodeId) -> &Counter {
        let idx = node.index();
        if idx >= self.selections.len() {
            self.selections.resize(idx + 1, None);
        }
        self.selections[idx].get_or_insert_with(|| {
            self.registry
                .counter(&format!("dispatch_node{}_selections_total", node.0))
        })
    }

    fn sync_reader(&mut self, reader: &SnapshotReader) {
        let (hits, misses, repins) = (reader.cache_hits(), reader.cache_misses(), reader.repins());
        self.cache_hits.add(hits - self.synced_hits);
        self.cache_misses.add(misses - self.synced_misses);
        self.repins.add(repins - self.synced_repins);
        self.synced_hits = hits;
        self.synced_misses = misses;
        self.synced_repins = repins;
    }
}

/// A per-worker content-aware router over published table snapshots.
///
/// Each request costs one atomic generation load (staleness check), a
/// private-cache lookup, and a replica choice by the caller-supplied load
/// metric — the live twin of the simulator router's least-normalized-load
/// rule, with "load" supplied by the worker (e.g. in-flight request
/// counts).
#[derive(Debug)]
pub struct LiveRouter {
    reader: SnapshotReader,
    lookups: u64,
    misses: u64,
    metrics: Option<RouterMetrics>,
}

impl LiveRouter {
    /// Creates a worker router over `handle` with a private cache of
    /// `cache_entries` recent records.
    pub fn new(handle: &SnapshotHandle, cache_entries: u64) -> Self {
        LiveRouter {
            reader: handle.reader(cache_entries),
            lookups: 0,
            misses: 0,
            metrics: None,
        }
    }

    /// Attaches this router to a metrics registry: every subsequent
    /// route records the URL-table lookup latency (`urltable_lookup_ns`,
    /// the §5.2 measurement), the full routing-decision latency
    /// (`dispatch_route_ns`), per-backend selection counts, and the
    /// reader's cache-hit / re-pin counters. `shard` should be the
    /// worker index so histogram recording stays contention-free.
    pub fn attach_metrics(&mut self, registry: &Arc<MetricsRegistry>, shard: usize) {
        self.metrics = Some(RouterMetrics::new(registry, shard));
    }

    /// Routes `path`: looks the record up in the freshest published
    /// snapshot and picks the hosting node minimising `load_of`. Returns
    /// the node and the record (the caller still needs sizes/kind for
    /// relaying and accounting).
    ///
    /// `None` means unroutable — no record, or a record with no location
    /// the caller can serve from (`load_of` may return `u64::MAX` to veto
    /// a node, e.g. one whose backend address is unknown).
    pub fn route(
        &mut self,
        path: &UrlPath,
        load_of: impl Fn(NodeId) -> u64,
    ) -> Option<(NodeId, Arc<UrlEntry>)> {
        if self.metrics.is_some() {
            return self.route_instrumented(path, load_of);
        }
        self.lookups += 1;
        let Some(entry) = self.reader.lookup(path) else {
            self.misses += 1;
            return None;
        };
        Self::pick_replica(&entry, load_of).map(|node| (node, entry))
    }

    /// The instrumented twin of the plain path: identical decisions plus
    /// two span timings and a handful of relaxed atomic updates.
    fn route_instrumented(
        &mut self,
        path: &UrlPath,
        load_of: impl Fn(NodeId) -> u64,
    ) -> Option<(NodeId, Arc<UrlEntry>)> {
        self.lookups += 1;
        let start = Instant::now();
        let entry = self.reader.lookup(path);
        let lookup_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let metrics = self.metrics.as_mut().expect("checked by caller");
        metrics.lookup_ns.record(lookup_ns);
        metrics.requests.inc();
        metrics.sync_reader(&self.reader);
        let Some(entry) = entry else {
            self.misses += 1;
            metrics.unroutable.inc();
            return None;
        };
        let chosen = Self::pick_replica(&entry, load_of);
        metrics
            .route_ns
            .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        match chosen {
            Some(node) => {
                metrics.selection(node).inc();
                Some((node, entry))
            }
            None => {
                metrics.unroutable.inc();
                None
            }
        }
    }

    fn pick_replica(entry: &UrlEntry, load_of: impl Fn(NodeId) -> u64) -> Option<NodeId> {
        entry
            .locations()
            .iter()
            .copied()
            .map(|n| (load_of(n), n))
            .filter(|&(load, _)| load != u64::MAX)
            .min_by_key(|&(load, n)| (load, n.0))
            .map(|(_, node)| node)
    }

    /// Total routing lookups performed by this worker.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups that found no routable record.
    pub fn unroutable(&self) -> u64 {
        self.misses
    }

    /// Hit rate of this worker's private cache.
    pub fn cache_hit_rate(&self) -> f64 {
        self.reader.cache_hit_rate()
    }

    /// The generation of the snapshot this worker currently pins.
    pub fn pinned_generation(&self) -> u64 {
        self.reader.pinned_generation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpms_model::{ContentId, ContentKind};
    use cpms_urltable::{TablePublisher, UrlTable};

    fn p(s: &str) -> UrlPath {
        s.parse().unwrap()
    }

    fn publisher() -> TablePublisher {
        let mut table = UrlTable::new();
        table
            .insert(
                p("/a"),
                UrlEntry::new(ContentId(1), ContentKind::StaticHtml, 64)
                    .with_locations([NodeId(0), NodeId(1)]),
            )
            .unwrap();
        TablePublisher::new(table)
    }

    #[test]
    fn routes_to_least_loaded_replica() {
        let publisher = publisher();
        let mut router = LiveRouter::new(&publisher.handle(), 16);
        let loads = [5u64, 2u64];
        let (node, entry) = router.route(&p("/a"), |n| loads[n.index()]).unwrap();
        assert_eq!(node, NodeId(1));
        assert_eq!(entry.content(), ContentId(1));
    }

    #[test]
    fn vetoed_nodes_are_skipped() {
        let publisher = publisher();
        let mut router = LiveRouter::new(&publisher.handle(), 16);
        let (node, _) = router
            .route(&p("/a"), |n| if n == NodeId(0) { u64::MAX } else { 9 })
            .unwrap();
        assert_eq!(node, NodeId(1));
        assert!(
            router.route(&p("/a"), |_| u64::MAX).is_none(),
            "all replicas vetoed"
        );
    }

    #[test]
    fn observes_publications_through_private_cache() {
        let publisher = publisher();
        let mut router = LiveRouter::new(&publisher.handle(), 16);
        router.route(&p("/a"), |_| 0).unwrap(); // warm the cache
        publisher.update(|t| {
            t.add_location(&p("/a"), NodeId(2)).unwrap();
            t.remove_location(&p("/a"), NodeId(0)).unwrap();
            t.remove_location(&p("/a"), NodeId(1)).unwrap();
        });
        let (node, _) = router.route(&p("/a"), |_| 0).unwrap();
        assert_eq!(node, NodeId(2), "stale cached locations must not win");
    }

    #[test]
    fn attached_metrics_record_latencies_and_selections() {
        let publisher = publisher();
        let registry = Arc::new(MetricsRegistry::new());
        let mut router = LiveRouter::new(&publisher.handle(), 16);
        router.attach_metrics(&registry, 0);

        for _ in 0..10 {
            router.route(&p("/a"), |n| n.0 as u64).unwrap(); // node 0 wins
        }
        assert!(router.route(&p("/missing"), |_| 0).is_none());
        publisher.update(|t| t.add_location(&p("/a"), NodeId(2)).unwrap());
        router.route(&p("/a"), |n| n.0 as u64).unwrap(); // forces a re-pin

        let snap = registry.snapshot();
        assert_eq!(snap.counter("dispatch_requests_total"), Some(12));
        assert_eq!(snap.counter("dispatch_unroutable_total"), Some(1));
        assert_eq!(snap.counter("dispatch_node0_selections_total"), Some(11));
        assert_eq!(snap.counter("urltable_repins_total"), Some(1));
        let hits = snap.counter("urltable_cache_hits_total").unwrap();
        let misses = snap.counter("urltable_cache_misses_total").unwrap();
        assert_eq!(hits + misses, 12, "every lookup is a hit or a miss");
        let lookup = snap.histogram("urltable_lookup_ns").unwrap();
        assert_eq!(lookup.count, 12);
        let route = snap.histogram("dispatch_route_ns").unwrap();
        assert_eq!(route.count, 11, "unroutable lookups end before routing");
        assert!(route.max >= lookup.p50 || route.max > 0);
    }

    #[test]
    fn counts_unroutable() {
        let publisher = publisher();
        let mut router = LiveRouter::new(&publisher.handle(), 16);
        assert!(router.route(&p("/missing"), |_| 0).is_none());
        assert_eq!(router.unroutable(), 1);
        assert_eq!(router.lookups(), 1);
    }
}
