//! Packet relaying: binding client connections to pre-forked backend
//! connections and rewriting TCP headers (§2.2, Figure 1).
//!
//! > "the distributor handles the consequent packets by changing each
//! > packet's IP and TCP headers for seamlessly relaying the packet between
//! > the user connection and the pre-forked connection, so that the client
//! > and the server can transparently receive and recognize these packets."
//!
//! The paper implements this as a Linux kernel module between the NIC
//! driver and the TCP/IP stack; here the same logic is a deterministic,
//! fully testable state machine over modelled packets. The live proxy in
//! `cpms-httpd` performs the equivalent splice at socket level.

use crate::mapping::{ConnKey, MappingError, MappingTable, PreforkId, SeqTranslation};
use crate::pool::{ConnectionPool, PoolError};
use cpms_model::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// TCP flags we model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Flags {
    /// SYN flag.
    pub syn: bool,
    /// ACK flag.
    pub ack: bool,
    /// FIN flag.
    pub fin: bool,
}

/// A modelled TCP segment on either the client or the server side of the
/// distributor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number (meaningful if `flags.ack`).
    pub ack: u32,
    /// Flags.
    pub flags: Flags,
    /// Payload length in bytes.
    pub payload: u32,
}

/// Errors surfaced by the distributor's relay path.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RelayError {
    /// Mapping-table violation.
    Mapping(MappingError),
    /// Connection-pool violation.
    Pool(PoolError),
}

impl fmt::Display for RelayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelayError::Mapping(e) => write!(f, "mapping: {e}"),
            RelayError::Pool(e) => write!(f, "pool: {e}"),
        }
    }
}

impl std::error::Error for RelayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RelayError::Mapping(e) => Some(e),
            RelayError::Pool(e) => Some(e),
        }
    }
}

#[doc(hidden)]
impl From<MappingError> for RelayError {
    fn from(e: MappingError) -> Self {
        RelayError::Mapping(e)
    }
}

#[doc(hidden)]
impl From<PoolError> for RelayError {
    fn from(e: PoolError) -> Self {
        RelayError::Pool(e)
    }
}

/// The distributor's data plane: mapping table + pre-forked connection pool
/// + header rewriting.
///
/// Policy (which node to pick) is injected by the caller — see
/// [`crate::ContentAwareRouter`] — keeping mechanism and policy separable,
/// as in the paper where the URL table drives the decision and the kernel
/// module executes it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Distributor {
    mapping: MappingTable,
    pool: ConnectionPool,
}

impl Distributor {
    /// Creates a distributor fronting `node_count` backends with
    /// `conns_per_node` pre-forked persistent connections each.
    pub fn new(node_count: usize, conns_per_node: u32) -> Self {
        Distributor {
            mapping: MappingTable::new(),
            pool: ConnectionPool::prefork(node_count, conns_per_node),
        }
    }

    /// Read access to the mapping table (for monitoring / failover).
    pub fn mapping(&self) -> &MappingTable {
        &self.mapping
    }

    /// Read access to the connection pool.
    pub fn pool(&self) -> &ConnectionPool {
        &self.pool
    }

    /// Handles a client SYN: creates the mapping entry and returns the
    /// SYN-ACK to send back.
    ///
    /// # Errors
    ///
    /// Propagates [`MappingError`] on protocol violations.
    pub fn accept_syn(
        &mut self,
        key: ConnKey,
        client_isn: u32,
        http10: bool,
    ) -> Result<Packet, RelayError> {
        let isn = self.mapping.on_syn(key, client_isn, http10)?;
        Ok(Packet {
            seq: isn,
            ack: client_isn.wrapping_add(1),
            flags: Flags {
                syn: true,
                ack: true,
                fin: false,
            },
            payload: 0,
        })
    }

    /// Handles the client's handshake ACK.
    ///
    /// # Errors
    ///
    /// Propagates [`MappingError`].
    pub fn complete_handshake(&mut self, key: ConnKey) -> Result<(), RelayError> {
        self.mapping.on_handshake_ack(key)?;
        Ok(())
    }

    /// Binds the connection to a pre-forked connection on `node` once the
    /// routing decision is made, computing the sequence translation.
    ///
    /// `client_next_seq` is the sequence number of the first request byte
    /// (client ISN + 1).
    ///
    /// # Errors
    ///
    /// [`RelayError::Pool`] when the node's pre-forked list is exhausted;
    /// [`RelayError::Mapping`] on state violations.
    pub fn bind(
        &mut self,
        key: ConnKey,
        node: NodeId,
        client_next_seq: u32,
    ) -> Result<PreforkId, RelayError> {
        let entry = self
            .mapping
            .get(key)
            .ok_or(MappingError::UnknownConnection(key))?;
        let distributor_next_seq = entry.distributor_isn.wrapping_add(1);
        let prefork = self.pool.checkout(node)?;
        let conn = self.pool.conn(prefork).expect("just checked out");
        let translation = SeqTranslation::at_binding(
            client_next_seq,
            conn.our_next_seq,
            distributor_next_seq,
            conn.server_next_seq,
        );
        if let Err(e) = self.mapping.bind(key, prefork, translation) {
            // Roll the checkout back so the pool slot is not leaked.
            self.pool.release(prefork).expect("release fresh checkout");
            return Err(e.into());
        }
        Ok(prefork)
    }

    /// Rewrites a client data packet for the pre-forked connection and
    /// returns `(backend, rewritten packet)`.
    ///
    /// # Errors
    ///
    /// [`MappingError::NotBound`] if no binding exists yet.
    pub fn relay_to_server(
        &mut self,
        key: ConnKey,
        pkt: Packet,
    ) -> Result<(NodeId, Packet), RelayError> {
        let (prefork, tr) = self.mapping.binding(key)?;
        Ok((
            prefork.node,
            Packet {
                seq: tr.seq_c2s(pkt.seq),
                ack: if pkt.flags.ack {
                    tr.ack_c2s(pkt.ack)
                } else {
                    0
                },
                flags: pkt.flags,
                payload: pkt.payload,
            },
        ))
    }

    /// Rewrites a server data packet for the client connection. When
    /// `last` is set and the client spoke HTTP/1.0, the distributor sets
    /// the FIN flag itself (the paper: "the distributor will set the FIN
    /// flag instead of server when it relay the last packet").
    ///
    /// # Errors
    ///
    /// [`MappingError::NotBound`] if no binding exists yet.
    pub fn relay_to_client(
        &mut self,
        key: ConnKey,
        pkt: Packet,
        last: bool,
    ) -> Result<Packet, RelayError> {
        let entry = self
            .mapping
            .get(key)
            .ok_or(MappingError::UnknownConnection(key))?;
        let http10 = entry.http10;
        let (_, tr) = self.mapping.binding(key)?;
        let mut flags = pkt.flags;
        if last && http10 {
            flags.fin = true;
        }
        Ok(Packet {
            seq: tr.seq_s2c(pkt.seq),
            ack: if pkt.flags.ack {
                tr.ack_s2c(pkt.ack)
            } else {
                0
            },
            flags,
            payload: pkt.payload,
        })
    }

    /// Handles a client FIN: updates state to `FIN_RECEIVED`, emits the ACK
    /// (state → `HALF_CLOSED`).
    ///
    /// # Errors
    ///
    /// Propagates [`MappingError`].
    pub fn client_fin(&mut self, key: ConnKey, fin_seq: u32) -> Result<Packet, RelayError> {
        self.mapping.on_client_fin(key)?;
        self.mapping.on_fin_acked(key)?;
        let entry = self.mapping.get(key).expect("entry exists after fin");
        Ok(Packet {
            seq: entry.distributor_isn, // simplification: control-only packet
            ack: fin_seq.wrapping_add(1),
            flags: Flags {
                syn: false,
                ack: true,
                fin: false,
            },
            payload: 0,
        })
    }

    /// Handles the client's ACK of the last relayed packet: deletes the
    /// entry, advances the pre-forked connection's sequence state by the
    /// bytes this exchange consumed, and releases it to the available list.
    ///
    /// # Errors
    ///
    /// Propagates [`MappingError`]/[`PoolError`].
    pub fn last_ack(
        &mut self,
        key: ConnKey,
        request_bytes: u32,
        response_bytes: u32,
    ) -> Result<(), RelayError> {
        if let Some(prefork) = self.mapping.on_last_ack(key)? {
            self.pool.advance(prefork, request_bytes, response_bytes)?;
            self.pool.release(prefork)?;
        }
        Ok(())
    }

    /// Aborts a connection (client RST or timeout), releasing any binding.
    pub fn abort(&mut self, key: ConnKey) {
        if let Some(prefork) = self.mapping.abort(key) {
            // A real distributor would tear the pre-forked connection down
            // and re-fork it; we model the simpler release.
            let _ = self.pool.release(prefork);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(port: u16) -> ConnKey {
        ConnKey {
            client_ip: 0x0A00_0002,
            client_port: port,
        }
    }

    /// Drives a full HTTP/1.1 exchange through the distributor and checks
    /// every rewritten sequence number.
    #[test]
    fn full_spliced_exchange() {
        let mut d = Distributor::new(2, 2);
        let k = key(40000);
        let client_isn = 7_000;

        // --- handshake with the distributor
        let synack = d.accept_syn(k, client_isn, false).unwrap();
        assert!(synack.flags.syn && synack.flags.ack);
        assert_eq!(synack.ack, client_isn + 1);
        d.complete_handshake(k).unwrap();

        // --- routing decision made; bind to node 1
        let prefork = d.bind(k, NodeId(1), client_isn + 1).unwrap();
        assert_eq!(prefork.node, NodeId(1));
        assert_eq!(d.pool().in_use(NodeId(1)), 1);
        let conn = *d.pool().conn(prefork).unwrap();

        // --- client sends a 200-byte HTTP request
        let req_pkt = Packet {
            seq: client_isn + 1,
            ack: synack.seq.wrapping_add(1),
            flags: Flags {
                syn: false,
                ack: true,
                fin: false,
            },
            payload: 200,
        };
        let (node, rewritten) = d.relay_to_server(k, req_pkt).unwrap();
        assert_eq!(node, NodeId(1));
        // First request byte must map onto the pre-forked connection's
        // next outgoing byte.
        assert_eq!(rewritten.seq, conn.our_next_seq);
        // The client's ACK of the distributor ISN maps to the server's
        // current sequence position.
        assert_eq!(rewritten.ack, conn.server_next_seq);
        assert_eq!(rewritten.payload, 200);

        // --- server responds with 1000 bytes (as seen on the pre-forked
        // connection), acking the 200 request bytes
        let resp_pkt = Packet {
            seq: conn.server_next_seq,
            ack: conn.our_next_seq.wrapping_add(200),
            flags: Flags {
                syn: false,
                ack: true,
                fin: false,
            },
            payload: 1000,
        };
        let to_client = d.relay_to_client(k, resp_pkt, true).unwrap();
        // First response byte appears as the distributor's next byte.
        assert_eq!(to_client.seq, synack.seq.wrapping_add(1));
        // The server's ACK maps back to client sequence space.
        assert_eq!(to_client.ack, client_isn + 1 + 200);
        assert!(!to_client.flags.fin, "HTTP/1.1: server FIN not forced");

        // --- client closes
        let fin_seq = client_isn + 1 + 200;
        let fin_ack = d.client_fin(k, fin_seq).unwrap();
        assert!(fin_ack.flags.ack);
        assert_eq!(fin_ack.ack, fin_seq + 1);

        d.last_ack(k, 200, 1000).unwrap();
        assert!(d.mapping().is_empty());
        assert_eq!(d.pool().available(NodeId(1)), 2, "connection released");
        let advanced = d.pool().conn(prefork).unwrap();
        assert_eq!(advanced.our_next_seq, conn.our_next_seq.wrapping_add(200));
        assert_eq!(
            advanced.server_next_seq,
            conn.server_next_seq.wrapping_add(1000)
        );
    }

    #[test]
    fn http10_gets_fin_on_last_packet() {
        let mut d = Distributor::new(1, 1);
        let k = key(1);
        d.accept_syn(k, 0, true).unwrap();
        d.complete_handshake(k).unwrap();
        d.bind(k, NodeId(0), 1).unwrap();
        let pkt = Packet {
            seq: 0,
            ack: 0,
            flags: Flags::default(),
            payload: 10,
        };
        let mid = d.relay_to_client(k, pkt, false).unwrap();
        assert!(!mid.flags.fin);
        let last = d.relay_to_client(k, pkt, true).unwrap();
        assert!(last.flags.fin, "distributor sets FIN for HTTP/1.0 clients");
    }

    #[test]
    fn relay_before_bind_fails() {
        let mut d = Distributor::new(1, 1);
        let k = key(2);
        d.accept_syn(k, 0, false).unwrap();
        d.complete_handshake(k).unwrap();
        let pkt = Packet {
            seq: 1,
            ack: 0,
            flags: Flags::default(),
            payload: 5,
        };
        assert!(matches!(
            d.relay_to_server(k, pkt),
            Err(RelayError::Mapping(MappingError::NotBound(_)))
        ));
    }

    #[test]
    fn bind_rolls_back_checkout_on_state_error() {
        let mut d = Distributor::new(1, 1);
        let k = key(3);
        d.accept_syn(k, 0, false).unwrap();
        // handshake NOT complete: bind must fail and must not leak the slot
        assert!(d.bind(k, NodeId(0), 1).is_err());
        assert_eq!(d.pool().available(NodeId(0)), 1);
    }

    #[test]
    fn pool_exhaustion_surfaces() {
        let mut d = Distributor::new(1, 1);
        for (i, port) in [(0u32, 10u16), (1, 11)] {
            let k = key(port);
            d.accept_syn(k, i, false).unwrap();
            d.complete_handshake(k).unwrap();
        }
        d.bind(key(10), NodeId(0), 1).unwrap();
        assert!(matches!(
            d.bind(key(11), NodeId(0), 2),
            Err(RelayError::Pool(PoolError::Exhausted(_)))
        ));
    }

    #[test]
    fn abort_releases_resources() {
        let mut d = Distributor::new(1, 1);
        let k = key(4);
        d.accept_syn(k, 0, false).unwrap();
        d.complete_handshake(k).unwrap();
        d.bind(k, NodeId(0), 1).unwrap();
        d.abort(k);
        assert!(d.mapping().is_empty());
        assert_eq!(d.pool().available(NodeId(0)), 1);
        // aborting again is harmless
        d.abort(k);
    }

    #[test]
    fn concurrent_connections_do_not_interfere() {
        let mut d = Distributor::new(2, 4);
        let keys: Vec<ConnKey> = (0..4).map(|i| key(100 + i)).collect();
        for (i, &k) in keys.iter().enumerate() {
            d.accept_syn(k, (i as u32) * 1000, false).unwrap();
            d.complete_handshake(k).unwrap();
            d.bind(k, NodeId((i % 2) as u16), (i as u32) * 1000 + 1)
                .unwrap();
        }
        assert_eq!(d.mapping().len(), 4);
        assert_eq!(d.pool().in_use(NodeId(0)), 2);
        assert_eq!(d.pool().in_use(NodeId(1)), 2);
        // Close them in reverse order.
        for &k in keys.iter().rev() {
            let fin = d.client_fin(k, 5).unwrap();
            assert!(fin.flags.ack);
            d.last_ack(k, 10, 10).unwrap();
        }
        assert!(d.mapping().is_empty());
        assert_eq!(d.pool().available(NodeId(0)), 4);
        assert_eq!(d.pool().available(NodeId(1)), 4);
    }
}
