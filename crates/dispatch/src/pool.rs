//! Pre-forked persistent backend connections (§2.2).
//!
//! > "The distributor pre-forks a number of persistent connections
//! > (supported by HTTP 1.1) to the backend nodes. … Once the distributor
//! > selects a target server, it also chooses an idle pre-forked connection
//! > from the available connection list."
//!
//! Reusing persistent connections avoids a fresh TCP handshake to the
//! backend per client request — the mechanism the paper contrasts with
//! heavy-weight HTTP redirection.

use crate::mapping::PreforkId;
use cpms_model::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// Sequence state of one pre-forked connection (fixed at pre-fork time,
/// advanced as requests are relayed over it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreforkConn {
    /// Next sequence number the distributor will send toward the server.
    pub our_next_seq: u32,
    /// Next sequence number expected from the server.
    pub server_next_seq: u32,
    /// How many client requests this connection has carried.
    pub requests_served: u64,
}

/// Errors from pool operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PoolError {
    /// No idle pre-forked connection to the node.
    Exhausted(NodeId),
    /// Releasing a connection that is not checked out.
    NotCheckedOut(PreforkId),
    /// A [`PreforkId`] referring to an unknown node or slot.
    UnknownConnection(PreforkId),
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::Exhausted(n) => write!(f, "no idle pre-forked connection to node {n}"),
            PoolError::NotCheckedOut(id) => {
                write!(f, "connection {}#{} is not checked out", id.node, id.slot)
            }
            PoolError::UnknownConnection(id) => {
                write!(f, "unknown pre-forked connection {}#{}", id.node, id.slot)
            }
        }
    }
}

impl std::error::Error for PoolError {}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct NodePool {
    conns: Vec<PreforkConn>,
    available: Vec<u32>,
    checked_out: HashSet<u32>,
}

/// The pool of pre-forked persistent connections, per backend node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConnectionPool {
    nodes: Vec<NodePool>,
    checkouts: u64,
    waits: u64,
}

impl ConnectionPool {
    /// Pre-forks `conns_per_node` connections to each of `node_count`
    /// backends. Initial sequence numbers are deterministic per slot.
    ///
    /// # Panics
    ///
    /// Panics if `node_count` or `conns_per_node` is 0.
    pub fn prefork(node_count: usize, conns_per_node: u32) -> Self {
        assert!(node_count > 0, "pool needs at least one node");
        assert!(
            conns_per_node > 0,
            "pool needs at least one connection per node"
        );
        let nodes = (0..node_count)
            .map(|n| NodePool {
                conns: (0..conns_per_node)
                    .map(|s| PreforkConn {
                        our_next_seq: 0x1000_0000u32
                            .wrapping_add((n as u32) << 16)
                            .wrapping_add(s * 97),
                        server_next_seq: 0x8000_0000u32
                            .wrapping_add((n as u32) << 16)
                            .wrapping_add(s * 89),
                        requests_served: 0,
                    })
                    .collect(),
                available: (0..conns_per_node).rev().collect(),
                checked_out: HashSet::new(),
            })
            .collect();
        ConnectionPool {
            nodes,
            checkouts: 0,
            waits: 0,
        }
    }

    /// Number of backend nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Idle connections to `node`.
    pub fn available(&self, node: NodeId) -> usize {
        self.nodes[node.index()].available.len()
    }

    /// Connections to `node` currently carrying a request.
    pub fn in_use(&self, node: NodeId) -> usize {
        self.nodes[node.index()].checked_out.len()
    }

    /// Total successful checkouts.
    pub fn total_checkouts(&self) -> u64 {
        self.checkouts
    }

    /// Times a checkout found the node's list empty.
    pub fn total_exhaustions(&self) -> u64 {
        self.waits
    }

    /// Checks out an idle connection to `node`.
    ///
    /// # Errors
    ///
    /// [`PoolError::Exhausted`] if every pre-forked connection to the node
    /// is busy (a real distributor would queue; callers may retry).
    pub fn checkout(&mut self, node: NodeId) -> Result<PreforkId, PoolError> {
        let np = &mut self.nodes[node.index()];
        match np.available.pop() {
            Some(slot) => {
                np.checked_out.insert(slot);
                self.checkouts += 1;
                Ok(PreforkId { node, slot })
            }
            None => {
                self.waits += 1;
                Err(PoolError::Exhausted(node))
            }
        }
    }

    /// Sequence state of a connection.
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownConnection`] for an out-of-range id.
    pub fn conn(&self, id: PreforkId) -> Result<&PreforkConn, PoolError> {
        self.nodes
            .get(id.node.index())
            .and_then(|np| np.conns.get(id.slot as usize))
            .ok_or(PoolError::UnknownConnection(id))
    }

    /// Advances a connection's sequence state after relaying one request of
    /// `request_bytes` and one response of `response_bytes` over it.
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownConnection`] or [`PoolError::NotCheckedOut`].
    pub fn advance(
        &mut self,
        id: PreforkId,
        request_bytes: u32,
        response_bytes: u32,
    ) -> Result<(), PoolError> {
        let np = self
            .nodes
            .get_mut(id.node.index())
            .ok_or(PoolError::UnknownConnection(id))?;
        if !np.checked_out.contains(&id.slot) {
            return Err(PoolError::NotCheckedOut(id));
        }
        let conn = np
            .conns
            .get_mut(id.slot as usize)
            .ok_or(PoolError::UnknownConnection(id))?;
        conn.our_next_seq = conn.our_next_seq.wrapping_add(request_bytes);
        conn.server_next_seq = conn.server_next_seq.wrapping_add(response_bytes);
        conn.requests_served += 1;
        Ok(())
    }

    /// Releases a connection back to the available list (the paper:
    /// "releases the pre-forked connection back to available connection
    /// list").
    ///
    /// # Errors
    ///
    /// [`PoolError::NotCheckedOut`] if it was not checked out (double
    /// release) or [`PoolError::UnknownConnection`].
    pub fn release(&mut self, id: PreforkId) -> Result<(), PoolError> {
        let np = self
            .nodes
            .get_mut(id.node.index())
            .ok_or(PoolError::UnknownConnection(id))?;
        if id.slot as usize >= np.conns.len() {
            return Err(PoolError::UnknownConnection(id));
        }
        if !np.checked_out.remove(&id.slot) {
            return Err(PoolError::NotCheckedOut(id));
        }
        np.available.push(id.slot);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefork_counts() {
        let p = ConnectionPool::prefork(3, 4);
        assert_eq!(p.node_count(), 3);
        for n in 0..3 {
            assert_eq!(p.available(NodeId(n)), 4);
            assert_eq!(p.in_use(NodeId(n)), 0);
        }
    }

    #[test]
    fn checkout_release_cycle() {
        let mut p = ConnectionPool::prefork(2, 2);
        let a = p.checkout(NodeId(0)).unwrap();
        let b = p.checkout(NodeId(0)).unwrap();
        assert_ne!(a.slot, b.slot);
        assert_eq!(p.available(NodeId(0)), 0);
        assert_eq!(p.in_use(NodeId(0)), 2);
        assert!(matches!(
            p.checkout(NodeId(0)),
            Err(PoolError::Exhausted(_))
        ));
        assert_eq!(p.total_exhaustions(), 1);
        p.release(a).unwrap();
        assert_eq!(p.available(NodeId(0)), 1);
        let c = p.checkout(NodeId(0)).unwrap();
        assert_eq!(c.slot, a.slot, "released slot is reused");
    }

    #[test]
    fn double_release_rejected() {
        let mut p = ConnectionPool::prefork(1, 1);
        let a = p.checkout(NodeId(0)).unwrap();
        p.release(a).unwrap();
        assert!(matches!(p.release(a), Err(PoolError::NotCheckedOut(_))));
    }

    #[test]
    fn advance_requires_checkout() {
        let mut p = ConnectionPool::prefork(1, 1);
        let id = PreforkId {
            node: NodeId(0),
            slot: 0,
        };
        assert!(matches!(
            p.advance(id, 10, 10),
            Err(PoolError::NotCheckedOut(_))
        ));
        let id = p.checkout(NodeId(0)).unwrap();
        let before = *p.conn(id).unwrap();
        p.advance(id, 100, 2000).unwrap();
        let after = *p.conn(id).unwrap();
        assert_eq!(after.our_next_seq, before.our_next_seq.wrapping_add(100));
        assert_eq!(
            after.server_next_seq,
            before.server_next_seq.wrapping_add(2000)
        );
        assert_eq!(after.requests_served, 1);
    }

    #[test]
    fn unknown_ids_rejected() {
        let mut p = ConnectionPool::prefork(1, 1);
        let bad = PreforkId {
            node: NodeId(5),
            slot: 0,
        };
        assert!(matches!(p.conn(bad), Err(PoolError::UnknownConnection(_))));
        assert!(matches!(
            p.release(bad),
            Err(PoolError::UnknownConnection(_))
        ));
        let bad_slot = PreforkId {
            node: NodeId(0),
            slot: 99,
        };
        assert!(matches!(
            p.release(bad_slot),
            Err(PoolError::UnknownConnection(_))
        ));
    }

    #[test]
    fn persistent_connections_accumulate_requests() {
        let mut p = ConnectionPool::prefork(1, 1);
        for _ in 0..5 {
            let id = p.checkout(NodeId(0)).unwrap();
            p.advance(id, 50, 500).unwrap();
            p.release(id).unwrap();
        }
        let id = PreforkId {
            node: NodeId(0),
            slot: 0,
        };
        assert_eq!(p.conn(id).unwrap().requests_served, 5);
        assert_eq!(p.total_checkouts(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_pool_panics() {
        let _ = ConnectionPool::prefork(0, 1);
    }
}
