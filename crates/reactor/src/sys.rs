//! Raw Linux syscall bindings used by the reactor.
//!
//! This module is the only place in the workspace that declares foreign
//! functions. Everything it exposes upward is a safe wrapper that owns its
//! file descriptors and converts errno into [`std::io::Error`]. The bindings
//! are declared by hand (no `libc` crate) so the workspace stays buildable
//! with zero external dependencies.

#![allow(non_camel_case_types)]

use std::io;

pub type c_int = i32;
pub type c_short = i16;
pub type nfds_t = u64;

// epoll_ctl ops.
pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;

// epoll event bits (identical values to the poll(2) bits below where shared).
pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

pub const EPOLL_CLOEXEC: c_int = 0x80000;

// poll(2) event bits.
pub const POLLIN: c_short = 0x001;
pub const POLLOUT: c_short = 0x004;
pub const POLLERR: c_short = 0x008;
pub const POLLHUP: c_short = 0x010;
pub const POLLNVAL: c_short = 0x020;

// pipe2 flags.
pub const O_NONBLOCK: c_int = 0x800;
pub const O_CLOEXEC: c_int = 0x80000;

// rlimit.
pub const RLIMIT_NOFILE: c_int = 7;

// sockets.
pub const AF_INET: c_int = 2;
pub const AF_INET6: c_int = 10;
pub const SOCK_STREAM: c_int = 1;
pub const SOCK_NONBLOCK: c_int = 0x800;
pub const SOCK_CLOEXEC: c_int = 0x80000;
pub const SOL_SOCKET: c_int = 1;
pub const SO_REUSEADDR: c_int = 2;
pub const SO_ERROR: c_int = 4;
pub const EINPROGRESS: c_int = 115;

/// Kernel epoll event record. x86-64 Linux packs this struct so the 64-bit
/// user data field sits at offset 4.
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct epoll_event {
    pub events: u32,
    pub u64: u64,
}

/// poll(2) descriptor record.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct pollfd {
    pub fd: c_int,
    pub events: c_short,
    pub revents: c_short,
}

#[repr(C)]
#[derive(Clone, Copy)]
pub struct rlimit {
    pub rlim_cur: u64,
    pub rlim_max: u64,
}

/// IPv4 socket address, network byte order where the ABI says so.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sockaddr_in {
    pub sin_family: u16,
    pub sin_port: u16,
    pub sin_addr: u32,
    pub sin_zero: [u8; 8],
}

/// IPv6 socket address.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sockaddr_in6 {
    pub sin6_family: u16,
    pub sin6_port: u16,
    pub sin6_flowinfo: u32,
    pub sin6_addr: [u8; 16],
    pub sin6_scope_id: u32,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut epoll_event, maxevents: c_int, timeout: c_int)
        -> c_int;
    fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
    fn pipe2(pipefd: *mut c_int, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const rlimit) -> c_int;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn connect(sockfd: c_int, addr: *const u8, addrlen: u32) -> c_int;
    fn bind(sockfd: c_int, addr: *const u8, addrlen: u32) -> c_int;
    fn listen(sockfd: c_int, backlog: c_int) -> c_int;
    fn getsockopt(
        sockfd: c_int,
        level: c_int,
        optname: c_int,
        optval: *mut u8,
        optlen: *mut u32,
    ) -> c_int;
    fn setsockopt(
        sockfd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const u8,
        optlen: u32,
    ) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned file descriptor that closes itself on drop.
#[derive(Debug)]
pub struct OwnedFd(c_int);

impl OwnedFd {
    pub fn raw(&self) -> c_int {
        self.0
    }

    /// Releases ownership: the caller becomes responsible for closing.
    pub fn into_raw(self) -> c_int {
        let fd = self.0;
        std::mem::forget(self);
        fd
    }
}

impl Drop for OwnedFd {
    fn drop(&mut self) {
        // Nothing sane to do with a close error during teardown.
        unsafe {
            close(self.0);
        }
    }
}

pub fn epoll_create() -> io::Result<OwnedFd> {
    let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
    Ok(OwnedFd(fd))
}

pub fn epoll_add(epfd: &OwnedFd, fd: c_int, events: u32, token: u64) -> io::Result<()> {
    let mut ev = epoll_event { events, u64: token };
    cvt(unsafe { epoll_ctl(epfd.raw(), EPOLL_CTL_ADD, fd, &mut ev) })?;
    Ok(())
}

pub fn epoll_mod(epfd: &OwnedFd, fd: c_int, events: u32, token: u64) -> io::Result<()> {
    let mut ev = epoll_event { events, u64: token };
    cvt(unsafe { epoll_ctl(epfd.raw(), EPOLL_CTL_MOD, fd, &mut ev) })?;
    Ok(())
}

pub fn epoll_del(epfd: &OwnedFd, fd: c_int) -> io::Result<()> {
    let mut ev = epoll_event { events: 0, u64: 0 };
    cvt(unsafe { epoll_ctl(epfd.raw(), EPOLL_CTL_DEL, fd, &mut ev) })?;
    Ok(())
}

/// Wait for readiness; `timeout_ms < 0` blocks indefinitely. Fills `out` with
/// up to its capacity worth of events and returns how many arrived.
pub fn epoll_wait_into(
    epfd: &OwnedFd,
    out: &mut Vec<epoll_event>,
    timeout_ms: c_int,
) -> io::Result<usize> {
    out.clear();
    if out.capacity() == 0 {
        out.reserve(64);
    }
    let cap = out.capacity() as c_int;
    // Safety: the kernel writes at most `cap` records into the spare
    // capacity; we set the length only to the count it reports.
    let n = cvt(unsafe { epoll_wait(epfd.raw(), out.as_mut_ptr(), cap, timeout_ms) })?;
    unsafe { out.set_len(n as usize) };
    Ok(n as usize)
}

/// poll(2) over a caller-built descriptor set; returns how many have revents.
pub fn poll_fds(fds: &mut [pollfd], timeout_ms: c_int) -> io::Result<usize> {
    let n = cvt(unsafe { poll(fds.as_mut_ptr(), fds.len() as nfds_t, timeout_ms) })?;
    Ok(n as usize)
}

/// Non-blocking close-on-exec pipe; returns (read end, write end).
pub fn nonblocking_pipe() -> io::Result<(OwnedFd, OwnedFd)> {
    let mut ends: [c_int; 2] = [-1, -1];
    cvt(unsafe { pipe2(ends.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
    Ok((OwnedFd(ends[0]), OwnedFd(ends[1])))
}

pub fn read_fd(fd: c_int, buf: &mut [u8]) -> io::Result<usize> {
    let n = unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

pub fn write_fd(fd: c_int, buf: &[u8]) -> io::Result<usize> {
    let n = unsafe { write(fd, buf.as_ptr(), buf.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

pub fn nofile_limit() -> io::Result<(u64, u64)> {
    let mut lim = rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    Ok((lim.rlim_cur, lim.rlim_max))
}

pub fn set_nofile_limit(soft: u64, hard: u64) -> io::Result<()> {
    let lim = rlimit {
        rlim_cur: soft,
        rlim_max: hard,
    };
    cvt(unsafe { setrlimit(RLIMIT_NOFILE, &lim) })?;
    Ok(())
}

/// Encodes a [`std::net::SocketAddr`] into the kernel's sockaddr bytes,
/// returning the buffer, its used length, and the address family.
fn encode_sockaddr(addr: &std::net::SocketAddr) -> ([u8; 28], u32, c_int) {
    let mut buf = [0u8; 28];
    match addr {
        std::net::SocketAddr::V4(v4) => {
            let sa = sockaddr_in {
                sin_family: AF_INET as u16,
                sin_port: v4.port().to_be(),
                sin_addr: u32::from_ne_bytes(v4.ip().octets()),
                sin_zero: [0; 8],
            };
            buf[..2].copy_from_slice(&sa.sin_family.to_ne_bytes());
            buf[2..4].copy_from_slice(&sa.sin_port.to_ne_bytes());
            buf[4..8].copy_from_slice(&sa.sin_addr.to_ne_bytes());
            (buf, std::mem::size_of::<sockaddr_in>() as u32, AF_INET)
        }
        std::net::SocketAddr::V6(v6) => {
            buf[..2].copy_from_slice(&(AF_INET6 as u16).to_ne_bytes());
            buf[2..4].copy_from_slice(&v6.port().to_be().to_ne_bytes());
            buf[4..8].copy_from_slice(&v6.flowinfo().to_be().to_ne_bytes());
            buf[8..24].copy_from_slice(&v6.ip().octets());
            buf[24..28].copy_from_slice(&v6.scope_id().to_ne_bytes());
            (buf, std::mem::size_of::<sockaddr_in6>() as u32, AF_INET6)
        }
    }
}

/// Opens a non-blocking close-on-exec TCP socket for `addr`'s family.
pub fn tcp_socket(addr: &std::net::SocketAddr) -> io::Result<OwnedFd> {
    let (_, _, family) = encode_sockaddr(addr);
    let fd = cvt(unsafe { socket(family, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) })?;
    Ok(OwnedFd(fd))
}

/// Starts a connect on a non-blocking socket. Returns `true` when the
/// connection completed synchronously, `false` when it is in progress
/// (completion is signalled by writability; check [`so_error`] then).
pub fn start_connect(fd: &OwnedFd, addr: &std::net::SocketAddr) -> io::Result<bool> {
    let (buf, len, _) = encode_sockaddr(addr);
    match cvt(unsafe { connect(fd.raw(), buf.as_ptr(), len) }) {
        Ok(_) => Ok(true),
        Err(e) if e.raw_os_error() == Some(EINPROGRESS) => Ok(false),
        Err(e) => Err(e),
    }
}

/// Binds and listens with an explicit backlog (std's `TcpListener::bind`
/// hardwires 128, too shallow for connection-churn storms).
pub fn bind_listen(addr: &std::net::SocketAddr, backlog: c_int) -> io::Result<OwnedFd> {
    let sock = tcp_socket(addr)?;
    let one: c_int = 1;
    cvt(unsafe {
        setsockopt(
            sock.raw(),
            SOL_SOCKET,
            SO_REUSEADDR,
            (&one as *const c_int).cast(),
            std::mem::size_of::<c_int>() as u32,
        )
    })?;
    let (buf, len, _) = encode_sockaddr(addr);
    cvt(unsafe { bind(sock.raw(), buf.as_ptr(), len) })?;
    cvt(unsafe { listen(sock.raw(), backlog) })?;
    Ok(sock)
}

/// Drains the socket's pending error (`SO_ERROR`): `None` when the last
/// asynchronous operation (e.g. a non-blocking connect) succeeded.
pub fn so_error(fd: c_int) -> io::Result<Option<io::Error>> {
    let mut err: c_int = 0;
    let mut len = std::mem::size_of::<c_int>() as u32;
    cvt(unsafe {
        getsockopt(
            fd,
            SOL_SOCKET,
            SO_ERROR,
            (&mut err as *mut c_int).cast(),
            &mut len,
        )
    })?;
    Ok((err != 0).then(|| io::Error::from_raw_os_error(err)))
}
