//! Generation-checked slab for per-connection state.
//!
//! Poller tokens outlive the connections they point at: a readiness event can
//! arrive for a slot that was freed and reused between `wait` calls. Keys
//! therefore carry a 32-bit generation alongside the 32-bit slot index, and a
//! stale key simply misses instead of aliasing the slot's new occupant.

/// Key returned by [`Slab::insert`]; layout is `generation << 32 | index`.
pub type SlabKey = u64;

struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// A reusable arena of `T` addressed by generation-checked keys.
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Slab<T> {
    /// Create an empty slab.
    pub fn new() -> Slab<T> {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no slots are occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Store a value and return its key.
    pub fn insert(&mut self, value: T) -> SlabKey {
        self.len += 1;
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            slot.value = Some(value);
            ((slot.generation as u64) << 32) | idx as u64
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Slot {
                generation: 0,
                value: Some(value),
            });
            idx as u64
        }
    }

    fn split(key: SlabKey) -> (u32, u32) {
        ((key >> 32) as u32, key as u32)
    }

    /// Look up a key; stale or unknown keys return `None`.
    pub fn get(&self, key: SlabKey) -> Option<&T> {
        let (generation, idx) = Self::split(key);
        let slot = self.slots.get(idx as usize)?;
        if slot.generation != generation {
            return None;
        }
        slot.value.as_ref()
    }

    /// Mutable lookup; stale or unknown keys return `None`.
    pub fn get_mut(&mut self, key: SlabKey) -> Option<&mut T> {
        let (generation, idx) = Self::split(key);
        let slot = self.slots.get_mut(idx as usize)?;
        if slot.generation != generation {
            return None;
        }
        slot.value.as_mut()
    }

    /// Remove and return the value; the slot's generation bumps so the old
    /// key goes stale.
    pub fn remove(&mut self, key: SlabKey) -> Option<T> {
        let (generation, idx) = Self::split(key);
        let slot = self.slots.get_mut(idx as usize)?;
        if slot.generation != generation || slot.value.is_none() {
            return None;
        }
        let value = slot.value.take();
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(idx);
        self.len -= 1;
        value
    }

    /// Visit every occupied slot's key and value.
    pub fn iter(&self) -> impl Iterator<Item = (SlabKey, &T)> {
        self.slots.iter().enumerate().filter_map(|(idx, slot)| {
            slot.value
                .as_ref()
                .map(|v| (((slot.generation as u64) << 32) | idx as u64, v))
        })
    }

    /// Collect the keys of every occupied slot (for teardown sweeps that
    /// need to mutate while iterating).
    pub fn keys(&self) -> Vec<SlabKey> {
        self.iter().map(|(k, _)| k).collect()
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}
