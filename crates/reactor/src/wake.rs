//! Cross-thread wakeups for event loops parked in `Poller::wait`.
//!
//! A non-blocking pipe pair: the receiver's read end registers in the loop's
//! poller, any thread holding a [`Waker`] clone writes a byte to interrupt
//! the wait. A full pipe means a wakeup is already pending, so `wake` treats
//! `WouldBlock` as success — wakeups coalesce rather than accumulate.

use std::io;
use std::os::unix::io::RawFd;
use std::sync::Arc;

use crate::sys;

/// Cheap, clonable, thread-safe handle that interrupts a parked event loop.
#[derive(Clone)]
pub struct Waker {
    write: Arc<sys::OwnedFd>,
}

impl Waker {
    /// Interrupt the paired receiver's poller wait.
    pub fn wake(&self) {
        match sys::write_fd(self.write.raw(), &[1u8]) {
            Ok(_) => {}
            // Pipe full: a wakeup is already pending, nothing to add.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            // Receiver gone (loop shut down): nothing left to wake.
            Err(_) => {}
        }
    }
}

/// The event-loop side of a waker pair; owns the pipe's read end.
pub struct WakeReceiver {
    read: sys::OwnedFd,
}

impl WakeReceiver {
    /// The fd to register (read interest) in the loop's poller.
    pub fn fd(&self) -> RawFd {
        self.read.raw()
    }

    /// Consume all pending wakeup bytes so level-triggered pollers settle.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            match sys::read_fd(self.read.raw(), &mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(_) => break,
            }
        }
    }
}

/// Build a connected waker pair.
pub fn waker_pair() -> io::Result<(Waker, WakeReceiver)> {
    let (read, write) = sys::nonblocking_pipe()?;
    Ok((
        Waker {
            write: Arc::new(write),
        },
        WakeReceiver { read },
    ))
}
