//! Non-blocking socket construction for reactor-driven code.
//!
//! `std::net` gives event loops two bad moments: `TcpStream::connect`
//! blocks until the handshake finishes (a dropped SYN stalls the whole
//! loop for a retransmit timeout), and `TcpListener::bind` hardwires a
//! listen backlog of 128 (too shallow when thousands of churning clients
//! redial in a burst). Both helpers here return ordinary `std::net`
//! types, so callers under `#![forbid(unsafe_code)]` stay safe — the fd
//! juggling lives in the private `sys` module.

use crate::sys;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd};

/// Starts a non-blocking TCP connect and returns the mid-handshake
/// stream. The socket is already in non-blocking mode; register it for
/// *write* readiness to learn when the handshake finishes, then call
/// [`take_connect_error`] to find out how it went. Writes attempted
/// before completion fail with `WouldBlock` and simply retry later, so
/// state machines need no special "connecting" state.
pub fn connect_nonblocking(addr: SocketAddr) -> io::Result<TcpStream> {
    let sock = sys::tcp_socket(&addr)?;
    sys::start_connect(&sock, &addr)?;
    // Safety contract lives in sys: `into_raw` transfers ownership of a
    // valid, open descriptor straight into the TcpStream.
    Ok(unsafe { TcpStream::from_raw_fd(sock.into_raw()) })
}

/// Resolves a [`connect_nonblocking`] handshake once the socket reported
/// writable: `Ok(())` means connected, an error is the connect failure
/// (refused, unreachable, timed out).
pub fn take_connect_error(stream: &TcpStream) -> io::Result<()> {
    match sys::so_error(stream.as_raw_fd())? {
        None => Ok(()),
        Some(err) => Err(err),
    }
}

/// Binds a listener with an explicit accept backlog instead of std's
/// fixed 128. Deep backlogs let the acceptor absorb redial storms
/// (connection churn under load) without dropping SYNs into 1-second
/// client retransmits.
pub fn listen_with_backlog(addr: SocketAddr, backlog: u32) -> io::Result<TcpListener> {
    let backlog = i32::try_from(backlog).unwrap_or(i32::MAX);
    let sock = sys::bind_listen(&addr, backlog)?;
    // Safety: same ownership transfer as above.
    Ok(unsafe { TcpListener::from_raw_fd(sock.into_raw()) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{new_poller, Interest, Token};
    use std::io::{Read, Write};
    use std::time::Duration;

    /// Waits until the poller reports the stream writable (handshake
    /// resolved, successfully or not).
    fn await_writable(stream: &TcpStream) {
        let mut poller = new_poller().unwrap();
        poller
            .register(stream.as_raw_fd(), Token(1), Interest::WRITE)
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(!events.is_empty(), "handshake must resolve");
    }

    #[test]
    fn nonblocking_connect_completes_against_a_listener() {
        let listener = listen_with_backlog("127.0.0.1:0".parse().unwrap(), 512).unwrap();
        let addr = listener.local_addr().unwrap();
        let client = connect_nonblocking(addr).unwrap();
        let (mut served, _) = listener.accept().unwrap();
        await_writable(&client);
        take_connect_error(&client).expect("loopback connect succeeds");
        served.write_all(b"ping").unwrap();
        drop(served);
        let mut client = client;
        client.set_nonblocking(false).unwrap();
        let mut got = Vec::new();
        client.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"ping");
    }

    #[test]
    fn nonblocking_connect_to_dead_port_reports_the_failure() {
        // Bind-then-drop yields a port with nothing listening.
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let client = connect_nonblocking(format!("127.0.0.1:{port}").parse().unwrap()).unwrap();
        await_writable(&client);
        assert!(
            take_connect_error(&client).is_err(),
            "connect to a closed port must surface an error"
        );
    }
}
