//! Readiness polling behind a single [`Poller`] trait.
//!
//! Two implementations share the trait: [`EpollPoller`] (Linux, O(ready)
//! wakeups, the production default) and [`PollPoller`] (portable poll(2),
//! O(registered) per wait, used as a fallback and to cross-check semantics in
//! tests). Both are level-triggered: an event keeps firing while the
//! condition holds, so state machines may do partial work per wakeup without
//! losing readiness.

use std::collections::HashMap;
use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

use crate::sys;

/// Opaque per-registration identity carried back on every event.
///
/// The reactor's consumers usually pack a slab key plus a side discriminator
/// (client fd vs backend fd) into the 64 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub u64);

/// Which readiness directions a registration wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd becomes readable.
    pub read: bool,
    /// Wake when the fd becomes writable.
    pub write: bool,
}

impl Interest {
    /// Read readiness only.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Write readiness only.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };
}

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token supplied at registration.
    pub token: Token,
    /// Readable (includes peer hangup so reads observe EOF).
    pub readable: bool,
    /// Writable (includes error states so blocked writers wake and fail).
    pub writable: bool,
    /// The kernel flagged an error condition on the fd.
    pub is_error: bool,
}

/// A level-triggered readiness selector over raw file descriptors.
///
/// Implementations own no fds other than their internal bookkeeping; callers
/// keep ownership of registered descriptors and must deregister before
/// closing them.
pub trait Poller: Send {
    /// Start watching `fd` with the given interest.
    fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()>;
    /// Replace the interest set (and token) of an already-registered fd.
    fn reregister(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()>;
    /// Stop watching `fd`.
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;
    /// Block until readiness or timeout; `None` blocks indefinitely.
    /// Clears and refills `events`, returning how many arrived.
    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize>;
    /// How many fds are currently registered.
    fn registered(&self) -> usize;
}

/// Selects which poller implementation to construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollerKind {
    /// Linux epoll (production default on Linux).
    Epoll,
    /// Portable poll(2) sweep.
    Poll,
}

/// Build the platform-default poller (epoll on Linux, poll elsewhere).
pub fn new_poller() -> io::Result<Box<dyn Poller>> {
    #[cfg(target_os = "linux")]
    {
        new_poller_of(PollerKind::Epoll)
    }
    #[cfg(not(target_os = "linux"))]
    {
        new_poller_of(PollerKind::Poll)
    }
}

/// Build a specific poller implementation (tests exercise both).
pub fn new_poller_of(kind: PollerKind) -> io::Result<Box<dyn Poller>> {
    match kind {
        PollerKind::Epoll => Ok(Box::new(EpollPoller::new()?)),
        PollerKind::Poll => Ok(Box::new(PollPoller::new())),
    }
}

fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            // Round up so sub-millisecond deadlines don't degrade into a
            // zero-timeout spin loop.
            let ms = d.as_millis();
            let ms = if d.subsec_nanos() % 1_000_000 != 0 {
                ms + 1
            } else {
                ms
            };
            ms.min(i32::MAX as u128) as i32
        }
    }
}

/// Linux epoll-backed poller.
pub struct EpollPoller {
    ep: sys::OwnedFd,
    scratch: Vec<sys::epoll_event>,
    registered: usize,
}

impl EpollPoller {
    /// Create a new epoll instance (close-on-exec).
    pub fn new() -> io::Result<EpollPoller> {
        Ok(EpollPoller {
            ep: sys::epoll_create()?,
            scratch: Vec::with_capacity(256),
            registered: 0,
        })
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = 0;
        if interest.read {
            // RDHUP rides read interest only: a registration that is not
            // reading (e.g. a client parked while its relay completes) must
            // not wake on the peer's half-close every poll round — a full
            // hangup still reports via EPOLLHUP.
            m |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if interest.write {
            m |= sys::EPOLLOUT;
        }
        m
    }
}

impl Poller for EpollPoller {
    fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        sys::epoll_add(&self.ep, fd, Self::mask(interest), token.0)?;
        self.registered += 1;
        Ok(())
    }

    fn reregister(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        sys::epoll_mod(&self.ep, fd, Self::mask(interest), token.0)
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        sys::epoll_del(&self.ep, fd)?;
        self.registered = self.registered.saturating_sub(1);
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let n = match sys::epoll_wait_into(&self.ep, &mut self.scratch, timeout_ms(timeout)) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for ev in self.scratch.iter().take(n) {
            let bits = ev.events;
            let token = Token(ev.u64);
            let err = bits & sys::EPOLLERR != 0;
            let hup = bits & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0;
            events.push(Event {
                token,
                readable: bits & sys::EPOLLIN != 0 || hup || err,
                writable: bits & sys::EPOLLOUT != 0 || hup || err,
                is_error: err,
            });
        }
        Ok(events.len())
    }

    fn registered(&self) -> usize {
        self.registered
    }
}

/// Portable poll(2)-backed poller.
///
/// Keeps a dense pollfd array plus an fd -> slot index so register and
/// deregister stay O(1) (deregister swap-removes).
pub struct PollPoller {
    fds: Vec<sys::pollfd>,
    tokens: Vec<Token>,
    index: HashMap<RawFd, usize>,
}

impl PollPoller {
    /// Create an empty poll set.
    pub fn new() -> PollPoller {
        PollPoller {
            fds: Vec::new(),
            tokens: Vec::new(),
            index: HashMap::new(),
        }
    }

    fn events_mask(interest: Interest) -> sys::c_short {
        let mut m = 0;
        if interest.read {
            m |= sys::POLLIN;
        }
        if interest.write {
            m |= sys::POLLOUT;
        }
        m
    }
}

impl Default for PollPoller {
    fn default() -> Self {
        Self::new()
    }
}

impl Poller for PollPoller {
    fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        if self.index.contains_key(&fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.index.insert(fd, self.fds.len());
        self.fds.push(sys::pollfd {
            fd,
            events: Self::events_mask(interest),
            revents: 0,
        });
        self.tokens.push(token);
        Ok(())
    }

    fn reregister(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        let &slot = self
            .index
            .get(&fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.fds[slot].events = Self::events_mask(interest);
        self.tokens[slot] = token;
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let slot = self
            .index
            .remove(&fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.fds.swap_remove(slot);
        self.tokens.swap_remove(slot);
        if slot < self.fds.len() {
            self.index.insert(self.fds[slot].fd, slot);
        }
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let n = match sys::poll_fds(&mut self.fds, timeout_ms(timeout)) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        if n > 0 {
            for (pfd, token) in self.fds.iter().zip(self.tokens.iter()) {
                let bits = pfd.revents;
                if bits == 0 {
                    continue;
                }
                let err = bits & (sys::POLLERR | sys::POLLNVAL) != 0;
                let hup = bits & sys::POLLHUP != 0;
                events.push(Event {
                    token: *token,
                    readable: bits & sys::POLLIN != 0 || hup || err,
                    writable: bits & sys::POLLOUT != 0 || hup || err,
                    is_error: err,
                });
            }
        }
        Ok(events.len())
    }

    fn registered(&self) -> usize {
        self.fds.len()
    }
}
