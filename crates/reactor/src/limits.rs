//! File-descriptor limit management for high-concurrency runs.

use crate::sys;

/// Try to raise `RLIMIT_NOFILE` so at least `target` descriptors fit.
///
/// Privileged processes can lift the hard limit too; unprivileged ones clamp
/// to the existing hard limit. Never fails outright: returns the soft limit
/// actually in effect afterwards, so callers size their workloads to reality
/// instead of aborting.
pub fn raise_nofile_limit(target: u64) -> u64 {
    let (soft, hard) = match sys::nofile_limit() {
        Ok(pair) => pair,
        Err(_) => return 0,
    };
    if soft >= target {
        return soft;
    }
    // First try the full ask (raises the hard limit when privileged), then
    // fall back to whatever headroom the current hard limit allows.
    if hard < target && sys::set_nofile_limit(target, target).is_ok() {
        return target;
    }
    let want = target.min(hard);
    if sys::set_nofile_limit(want, hard).is_ok() {
        return want;
    }
    soft
}

/// The soft fd limit currently in effect (0 when unreadable).
pub fn current_nofile_limit() -> u64 {
    sys::nofile_limit().map(|(soft, _)| soft).unwrap_or(0)
}
