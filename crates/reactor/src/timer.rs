//! Hashed timer wheel for coarse connection deadlines.
//!
//! Deadlines hash into `nslots` buckets by absolute tick; each bucket holds
//! entries from any wheel revolution, so insert is O(1) and a sweep only
//! touches the buckets whose turn has come. Cancellation is eager: the live
//! map remembers each timer's bucket so `cancel` removes the entry on the
//! spot. Buckets therefore hold only live timers — crucial for callers that
//! schedule-and-cancel a deadline per request (a proxy arming head/relay
//! timeouts), where lazily-cancelled entries would pile up for a whole wheel
//! revolution and turn every `next_timeout` scan into an O(garbage) crawl.
//! The wheel never calls `Instant::now` itself — callers pass `now` in,
//! which keeps expiry deterministic in tests.

use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Identifies a scheduled timer for cancellation.
pub type TimerId = u64;

struct WheelEntry {
    id: TimerId,
    /// Absolute deadline in ticks since the wheel's start instant.
    deadline: u64,
}

/// A hashed timer wheel; see the module docs for the design.
pub struct TimerWheel {
    start: Instant,
    tick: Duration,
    slots: Vec<Vec<WheelEntry>>,
    /// Ids scheduled and not yet fired or cancelled, with the slot each
    /// one's entry lives in (so cancel can remove the entry eagerly).
    live: HashMap<TimerId, usize>,
    next_id: TimerId,
    /// First tick not yet swept by `expire_into`.
    cursor: u64,
}

impl TimerWheel {
    /// Build a wheel with the given tick granularity and bucket count.
    ///
    /// `tick` bounds expiry precision (a deadline fires within one tick after
    /// it elapses); `nslots` bounds the per-sweep scan.
    pub fn new(tick: Duration, nslots: usize) -> TimerWheel {
        assert!(!tick.is_zero(), "timer tick must be non-zero");
        assert!(nslots > 0, "timer wheel needs at least one slot");
        TimerWheel {
            start: Instant::now(),
            tick,
            slots: (0..nslots).map(|_| Vec::new()).collect(),
            live: HashMap::new(),
            next_id: 1,
            cursor: 0,
        }
    }

    fn tick_of(&self, when: Instant) -> u64 {
        let since = when.saturating_duration_since(self.start).as_nanos();
        let tick = self.tick.as_nanos();
        // Round up: a deadline mid-tick belongs to the following tick so it
        // never fires early.
        since.div_ceil(tick) as u64
    }

    /// Schedule a timer at an absolute instant; returns its id.
    pub fn schedule_at(&mut self, when: Instant) -> TimerId {
        let id = self.next_id;
        self.next_id += 1;
        let deadline = self.tick_of(when).max(self.cursor);
        let slot = (deadline % self.slots.len() as u64) as usize;
        self.slots[slot].push(WheelEntry { id, deadline });
        self.live.insert(id, slot);
        id
    }

    /// Schedule a timer `after` from now; returns its id.
    pub fn schedule_after(&mut self, now: Instant, after: Duration) -> TimerId {
        self.schedule_at(now + after)
    }

    /// Cancel a pending timer, removing its wheel entry immediately.
    /// Returns false if it already fired or was cancelled before.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        let Some(slot) = self.live.remove(&id) else {
            return false;
        };
        let bucket = &mut self.slots[slot];
        if let Some(j) = bucket.iter().position(|e| e.id == id) {
            bucket.swap_remove(j);
        }
        true
    }

    /// Number of timers scheduled and not yet fired or cancelled.
    pub fn pending(&self) -> usize {
        self.live.len()
    }

    /// Sweep every bucket whose turn has come and push the fired ids into
    /// `out` (which is not cleared). Entries from a later wheel revolution
    /// are kept for their round.
    pub fn expire_into(&mut self, now: Instant, out: &mut Vec<TimerId>) {
        let now_tick = self.tick_of(now);
        if now_tick < self.cursor {
            return;
        }
        let nslots = self.slots.len() as u64;
        // If we slept past a whole revolution, every bucket is due exactly
        // once; otherwise only the buckets for the elapsed ticks.
        let sweep = (now_tick - self.cursor + 1).min(nslots);
        for i in 0..sweep {
            let slot = ((self.cursor + i) % nslots) as usize;
            let bucket = &mut self.slots[slot];
            let mut j = 0;
            while j < bucket.len() {
                let entry = &bucket[j];
                if entry.deadline <= now_tick {
                    self.live.remove(&entry.id);
                    out.push(entry.id);
                    bucket.swap_remove(j);
                } else {
                    j += 1;
                }
            }
        }
        self.cursor = now_tick + 1;
    }

    /// Earliest bound on when the next live timer could fire, as a duration
    /// from `now`. May underestimate when a bucket only holds entries from a
    /// later revolution (the resulting wakeup finds nothing to expire, which
    /// is harmless). Returns `None` when no timers are live.
    ///
    /// Buckets hold only live entries (cancel is eager), so this scans at
    /// most `nslots` bucket headers — it runs on every reactor loop
    /// iteration, where an O(entries) crawl would dominate the data plane.
    pub fn next_timeout(&self, now: Instant) -> Option<Duration> {
        if self.live.is_empty() {
            return None;
        }
        let now_tick = self.tick_of(now);
        let base = self.cursor.min(now_tick);
        let nslots = self.slots.len() as u64;
        for i in 0..nslots {
            let t = base + i;
            let bucket = &self.slots[(t % nslots) as usize];
            if !bucket.is_empty() {
                if t <= now_tick {
                    return Some(Duration::ZERO);
                }
                let fire_at = self.start + self.tick * (t as u32);
                return Some(fire_at.saturating_duration_since(now));
            }
        }
        // Live timers exist but every bucket holding them is beyond a full
        // revolution horizon; wake after one revolution and rescan.
        Some(self.tick * (nslots as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: cancellation must scrub the wheel entry, not just the
    /// live set. A schedule-and-cancel-per-request workload once left
    /// thousands of stale entries rotting in the buckets for a whole
    /// revolution, turning every `next_timeout` call into an O(garbage)
    /// crawl that dominated the proxy's per-request cost.
    #[test]
    fn cancel_scrubs_bucket_entries_immediately() {
        let mut wheel = TimerWheel::new(Duration::from_millis(1), 8);
        let now = Instant::now();
        let churned: Vec<TimerId> = (0..10_000)
            .map(|i| wheel.schedule_after(now, Duration::from_millis(i % 7)))
            .collect();
        let survivor = wheel.schedule_after(now, Duration::from_millis(3));
        for id in churned {
            assert!(wheel.cancel(id));
        }

        assert_eq!(wheel.pending(), 1);
        let held: usize = wheel.slots.iter().map(Vec::len).sum();
        assert_eq!(
            held, 1,
            "cancelled entries must leave the buckets on the spot"
        );

        // The survivor is unharmed: it still bounds the poll wait and fires.
        assert!(wheel.next_timeout(now).expect("survivor is live") <= Duration::from_millis(4));
        let mut fired = Vec::new();
        wheel.expire_into(now + Duration::from_millis(10), &mut fired);
        assert_eq!(fired, vec![survivor]);
        assert_eq!(wheel.pending(), 0);
    }
}
