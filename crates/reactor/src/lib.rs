//! Readiness-based I/O engine for the CPMS data plane.
//!
//! The paper's Dispatcher gets its throughput from a kernel-level TCP splice;
//! this crate is the user-space analogue's foundation: a zero-dependency
//! reactor that lets a fixed set of worker threads own thousands of
//! connections each instead of parking one thread per connection.
//!
//! Pieces, all safe to use from `#![forbid(unsafe_code)]` crates:
//!
//! - [`Poller`]: level-triggered readiness selection, implemented by
//!   [`EpollPoller`] (Linux epoll via raw syscall bindings) and
//!   [`PollPoller`] (portable poll(2)) — pick with [`new_poller`] /
//!   [`new_poller_of`].
//! - [`TimerWheel`]: hashed wheel for per-connection deadlines (idle,
//!   request-head, relay) with O(1) schedule/cancel and lazy cancellation.
//! - [`Waker`]/[`WakeReceiver`]: pipe-based cross-thread wakeups that
//!   coalesce while a loop is parked in `wait`.
//! - [`Slab`]: generation-checked connection arena so stale poller tokens
//!   can never alias a recycled slot.
//! - [`raise_nofile_limit`]: rlimit bump for 10k-connection benchmarks.
//! - [`net`]: non-blocking connect and deep-backlog listeners, the two
//!   socket-construction moments where `std::net` would stall or shed.
//!
//! The only `unsafe` lives in the private `sys` module, which binds the
//! handful of syscalls (`epoll_*`, `poll`, `pipe2`, `*rlimit`, and the
//! socket family) by hand so the workspace keeps its no-external-
//! dependency invariant.

#![warn(missing_docs)]

mod sys;

mod limits;
pub mod net;
mod poller;
mod slab;
mod timer;
mod wake;

pub use limits::{current_nofile_limit, raise_nofile_limit};
pub use net::{connect_nonblocking, listen_with_backlog, take_connect_error};
pub use poller::{new_poller, new_poller_of, Event, Interest, Poller, PollerKind, Token};
pub use slab::{Slab, SlabKey};
pub use timer::{TimerId, TimerWheel};
pub use wake::{waker_pair, WakeReceiver, Waker};

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::{Duration, Instant};

    fn both_pollers() -> Vec<(PollerKind, Box<dyn Poller>)> {
        [PollerKind::Epoll, PollerKind::Poll]
            .into_iter()
            .map(|k| (k, new_poller_of(k).expect("poller")))
            .collect()
    }

    #[test]
    fn pollers_report_accept_readiness() {
        for (kind, mut poller) in both_pollers() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.set_nonblocking(true).unwrap();
            poller
                .register(listener.as_raw_fd(), Token(7), Interest::READ)
                .unwrap();

            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert_eq!(n, 0, "{kind:?}: no readiness before a client connects");

            let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert_eq!(n, 1, "{kind:?}: pending connection wakes the poller");
            assert_eq!(events[0].token, Token(7));
            assert!(events[0].readable);
        }
    }

    #[test]
    fn pollers_honor_interest_changes_and_deregister() {
        for (kind, mut poller) in both_pollers() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();
            client.set_nonblocking(true).unwrap();

            // A fresh connected socket is writable but not readable.
            poller
                .register(client.as_raw_fd(), Token(1), Interest::BOTH)
                .unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert!(events[0].writable, "{kind:?}: connected socket writable");
            assert!(!events[0].readable, "{kind:?}: nothing to read yet");

            // Dropping write interest silences it until data arrives.
            poller
                .reregister(client.as_raw_fd(), Token(2), Interest::READ)
                .unwrap();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert_eq!(n, 0, "{kind:?}: read-only interest stays quiet");

            (&server).write_all(b"x").unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert_eq!(events[0].token, Token(2), "{kind:?}: token updated");
            assert!(events[0].readable);

            poller.deregister(client.as_raw_fd()).unwrap();
            assert_eq!(poller.registered(), 0);
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert_eq!(n, 0, "{kind:?}: deregistered fd emits nothing");
        }
    }

    #[test]
    fn pollers_surface_peer_hangup_as_readable() {
        for (kind, mut poller) in both_pollers() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();
            client.set_nonblocking(true).unwrap();
            poller
                .register(client.as_raw_fd(), Token(9), Interest::READ)
                .unwrap();
            drop(server);

            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert!(
                events[0].readable,
                "{kind:?}: hangup must wake readers so they observe EOF"
            );
            let mut c = client;
            let mut buf = [0u8; 8];
            assert_eq!(c.read(&mut buf).unwrap(), 0, "{kind:?}: read sees EOF");
        }
    }

    #[test]
    fn waker_interrupts_a_parked_wait() {
        for (kind, mut poller) in both_pollers() {
            let (waker, receiver) = waker_pair().unwrap();
            poller
                .register(receiver.fd(), Token(42), Interest::READ)
                .unwrap();

            // Keep `waker` alive locally: dropping the last clone closes the
            // pipe's write end, which reads as a hangup event.
            let remote = waker.clone();
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                remote.wake();
                remote.wake(); // coalesces with the first
            });
            let mut events = Vec::new();
            let start = Instant::now();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                start.elapsed() < Duration::from_secs(4),
                "{kind:?}: wake cut the wait short"
            );
            assert_eq!(events[0].token, Token(42));
            handle.join().unwrap();
            receiver.drain();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert_eq!(n, 0, "{kind:?}: drained waker goes quiet");
        }
    }

    #[test]
    fn timer_wheel_fires_in_deadline_order_and_honors_cancel() {
        let mut wheel = TimerWheel::new(Duration::from_millis(1), 16);
        let now = Instant::now();
        let soon = wheel.schedule_after(now, Duration::from_millis(5));
        let later = wheel.schedule_after(now, Duration::from_millis(40));
        let dropped = wheel.schedule_after(now, Duration::from_millis(5));
        assert!(wheel.cancel(dropped));
        assert!(!wheel.cancel(dropped), "double cancel is a no-op");
        assert_eq!(wheel.pending(), 2);

        let mut fired = Vec::new();
        wheel.expire_into(now + Duration::from_millis(2), &mut fired);
        assert!(fired.is_empty(), "nothing due yet");

        wheel.expire_into(now + Duration::from_millis(10), &mut fired);
        assert_eq!(fired, vec![soon], "only the near deadline fires");

        // The far deadline wrapped past the 16-slot revolution; a sweep at
        // its time still finds it.
        wheel.expire_into(now + Duration::from_millis(60), &mut fired);
        assert_eq!(fired, vec![soon, later]);
        assert_eq!(wheel.pending(), 0);
        assert_eq!(wheel.next_timeout(now + Duration::from_millis(60)), None);
    }

    #[test]
    fn timer_wheel_next_timeout_bounds_the_poll_wait() {
        let mut wheel = TimerWheel::new(Duration::from_millis(1), 64);
        let now = Instant::now();
        wheel.schedule_after(now, Duration::from_millis(25));
        let bound = wheel.next_timeout(now).expect("a timer is live");
        assert!(
            bound <= Duration::from_millis(26),
            "wait bound {bound:?} must not overshoot the deadline"
        );
        // A due timer reports zero so the loop sweeps immediately.
        let late = now + Duration::from_millis(30);
        assert_eq!(wheel.next_timeout(late), Some(Duration::ZERO));
    }

    #[test]
    fn slab_keys_go_stale_on_reuse() {
        let mut slab: Slab<&'static str> = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.get(a), None, "removed key misses");
        let c = slab.insert("c");
        assert_ne!(a, c, "recycled slot gets a new generation");
        assert_eq!(slab.get(a), None, "stale key cannot alias the new value");
        assert_eq!(slab.get(c), Some(&"c"));
        assert_eq!(slab.len(), 2);
        let mut seen: Vec<_> = slab.iter().map(|(_, v)| *v).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec!["b", "c"]);
        assert_eq!(slab.remove(b), Some("b"));
        assert_eq!(slab.remove(c), Some("c"));
        assert!(slab.is_empty());
    }

    #[test]
    fn nofile_limit_is_readable_and_raise_is_monotone() {
        let soft = current_nofile_limit();
        assert!(soft > 0, "soft fd limit must be readable");
        let after = raise_nofile_limit(soft);
        assert!(after >= soft, "raising to the current limit never shrinks");
    }
}
