//! The experiment runner: one declarative description per figure/table of
//! the paper's evaluation, executed on the simulator.

use crate::placement::PlacementPolicy;
use crate::routing::RouterChoice;
use cpms_mgmt::AutoReplicator;
#[allow(unused_imports)] // referenced in docs
use cpms_model::ClusterConfig;
use cpms_model::{LoadTracker, NodeSpec, SimDuration, WorkloadKind};
use cpms_sim::{SimConfig, SimReport, Simulation};
use cpms_workload::{Corpus, CorpusBuilder, WorkloadSpec};

/// Auto-replication settings for an experiment (§3.3 running between
/// measurement intervals).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    /// Overload/underutilization threshold as a fraction of average load.
    pub threshold: f64,
    /// How many rebalancing intervals to run before the measured window.
    pub intervals: u32,
    /// Length of each rebalancing interval.
    pub interval: SimDuration,
    /// Maximum actions applied per interval.
    pub max_actions: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            threshold: 0.25,
            intervals: 4,
            interval: SimDuration::from_secs(10),
            max_actions: 16,
        }
    }
}

/// Builder for [`Experiment`].
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    corpus_objects: usize,
    corpus_seed: u64,
    nodes: Vec<NodeSpec>,
    placement: PlacementPolicy,
    router: RouterChoice,
    workload: WorkloadKind,
    clients: u32,
    warmup: SimDuration,
    measure: SimDuration,
    think_time: SimDuration,
    seed: u64,
    nfs_server: NodeSpec,
    rebalance: Option<RebalanceConfig>,
}

impl Default for ExperimentBuilder {
    fn default() -> Self {
        ExperimentBuilder {
            corpus_objects: 8_700,
            corpus_seed: 1,
            nodes: NodeSpec::paper_testbed(),
            placement: PlacementPolicy::FullReplication,
            router: RouterChoice::WeightedLeastConnections,
            workload: WorkloadKind::A,
            clients: 32,
            warmup: SimDuration::from_secs(10),
            measure: SimDuration::from_secs(30),
            think_time: SimDuration::from_millis(25),
            seed: 7,
            nfs_server: NodeSpec::testbed_350(),
            rebalance: None,
        }
    }
}

impl ExperimentBuilder {
    /// Sets the corpus size (default: the paper's ~8 700 objects).
    pub fn corpus_objects(mut self, n: usize) -> Self {
        self.corpus_objects = n;
        self
    }

    /// Sets the corpus generation seed.
    pub fn corpus_seed(mut self, seed: u64) -> Self {
        self.corpus_seed = seed;
        self
    }

    /// Sets the cluster hardware (default: the paper's nine machines).
    pub fn nodes(mut self, nodes: Vec<NodeSpec>) -> Self {
        self.nodes = nodes;
        self
    }

    /// Sets the placement policy.
    pub fn placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the routing policy.
    pub fn router(mut self, router: RouterChoice) -> Self {
        self.router = router;
        self
    }

    /// Sets the workload (A = static, B = with CGI/ASP).
    pub fn workload(mut self, workload: WorkloadKind) -> Self {
        self.workload = workload;
        self
    }

    /// Sets the closed-loop client count.
    pub fn clients(mut self, clients: u32) -> Self {
        self.clients = clients;
        self
    }

    /// Sets warm-up and measurement window lengths.
    pub fn windows(mut self, warmup: SimDuration, measure: SimDuration) -> Self {
        self.warmup = warmup;
        self.measure = measure;
        self
    }

    /// Sets the client think time.
    pub fn think_time(mut self, think: SimDuration) -> Self {
        self.think_time = think;
        self
    }

    /// Sets the run seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the NFS server hardware used by [`PlacementPolicy::SharedNfs`].
    pub fn nfs_server(mut self, spec: NodeSpec) -> Self {
        self.nfs_server = spec;
        self
    }

    /// Enables §3.3 auto-replication intervals before the measured window.
    pub fn rebalance(mut self, config: RebalanceConfig) -> Self {
        self.rebalance = Some(config);
        self
    }

    /// Applies a declarative [`cpms_model::ClusterConfig`] (e.g. parsed
    /// from JSON): nodes, placement kind, and — when its rebalance
    /// threshold is set — an auto-replication schedule.
    ///
    /// # Panics
    ///
    /// Panics if the config fails [`cpms_model::ClusterConfig::validate`].
    pub fn cluster_config(mut self, config: &cpms_model::ClusterConfig) -> Self {
        config.validate().expect("valid cluster config");
        self.nodes = config.nodes.clone();
        self.placement = PlacementPolicy::from_kind(config.placement);
        if !config.placement.needs_content_aware_routing() {
            self.router = RouterChoice::WeightedLeastConnections;
        } else {
            self.router = RouterChoice::ContentAware {
                cache_entries: 4096,
            };
        }
        if let Some(threshold) = config.rebalance_threshold {
            self.rebalance = Some(RebalanceConfig {
                threshold,
                ..RebalanceConfig::default()
            });
        }
        self
    }

    /// Builds the experiment (generates the corpus).
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration (no nodes, zero clients,
    /// workload/corpus mismatch).
    pub fn build(self) -> Experiment {
        assert!(!self.nodes.is_empty(), "experiment needs nodes");
        assert!(self.clients > 0, "experiment needs clients");
        let corpus = CorpusBuilder::paper_site()
            .total_objects(self.corpus_objects)
            .seed(self.corpus_seed)
            .build();
        Experiment {
            corpus,
            builder: self,
        }
    }
}

/// A fully specified experiment over a generated corpus.
#[derive(Debug)]
pub struct Experiment {
    corpus: Corpus,
    builder: ExperimentBuilder,
}

/// The outcome of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The measured window's report.
    pub report: SimReport,
    /// Reports of the auto-replication intervals that preceded the
    /// measurement (empty without rebalancing).
    pub interval_reports: Vec<SimReport>,
    /// Total rebalance actions applied.
    pub rebalance_actions: usize,
    /// Placement label, for report rows.
    pub placement: &'static str,
    /// Router label.
    pub router: &'static str,
    /// Workload label.
    pub workload: &'static str,
    /// Client count.
    pub clients: u32,
}

impl Experiment {
    /// Starts building an experiment.
    pub fn builder() -> ExperimentBuilder {
        ExperimentBuilder::default()
    }

    /// The generated corpus (shared across runs/sweeps).
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// Runs the experiment once at the configured client count.
    pub fn run(&self) -> ExperimentResult {
        self.run_with_clients(self.builder.clients)
    }

    /// Runs the experiment at a specific client count (used by sweeps).
    pub fn run_with_clients(&self, clients: u32) -> ExperimentResult {
        let b = &self.builder;
        let specs = b.nodes.clone();
        let table = b.placement.build_table(&self.corpus, &specs);
        let router = b.router.build();
        let spec = workload_spec(b.workload);

        let mut config = SimConfig::builder();
        config
            .nodes(specs.clone())
            .clients(clients)
            .think_time(b.think_time)
            .seed(b.seed);
        if b.placement.needs_nfs() {
            config.nfs(b.nfs_server.clone());
        }
        let mut sim = Simulation::new(config.build(), &self.corpus, table, router, &spec);

        // Warm-up (discarded).
        let _ = sim.run_window(b.warmup);

        // Optional §3.3 auto-replication intervals.
        let mut interval_reports = Vec::new();
        let mut rebalance_actions = 0usize;
        if let Some(rb) = b.rebalance {
            let planner = AutoReplicator::new(rb.threshold).with_max_actions(rb.max_actions);
            let weights: Vec<f64> = specs.iter().map(NodeSpec::weight).collect();
            for _ in 0..rb.intervals {
                let report = sim.run_window(rb.interval);
                let mut tracker = LoadTracker::new(weights.clone());
                for sample in &report.load_samples {
                    tracker.record(*sample);
                }
                let actions = planner.plan(
                    &tracker,
                    sim.table(),
                    |id| Some(self.corpus.get(id).path().clone()),
                    |node, kind| specs[node.index()].can_serve_kind(kind),
                );
                rebalance_actions += AutoReplicator::apply_to_table(&actions, sim.table_mut());
                // Offloaded copies leave the node's cache too.
                for action in &actions {
                    if let cpms_mgmt::RebalanceAction::Offload { path, from } = action {
                        if let Some(entry) = sim.table().lookup(path) {
                            let content = entry.content();
                            sim.evict_from_cache(*from, content);
                        }
                    }
                }
                interval_reports.push(report);
            }
        }

        // Measured window.
        let report = sim.run_window(b.measure);
        ExperimentResult {
            report,
            interval_reports,
            rebalance_actions,
            placement: b.placement.label(),
            router: b.router.label(),
            workload: b.workload.label(),
            clients,
        }
    }

    /// Runs the experiment at each client count, reusing the corpus.
    pub fn sweep_clients(&self, clients: &[u32]) -> Vec<ExperimentResult> {
        clients.iter().map(|&c| self.run_with_clients(c)).collect()
    }
}

fn workload_spec(kind: WorkloadKind) -> WorkloadSpec {
    match kind {
        WorkloadKind::A => WorkloadSpec::workload_a(),
        WorkloadKind::B => WorkloadSpec::workload_b(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpms_model::RequestClass;

    fn quick() -> ExperimentBuilder {
        Experiment::builder()
            .corpus_objects(400)
            .nodes(vec![NodeSpec::testbed_350(); 3])
            .clients(8)
            .windows(SimDuration::from_secs(1), SimDuration::from_secs(4))
    }

    #[test]
    fn basic_run_produces_traffic() {
        let result = quick().build().run();
        assert!(result.report.throughput_rps() > 10.0);
        assert_eq!(result.placement, "full-replication");
        assert_eq!(result.router, "l4-wlc");
        assert_eq!(result.workload, "workload-A");
    }

    #[test]
    fn sweep_is_monotone_at_low_load() {
        let exp = quick().build();
        let results = exp.sweep_clients(&[2, 16]);
        assert!(
            results[1].report.throughput_rps() > results[0].report.throughput_rps(),
            "more clients, more throughput below saturation"
        );
    }

    #[test]
    fn workload_b_reports_dynamic_classes() {
        let result = quick()
            .workload(WorkloadKind::B)
            .placement(PlacementPolicy::PartitionedByType {
                segregate_dynamic: true,
            })
            .router(RouterChoice::ContentAware { cache_entries: 256 })
            .build()
            .run();
        assert!(result.report.class(RequestClass::Cgi).is_some());
        assert!(result.report.class(RequestClass::Asp).is_some());
        assert_eq!(result.report.misroutes, 0);
    }

    #[test]
    fn nfs_policy_engages_nfs_server() {
        let result = quick().placement(PlacementPolicy::SharedNfs).build().run();
        let nfs = result.report.nfs.expect("nfs report present");
        assert!(nfs.fetches > 0);
    }

    #[test]
    fn rebalancing_applies_actions_on_skewed_placement() {
        // Partitioned placement + hot content: the planner should act.
        let result = quick()
            .placement(PlacementPolicy::PartitionedByType {
                segregate_dynamic: false,
            })
            .router(RouterChoice::ContentAware { cache_entries: 256 })
            .clients(24)
            .rebalance(RebalanceConfig {
                threshold: 0.10,
                intervals: 3,
                interval: SimDuration::from_secs(3),
                max_actions: 8,
            })
            .build()
            .run();
        assert_eq!(result.interval_reports.len(), 3);
        assert!(
            result.rebalance_actions > 0,
            "skewed single-copy placement should trigger replication"
        );
    }

    #[test]
    fn cluster_config_round_trip() {
        let json = r#"{
            "nodes": [
                {"cpu_mhz": 350, "mem_bytes": 134217728, "disk": "Scsi",
                 "disk_bytes": 8589934592, "nic_bits_per_sec": 100000000,
                 "software": "LinuxApache"},
                {"cpu_mhz": 150, "mem_bytes": 67108864, "disk": "Ide",
                 "disk_bytes": 4294967296, "nic_bits_per_sec": 100000000,
                 "software": "LinuxApache"}
            ],
            "placement": "PartitionedByType",
            "rebalance_threshold": 0.3
        }"#;
        let config: cpms_model::ClusterConfig =
            serde_json::from_str(json).expect("parse cluster config");
        let result = quick().cluster_config(&config).build().run();
        assert_eq!(result.placement, "partitioned");
        assert_eq!(result.router, "content-aware");
        assert!(result.report.throughput_rps() > 0.0);
        assert!(!result.interval_reports.is_empty(), "rebalance engaged");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || quick().seed(42).build().run().report;
        let a = run();
        let b = run();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.classes, b.classes);
    }
}
