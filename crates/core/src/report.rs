//! Report formatting: turning experiment results into the rows and series
//! the paper's figures show.

use crate::experiment::ExperimentResult;
use cpms_model::RequestClass;
use serde::{Deserialize, Serialize};

/// One point of a figure series: a client count and a throughput.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FigurePoint {
    /// Offered load (WebBench client count).
    pub clients: u32,
    /// Measured throughput in requests/second.
    pub throughput_rps: f64,
    /// Mean response time in milliseconds.
    pub mean_response_ms: f64,
}

/// One labelled curve of a figure (e.g. "partitioned + content-aware").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureSeries {
    /// Curve label.
    pub label: String,
    /// Points in sweep order.
    pub points: Vec<FigurePoint>,
}

impl FigureSeries {
    /// Builds a series from sweep results.
    pub fn from_results(label: impl Into<String>, results: &[ExperimentResult]) -> Self {
        FigureSeries {
            label: label.into(),
            points: results
                .iter()
                .map(|r| FigurePoint {
                    clients: r.clients,
                    throughput_rps: r.report.throughput_rps(),
                    mean_response_ms: r.report.mean_response_ms(),
                })
                .collect(),
        }
    }

    /// The throughput at the highest client count (the saturation figure).
    pub fn saturated_throughput(&self) -> f64 {
        self.points.last().map(|p| p.throughput_rps).unwrap_or(0.0)
    }
}

/// Renders several series as an aligned text table, one row per client
/// count — the form the paper's figures tabulate.
pub fn render_throughput_table(series: &[FigureSeries]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:>8}", "clients"));
    for s in series {
        out.push_str(&format!(" | {:>28}", s.label));
    }
    out.push('\n');
    out.push_str(&"-".repeat(8 + series.len() * 31));
    out.push('\n');
    let rows = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    for i in 0..rows {
        let clients = series
            .iter()
            .filter_map(|s| s.points.get(i))
            .map(|p| p.clients)
            .next()
            .unwrap_or(0);
        out.push_str(&format!("{clients:>8}"));
        for s in series {
            match s.points.get(i) {
                Some(p) => out.push_str(&format!(
                    " | {:>15.1} rps {:>6.1}ms",
                    p.throughput_rps, p.mean_response_ms
                )),
                None => out.push_str(&format!(" | {:>28}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// One row of the Figure 4 per-class comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassGainRow {
    /// The request class.
    pub class: String,
    /// Baseline throughput (requests/second).
    pub baseline_rps: f64,
    /// Proposed-system throughput.
    pub proposed_rps: f64,
    /// Relative gain (`proposed/baseline - 1`).
    pub gain: f64,
}

/// Computes Figure 4's per-class gains from a baseline and a
/// proposed-system run at the same offered load.
pub fn class_gains(baseline: &ExperimentResult, proposed: &ExperimentResult) -> Vec<ClassGainRow> {
    RequestClass::ALL
        .iter()
        .filter_map(|&class| {
            let b = baseline.report.class(class)?.throughput_rps;
            let p = proposed.report.class(class)?.throughput_rps;
            if b <= 0.0 {
                return None;
            }
            Some(ClassGainRow {
                class: class.label().to_string(),
                baseline_rps: b,
                proposed_rps: p,
                gain: p / b - 1.0,
            })
        })
        .collect()
}

/// Renders class gains as a text table.
pub fn render_class_gains(rows: &[ClassGainRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>8} | {:>14} | {:>14} | {:>8}\n",
        "class", "baseline rps", "proposed rps", "gain"
    ));
    out.push_str(&"-".repeat(54));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:>8} | {:>14.1} | {:>14.1} | {:>+7.0}%\n",
            r.class,
            r.baseline_rps,
            r.proposed_rps,
            r.gain * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpms_model::SimDuration;
    use cpms_sim::SimReport;

    fn result(clients: u32, completed: u64) -> ExperimentResult {
        ExperimentResult {
            report: SimReport {
                window: SimDuration::from_secs(10),
                issued: completed,
                completed,
                unroutable: 0,
                misroutes: 0,
                in_flight_at_end: 0,
                classes: vec![],
                priorities: vec![],
                nodes: vec![],
                dispatcher_utilization: 0.0,
                nfs: None,
                load_samples: vec![],
            },
            interval_reports: vec![],
            rebalance_actions: 0,
            placement: "partitioned",
            router: "content-aware",
            workload: "workload-A",
            clients,
        }
    }

    #[test]
    fn series_from_results() {
        let results = vec![result(8, 1000), result(16, 1800)];
        let s = FigureSeries::from_results("partitioned", &results);
        assert_eq!(s.points.len(), 2);
        assert!((s.points[0].throughput_rps - 100.0).abs() < 1e-9);
        assert!((s.saturated_throughput() - 180.0).abs() < 1e-9);
    }

    #[test]
    fn table_renders_all_series() {
        let a = FigureSeries::from_results("full", &[result(8, 500)]);
        let b = FigureSeries::from_results("partitioned", &[result(8, 900)]);
        let table = render_throughput_table(&[a, b]);
        assert!(table.contains("full"));
        assert!(table.contains("partitioned"));
        assert!(table.contains("clients"));
        assert!(table.lines().count() >= 3);
    }

    #[test]
    fn class_gain_math() {
        use cpms_sim::ClassReport;
        let mk = |rps: f64| ExperimentResult {
            report: SimReport {
                classes: vec![ClassReport {
                    class: RequestClass::Cgi,
                    completed: 100,
                    throughput_rps: rps,
                    mean_response_ms: 1.0,
                    p50_response_ms: 1.0,
                    p95_response_ms: 2.0,
                }],
                ..result(8, 100).report
            },
            ..result(8, 100)
        };
        let rows = class_gains(&mk(100.0), &mk(145.0));
        assert_eq!(rows.len(), 1);
        assert!((rows[0].gain - 0.45).abs() < 1e-9);
        let rendered = render_class_gains(&rows);
        assert!(rendered.contains("+45%"));
    }
}
