//! The routing-policy menu: the paper's content-aware distributor plus the
//! baselines of §2.1.

use cpms_dispatch::{
    ContentAwareRouter, DnsRoundRobin, HttpRedirectRouter, RandomRouter, RoundRobin, Router,
    WeightedLeastConnections,
};
use cpms_model::SimDuration;

/// A request-routing policy choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouterChoice {
    /// The paper's layer-7 content-aware distributor, with an LRU cache of
    /// recently routed table entries (§5.2).
    ContentAware {
        /// Entries in the recently-accessed-entry cache (0 disables it).
        cache_entries: u64,
    },
    /// Layer-4 Weighted Least Connections (the paper's previous work \[2\],
    /// fronting configurations 1 and 2).
    WeightedLeastConnections,
    /// Layer-4 round robin.
    RoundRobin,
    /// Layer-4 uniform random.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// DNS-style client-sticky round robin (§2.1's DNS-based approach).
    DnsRoundRobin,
    /// Content-aware routing via HTTP `302` redirects — the alternative
    /// §2.1 rejects as heavyweight (one extra connection + round trips per
    /// request).
    HttpRedirect {
        /// Entries in the recently-accessed-entry cache.
        cache_entries: u64,
        /// Client↔cluster round-trip time in microseconds (the penalty is
        /// two of these per request).
        client_rtt_micros: u64,
    },
}

impl RouterChoice {
    /// Instantiates the policy.
    pub fn build(&self) -> Box<dyn Router> {
        match *self {
            RouterChoice::ContentAware { cache_entries } => {
                Box::new(ContentAwareRouter::new(cache_entries))
            }
            RouterChoice::WeightedLeastConnections => Box::new(WeightedLeastConnections::new()),
            RouterChoice::RoundRobin => Box::new(RoundRobin::new()),
            RouterChoice::Random { seed } => Box::new(RandomRouter::new(seed)),
            RouterChoice::DnsRoundRobin => Box::new(DnsRoundRobin::new()),
            RouterChoice::HttpRedirect {
                cache_entries,
                client_rtt_micros,
            } => Box::new(HttpRedirectRouter::new(
                cache_entries,
                SimDuration::from_micros(client_rtt_micros),
            )),
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            RouterChoice::ContentAware { .. } => "content-aware",
            RouterChoice::WeightedLeastConnections => "l4-wlc",
            RouterChoice::RoundRobin => "l4-rr",
            RouterChoice::Random { .. } => "l4-random",
            RouterChoice::DnsRoundRobin => "dns-rr",
            RouterChoice::HttpRedirect { .. } => "http-redirect",
        }
    }
}

impl std::fmt::Display for RouterChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_policy() {
        let choices = [
            RouterChoice::ContentAware { cache_entries: 64 },
            RouterChoice::WeightedLeastConnections,
            RouterChoice::RoundRobin,
            RouterChoice::Random { seed: 1 },
            RouterChoice::DnsRoundRobin,
            RouterChoice::HttpRedirect {
                cache_entries: 64,
                client_rtt_micros: 1_000,
            },
        ];
        for choice in choices {
            let router = choice.build();
            assert!(!router.name().is_empty());
            assert_eq!(
                router.is_content_aware(),
                matches!(
                    choice,
                    RouterChoice::ContentAware { .. } | RouterChoice::HttpRedirect { .. }
                )
            );
        }
    }
}
