//! # cpms-core
//!
//! The top-level API of **CPMS** — a Rust reproduction of Yang & Luo,
//! *"A Content Placement and Management System for Distributed Web-Server
//! Systems"* (ICDCS 2000).
//!
//! The paper's thesis: on a heterogeneous server cluster, **partitioning
//! content by type** (and partially replicating the hot part) beats both
//! full replication and a shared NFS volume — *if* the front end is
//! **content-aware** and a **management system** keeps placement coherent
//! and balanced. This workspace builds every part of that system:
//!
//! | Crate | Role |
//! |---|---|
//! | [`cpms_model`] | Domain types, the §3.3 load metric, testbed specs |
//! | [`cpms_urltable`] | The multi-level hash URL table + lookup cache |
//! | [`cpms_workload`] | WebBench-style corpus + request generation |
//! | [`cpms_dispatch`] | Routing policies + TCP splicing state machine |
//! | [`cpms_sim`] | Discrete-event cluster simulator |
//! | [`cpms_mgmt`] | Controller / brokers / agents / auto-replication |
//! | [`cpms_httpd`] | Live socket origin server + content-aware proxy |
//!
//! This crate ties them into an [`experiment::Experiment`] runner that
//! regenerates each figure of the paper's evaluation, plus the
//! [`placement::PlacementPolicy`] and [`routing::RouterChoice`] menus.
//!
//! # Quick start
//!
//! ```
//! use cpms_core::prelude::*;
//!
//! let result = Experiment::builder()
//!     .corpus_objects(500)
//!     .nodes(vec![NodeSpec::testbed_350(); 4])
//!     .placement(PlacementPolicy::PartitionedByType { segregate_dynamic: false })
//!     .router(RouterChoice::ContentAware { cache_entries: 256 })
//!     .workload(WorkloadKind::A)
//!     .clients(16)
//!     .seed(7)
//!     .build()
//!     .run();
//! assert!(result.report.throughput_rps() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod placement;
pub mod report;
pub mod routing;

pub use experiment::{Experiment, ExperimentBuilder, ExperimentResult, RebalanceConfig};
pub use placement::PlacementPolicy;
pub use report::{FigurePoint, FigureSeries};
pub use routing::RouterChoice;

/// Convenient glob-import surface for examples and tests.
pub mod prelude {
    pub use crate::experiment::{Experiment, ExperimentResult, RebalanceConfig};
    pub use crate::placement::PlacementPolicy;
    pub use crate::report::{FigurePoint, FigureSeries};
    pub use crate::routing::RouterChoice;
    pub use cpms_model::{
        ContentId, ContentKind, NodeId, NodeSpec, Priority, RequestClass, SimDuration, SimTime,
        WorkloadKind,
    };
    pub use cpms_sim::SimReport;
    pub use cpms_workload::{Corpus, CorpusBuilder, WorkloadSpec};
}
